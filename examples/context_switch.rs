//! Demonstrates the OS-interaction story of the paper's Section 5: the
//! typed architectural state (register tags, special-purpose registers,
//! Type Rule Table) is saved and restored across a context switch between
//! two scripts with *different* tag layouts — a Lua-layout process and a
//! NaN-boxing process sharing one core.
//!
//! ```text
//! cargo run --release --example context_switch
//! ```

use tarch_core::{CoreConfig, Cpu, StepEvent, TypedState};
use tarch_isa::text::assemble;

fn run_to_halt(cpu: &mut Cpu) -> Result<(), Box<dyn std::error::Error>> {
    while cpu.step()? != StepEvent::Halted {}
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Process A: Lua layout (tag in the next double-word).
    let proc_a = assemble(
        "
        li t0, 0b001
        setoffset t0
        li t0, 0xff
        setmask t0
        li t0, 0x13001313      # xadd (Int,Int)->Int
        set_trt t0
        la s10, v
        tld a2, 0(s10)
        thdl slow
        xadd a0, a2, a2
        halt
    slow:
        halt
        .data
        v: .dword 21, 0x13
    ",
        0x1000,
        0x2_0000,
    )?;

    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&proc_a);
    run_to_halt(&mut cpu)?;
    println!("process A (Lua layout): a0 = {}", cpu.regs().read(tarch_isa::Reg::A0).v);

    // Context switch: the OS saves A's typed state.
    let saved_a = TypedState::save(&cpu);
    println!(
        "saved typed state: {} TRT rules, R_offset={:#b}, R_mask={:#x}",
        saved_a.trt_rules.len(),
        saved_a.spr.offset,
        saved_a.spr.mask
    );

    // Process B: NaN-boxing layout — different SPRs, different rules.
    let proc_b = assemble(
        "
        li t0, 0b1100          # NaN detect + overflow detect
        setoffset t0
        li t0, 47
        setshift t0
        li t0, 0x0f
        setmask t0
        flush_trt
        li t0, 0x01000101      # xadd (Int,Int)->Int, NaN-box tags
        set_trt t0
        la s10, v
        tld a2, 0(s10)
        thdl slow
        xadd a0, a2, a2
        halt
    slow:
        halt
        .data
        v: .dword 0xfff8800000000015, 0   # boxed int 21 (tag 1)
    ",
        0x1000,
        0x2_0000,
    )?;
    cpu.load_program(&proc_b);
    run_to_halt(&mut cpu)?;
    println!("process B (NaN boxing): a0 = {}", cpu.regs().read(tarch_isa::Reg::A0).v as i64);

    // Switch back to A: restore its typed state and rerun its kernel.
    saved_a.restore(&mut cpu);
    cpu.load_program(&proc_a_resumable()?);
    run_to_halt(&mut cpu)?;
    println!(
        "process A resumed: a0 = {} (tags and TRT restored, no re-init needed)",
        cpu.regs().read(tarch_isa::Reg::A0).v
    );
    Ok(())
}

/// Process A's kernel *without* the SPR/TRT initialization: after a
/// restore, the typed state is already in place.
fn proc_a_resumable() -> Result<tarch_isa::asm::Program, Box<dyn std::error::Error>> {
    Ok(assemble(
        "
        la s10, v
        tld a2, 0(s10)
        thdl slow
        xadd a0, a2, a2
        halt
    slow:
        li a0, -1
        halt
        .data
        v: .dword 21, 0x13
    ",
        0x1000,
        0x2_0000,
    )?)
}
