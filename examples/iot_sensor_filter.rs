//! Domain scenario from the paper's introduction: lightweight scripting on
//! an IoT-class core. A sensor-fusion script — exponential smoothing plus
//! threshold alarms over a simulated sensor trace — runs interpreted on
//! the little in-order core, and the Typed Architecture's hardware type
//! checking pays for the dynamic-typing overhead the script incurs.
//!
//! ```text
//! cargo run --release --example iot_sensor_filter
//! ```

use tarch_core::{CoreConfig, IsaLevel};

const SCRIPT: &str = "
    -- Synthetic sensor trace: a noisy sine-ish wave from an integer LCG.
    IM = 139968
    IA = 3877
    IC = 29573
    seed = 7
    function noise()
        seed = (seed * IA + IC) % IM
        return seed / IM - 0.5
    end

    local samples = {}
    local n = 600
    local level = 20.0
    for i = 1, n do
        -- a slow drift plus noise; all float arithmetic
        level = level + 0.01 * (25.0 - level)
        samples[i] = level + noise() * 2.0
    end

    -- Exponential smoothing with alarm thresholds (the event-driven
    -- pattern the paper's intro motivates for IoT scripting).
    local alpha = 0.2
    local smooth = samples[1]
    local alarms = 0
    local sum = 0.0
    for i = 1, n do
        smooth = smooth + alpha * (samples[i] - smooth)
        sum = sum + smooth
        if smooth > 24.5 then
            alarms = alarms + 1
        end
    end
    print(\"samples\", n)
    print(\"alarms\", alarms)
    print(\"mean*1e6\", floor(sum / n * 1000000))
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("IoT sensor-filter script on the simulated 50MHz in-order core\n");
    let mut base = 0u64;
    for level in IsaLevel::ALL {
        let mut vm = luart::LuaVm::from_source(SCRIPT, level, CoreConfig::paper())?;
        let r = vm.run(500_000_000)?;
        if level == IsaLevel::Baseline {
            base = r.counters.cycles;
            println!("script output:\n{}", r.output);
        }
        let us = r.counters.cycles as f64 / 50.0; // 50 MHz core clock
        println!(
            "{:<13} {:>9} cycles  ({:>8.1} us at 50MHz)  speedup {:+5.1}%  type hits {}",
            level.to_string(),
            r.counters.cycles,
            us,
            (base as f64 / r.counters.cycles as f64 - 1.0) * 100.0,
            r.counters.type_hits,
        );
    }
    Ok(())
}
