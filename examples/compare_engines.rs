//! Compare both scripting engines across the three ISA levels on two
//! representative workloads — the core experiment of the paper in
//! miniature.
//!
//! ```text
//! cargo run --release --example compare_engines
//! ```

use tarch_bench::workloads::{by_name, Scale};
use tarch_core::{CoreConfig, IsaLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["fibo", "n-sieve"] {
        let w = by_name(name).expect("known workload");
        let src = w.source(Scale::Default);
        println!("=== {name} (paper input: {}) ===", w.paper_input);
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9} {:>9}",
            "engine/level", "instructions", "cycles", "speedup", "type-hit", "chklb"
        );
        // Lua-like register engine.
        let mut base_cycles = 0u64;
        for level in IsaLevel::ALL {
            let mut vm = luart::LuaVm::from_source(&src, level, CoreConfig::paper())?;
            let r = vm.run(2_000_000_000)?;
            if level == IsaLevel::Baseline {
                base_cycles = r.counters.cycles;
            }
            print_row("luart", level, &r.counters, base_cycles);
        }
        // NaN-boxing stack engine.
        for level in IsaLevel::ALL {
            let mut vm = jsrt::JsVm::from_source(&src, level, CoreConfig::paper())?;
            let r = vm.run(2_000_000_000)?;
            if level == IsaLevel::Baseline {
                base_cycles = r.counters.cycles;
            }
            print_row("jsrt", level, &r.counters, base_cycles);
        }
        println!();
    }
    Ok(())
}

fn print_row(engine: &str, level: IsaLevel, c: &tarch_core::PerfCounters, base: u64) {
    println!(
        "{:<24} {:>12} {:>12} {:>8.1}% {:>9} {:>9}",
        format!("{engine}/{level}"),
        c.instructions,
        c.cycles,
        (base as f64 / c.cycles as f64 - 1.0) * 100.0,
        c.type_hits,
        c.chklb_checks,
    );
}
