//! Quickstart: assemble a tiny typed-ISA program, run it on the simulated
//! core, and inspect the hardware type-check counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program is the paper's Figure 3 fast path: two Lua-layout values
//! are loaded with `tld` (value + tag in one instruction), added with the
//! polymorphic `xadd` (the Type Rule Table checks the operand types in
//! hardware), and stored back with `tsd`.

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "
        # Configure the tag datapath for Lua's layout (paper Table 4):
        # tag byte in the next double-word, no shift, full-byte mask.
        li t0, 0b001
        setoffset t0
        li t0, 0xff
        setmask t0

        # Type Rule Table: xadd (Int, Int) -> Int  (packed rule format)
        li t0, 0x13001313
        set_trt t0

        la s10, rb          # operand addresses
        la s9,  rc
        la s11, ra

        tld  a2, 0(s10)     # load rb: value and type tag together
        tld  a3, 0(s9)      # load rc
        thdl slow           # register the type-miss handler
        xadd a2, a2, a3     # polymorphic add, type-checked in hardware
        tsd  a2, 0(s11)     # store value + tag
        halt

    slow:                   # would run on a type misprediction
        halt

        .data
        rb: .dword 40, 0x13  # value 40, tag Int
        rc: .dword 2,  0x13
        ra: .dword 0, 0
    ";

    let program = assemble(src, 0x1000, 0x2_0000)?;
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    while cpu.step()? != StepEvent::Halted {}

    let ra = program.symbol("ra").expect("ra symbol");
    println!("result value : {}", cpu.mem().read_u64(ra));
    println!("result tag   : {:#x} (Int)", cpu.mem().read_u8(ra + 8));
    let c = cpu.counters();
    println!("instructions : {}", c.instructions);
    println!("cycles       : {}", c.cycles);
    println!("type checks  : {} ({} hits, {} misses)", c.type_checks, c.type_hits, c.type_misses);
    assert_eq!(cpu.mem().read_u64(ra), 42);
    Ok(())
}
