//! Ablation and failure-injection experiments (DESIGN.md §6):
//!
//! * **TRT sizing** — with a TRT too small for the engine's rule set, the
//!   FIFO evicts the arithmetic rules and every polymorphic instruction
//!   falls back to the software chain: results stay correct (the miss
//!   handler *is* the original code), only performance degrades;
//! * **type-unstable workloads** — an adversarial alternating int/float
//!   kernel produces a type-miss storm; the paper's Section 5 discusses
//!   deoptimizing the fast path for exactly this case;
//! * **legacy-code tax** — untyped programs see zero typed-datapath
//!   activity (also covered in `paper_invariants.rs`).

use tarch_core::{CoreConfig, IsaLevel};

const MAX_STEPS: u64 = 2_000_000_000;

fn run_lua(src: &str, level: IsaLevel, core: CoreConfig) -> luart::RunReport {
    let mut vm = luart::LuaVm::from_source(src, level, core).unwrap();
    vm.run(MAX_STEPS).unwrap()
}

#[test]
fn undersized_trt_stays_correct_but_loses_performance() {
    let src = "
        local s = 0
        for i = 1, 300 do s = s + i * 2 - 1 end
        print(s)
    ";
    let full = run_lua(src, IsaLevel::Typed, CoreConfig::paper());
    let tiny_cfg = CoreConfig { trt_entries: 2, ..CoreConfig::paper() };
    let tiny = run_lua(src, IsaLevel::Typed, tiny_cfg);

    // Correctness is unaffected: the miss handler is the original software
    // type-check chain.
    assert_eq!(full.output, tiny.output);
    assert_eq!(full.output, "90000\n"); // sum of (2i-1), i=1..300

    // But the 2-entry FIFO evicted the arithmetic rules pushed first, so
    // the polymorphic instructions miss where the 8-entry table hit.
    assert_eq!(full.counters.type_misses, 0, "8-entry TRT must cover the rule set");
    assert!(
        tiny.counters.type_misses > 500,
        "2-entry TRT must thrash: {} misses",
        tiny.counters.type_misses
    );
    assert!(
        tiny.counters.cycles > full.counters.cycles,
        "thrashing TRT must cost cycles ({} vs {})",
        tiny.counters.cycles,
        full.counters.cycles
    );
}

#[test]
fn type_unstable_workload_storms_the_trt() {
    // Alternating Int and Float operands: every other ADD takes the
    // mispredict path. Output must still be exact.
    // Every ADD mixes an Int with a Float: no TRT rule matches, so every
    // polymorphic instruction takes the mispredict path.
    let src = "
        local a = 1
        local b = 0.5
        local c = 0
        for i = 1, 200 do
            c = a + b
            c = b + a
            c = a - b
        end
        print(c)
    ";
    let typed = run_lua(src, IsaLevel::Typed, CoreConfig::paper());
    let base = run_lua(src, IsaLevel::Baseline, CoreConfig::paper());
    assert_eq!(typed.output, base.output);
    assert_eq!(typed.output, "0.5\n");
    assert!(
        typed.counters.type_misses >= 600,
        "mixed-type adds must miss: {}",
        typed.counters.type_misses
    );
    // The paper's motivation for fast-path deoptimization (Section 5):
    // under a miss storm the typed fast path stops paying for itself —
    // the win collapses to (at most) a sliver from the untouched bytecodes.
    let speedup = base.counters.cycles as f64 / typed.counters.cycles as f64;
    assert!(
        speedup < 1.03,
        "a type-miss storm should erase the typed win (speedup {speedup:.3})"
    );
}

#[test]
fn overflow_detection_can_be_disabled_for_lua() {
    // Lua's 64-bit integers never corrupt a co-located tag, so the engine
    // leaves overflow detection off (Section 3.2: "we can simply turn off
    // overflow detection"); wrapping arithmetic must then match baseline.
    let src = "
        local x = 9223372036854775807
        local y = x + 1
        print(y < 0)
    ";
    let typed = run_lua(src, IsaLevel::Typed, CoreConfig::paper());
    let base = run_lua(src, IsaLevel::Baseline, CoreConfig::paper());
    assert_eq!(typed.output, base.output);
    assert_eq!(typed.output, "true\n"); // wraps to i64::MIN
    assert_eq!(typed.counters.overflow_misses, 0);
}

#[test]
fn branch_predictor_sizing_matters_for_dispatch() {
    // Shrinking the BTB hurts the interpreter's indirect dispatch — a
    // structural sensitivity the paper's front end (62-entry BTB) hides.
    let src = "
        local s = 0
        for i = 1, 200 do
            local t = {i}
            t[1] = t[1] * 2
            s = s + t[1] - i % 3
        end
        print(s)
    ";
    let small_btb = CoreConfig {
        branch: tarch_core::BranchConfig { btb_entries: 4, ..tarch_core::BranchConfig::paper() },
        ..CoreConfig::paper()
    };
    let big = run_lua(src, IsaLevel::Baseline, CoreConfig::paper());
    let small = run_lua(src, IsaLevel::Baseline, small_btb);
    assert_eq!(big.output, small.output);
    assert!(
        small.branch.total_misses() > big.branch.total_misses(),
        "4-entry BTB must mispredict more ({} vs {})",
        small.branch.total_misses(),
        big.branch.total_misses()
    );
}

#[test]
fn icache_sizing_shows_interpreter_footprint() {
    let src = "
        local s = 0
        for i = 1, 150 do
            local t = {i, i + 1}
            s = s + t[1] * t[2] // (i % 7 + 1) + #t
        end
        print(s)
    ";
    let tiny_icache = CoreConfig {
        icache: tarch_mem::CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 },
        ..CoreConfig::paper()
    };
    let big = run_lua(src, IsaLevel::Baseline, CoreConfig::paper());
    let small = run_lua(src, IsaLevel::Baseline, tiny_icache);
    assert_eq!(big.output, small.output);
    assert!(
        small.counters.icache_misses > big.counters.icache_misses * 2,
        "a 1KB I-cache cannot hold the interpreter ({} vs {})",
        small.counters.icache_misses,
        big.counters.icache_misses
    );
}
