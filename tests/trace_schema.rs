//! Schema round-trip for the tarch-trace Chrome `trace_event` export.
//!
//! `trace::chrome::chrome_trace` hand-rolls its JSON (the workspace has
//! no serde), so this test closes the loop with the other hand-rolled
//! side: the output of a real traced engine run must parse with
//! `tarch_runner::Json` and carry exactly the trace_event shapes
//! Perfetto/`chrome://tracing` accept — metadata (`"ph":"M"`), instants
//! (`"ph":"i"` with a scope), and counters (`"ph":"C"` with numeric
//! args) — with monotonically usable timestamps.

use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel, TraceConfig};
use tarch_runner::Json;

#[test]
fn chrome_trace_of_a_real_run_parses_and_keeps_the_event_schema() {
    let src = workloads::by_name("fibo").expect("known workload").source(Scale::Test);
    let core = CoreConfig {
        trace: Some(TraceConfig {
            sample_period: 200,
            window_cycles: 10_000,
            ring_capacity: 256,
        }),
        ..CoreConfig::paper()
    };
    let mut vm = luart::LuaVm::from_source(&src, IsaLevel::Typed, core).expect("builds");
    vm.run(1_000_000_000).expect("runs");
    let summary = vm.cpu_mut().finish_trace().expect("tracing was enabled");
    assert!(summary.total_samples > 0, "sampler never fired");
    assert!(summary.events_recorded > 0, "no events recorded");
    assert!(!summary.windows.is_empty(), "no metric windows");

    let text = tarch_core::trace::chrome::chrome_trace(vm.cpu().tracer().expect("tracer"));
    let doc = Json::parse(&text).expect("chrome trace is valid JSON");

    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty());

    let mut metadata = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;
    for e in events {
        let ph = e.req_str("ph").expect("every event has a phase");
        e.req_str("name").expect("every event has a name");
        match ph {
            "M" => metadata += 1,
            "i" => {
                // Instants must carry a scope and a timestamp, and our
                // pc-bearing args are hex strings.
                assert_eq!(e.req_str("s").unwrap(), "t");
                e.req_u64("ts").expect("instant has integer ts");
                if let Some(pc) = e.get("args").and_then(|a| a.get("pc")) {
                    let pc = pc.as_str().expect("pc rendered as string");
                    assert!(pc.starts_with("0x"), "pc `{pc}` not hex");
                }
                instants += 1;
            }
            "C" => {
                e.req_u64("ts").expect("counter has integer ts");
                let args = e.get("args").expect("counter args");
                let Json::Obj(fields) = args else { panic!("counter args not an object") };
                assert!(!fields.is_empty());
                for (k, v) in fields {
                    assert!(v.as_f64().is_some(), "counter series `{k}` not numeric");
                }
                counters += 1;
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    assert!(metadata >= 2, "process/thread metadata missing");
    assert_eq!(instants as u64, summary.events_recorded - summary.events_dropped);
    // One mpki + one occupancy counter sample per metric window.
    assert_eq!(counters, 2 * summary.windows.len());
}
