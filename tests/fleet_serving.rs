//! End-to-end fleet-serving tests over real Table 7 workloads: the
//! sharded scheduler must be deterministic in everything but wall-clock,
//! per-tenant counters must be bit-identical to serial fresh-VM
//! execution regardless of slicing/stealing, and the fleet summary must
//! round-trip through the `BENCH_*.json` artifact.

use tarch_bench::workloads::{self, Scale};
use tarch_core::IsaLevel;
use tarch_fleet::{
    run_fleet, validate_against_serial, FleetConfig, FleetReport, TemplateSpec,
};
use tarch_runner::{BenchArtifact, EngineKind};

fn specs() -> Vec<TemplateSpec> {
    let spec = |name: &str, engine, level| TemplateSpec {
        label: name.to_string(),
        source: workloads::by_name(name).expect("known workload").source(Scale::Test),
        engine,
        level,
    };
    vec![
        spec("fibo", EngineKind::Lua, IsaLevel::Typed),
        spec("ackermann", EngineKind::Js, IsaLevel::Typed),
        spec("n-sieve", EngineKind::Lua, IsaLevel::Baseline),
    ]
}

fn cfg(tenants: usize, shards: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(tenants, shards, 25_000);
    cfg.seed = 42;
    cfg
}

/// Everything a fleet report must reproduce bit-for-bit across reruns
/// and worker counts (i.e. all of it except host wall-clock).
fn deterministic_view(r: &FleetReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.outcomes.clone(),
        r.summary.latency,
        r.summary
            .shard_rows
            .iter()
            .map(|s| (s.shard, s.tenants_completed, s.instructions, s.virtual_cycles))
            .collect::<Vec<_>>(),
        r.rounds,
        r.steals,
    )
}

#[test]
fn fleet_matches_serial_execution_over_real_workloads() {
    let specs = specs();
    let cfg = cfg(24, 4);
    let report = run_fleet(&specs, &cfg).expect("fleet runs");
    assert_eq!(report.outcomes.len(), 24);
    assert!(report.rounds > 1, "budget too large to exercise preemption");
    validate_against_serial(&report, &specs, &cfg).expect("bit-identical to serial");
}

#[test]
fn schedule_is_a_pure_function_of_seed_not_workers() {
    let specs = specs();
    let mut cfg = cfg(18, 3);
    cfg.workers = 1;
    let one = run_fleet(&specs, &cfg).expect("fleet runs");
    cfg.workers = 8;
    let eight = run_fleet(&specs, &cfg).expect("fleet runs");
    assert_eq!(deterministic_view(&one), deterministic_view(&eight));
}

#[test]
fn snapshot_and_fresh_tenants_retire_identical_counters() {
    let specs = specs();
    let mut cfg = cfg(12, 2);
    let snapshot = run_fleet(&specs, &cfg).expect("fleet runs");
    cfg.snapshot_clone = false;
    let fresh = run_fleet(&specs, &cfg).expect("fleet runs");
    assert_eq!(deterministic_view(&snapshot), deterministic_view(&fresh));
}

#[test]
fn fleet_summary_round_trips_through_the_artifact() {
    let specs = specs();
    let cfg = cfg(6, 2);
    let report = run_fleet(&specs, &cfg).expect("fleet runs");

    let mut artifact = BenchArtifact::new(Scale::Test, 1_000_000, Vec::new());
    artifact.fleet = Some(report.summary.clone());
    let path = std::env::temp_dir()
        .join(format!("tarch-fleet-serving-{}.json", std::process::id()));
    artifact.write(&path).expect("artifact writes");
    let back = BenchArtifact::read(&path).expect("artifact reads");
    std::fs::remove_file(&path).ok();

    let fleet = back.fleet.expect("fleet block survives the round trip");
    assert_eq!(fleet, report.summary);
    assert_eq!(fleet.latency, report.summary.latency);
    assert!(fleet.shard_rows.iter().all(|s| s.instructions > 0));
}
