//! Workspace-level differential tests: every Table 7 workload (at test
//! scale) must print byte-identical output under
//!
//! * the MiniScript reference interpreter,
//! * `luart`'s host-side bytecode VM,
//! * the simulated `luart` engine × {baseline, checked-load, typed},
//! * the simulated `jsrt` engine × {baseline, checked-load, typed}.
//!
//! That is seven independent executions per workload agreeing on output —
//! the strongest end-to-end correctness statement this repository makes.

use miniscript::{parse, Interp};
use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel};

const MAX_STEPS: u64 = 2_000_000_000;

fn reference_output(src: &str, name: &str) -> String {
    let chunk = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut interp = Interp::new();
    interp.run(&chunk).unwrap_or_else(|e| panic!("{name} (reference): {e}"));
    interp.output().to_string()
}

fn check_workload(name: &str) {
    let w = workloads::by_name(name).expect("known workload");
    let src = w.source(Scale::Test);
    let expected = reference_output(&src, name);
    assert!(!expected.is_empty(), "{name} printed nothing");

    // Host-side bytecode VM.
    let chunk = parse(&src).unwrap();
    let module = luart::compile(&chunk).unwrap_or_else(|e| panic!("{name}: {e}"));
    let host_out =
        luart::host_run(&module, 500_000_000).unwrap_or_else(|e| panic!("{name} hostvm: {e}"));
    assert_eq!(host_out, expected, "{name}: host VM diverged");

    // Simulated engines at every ISA level.
    for level in IsaLevel::ALL {
        let mut vm = luart::LuaVm::new(&module, level, CoreConfig::paper())
            .unwrap_or_else(|e| panic!("{name} luart {level}: {e}"));
        let r = vm.run(MAX_STEPS).unwrap_or_else(|e| panic!("{name} luart {level}: {e}"));
        assert_eq!(r.output, expected, "{name}: luart {level} diverged");

        let mut vm = jsrt::JsVm::from_source(&src, level, CoreConfig::paper())
            .unwrap_or_else(|e| panic!("{name} jsrt {level}: {e}"));
        let r = vm.run(MAX_STEPS).unwrap_or_else(|e| panic!("{name} jsrt {level}: {e}"));
        assert_eq!(r.output, expected, "{name}: jsrt {level} diverged");
    }
}

#[test]
fn ackermann_all_configs_agree() {
    check_workload("ackermann");
}

#[test]
fn binary_trees_all_configs_agree() {
    check_workload("binary-trees");
}

#[test]
fn fannkuch_all_configs_agree() {
    check_workload("fannkuch-redux");
}

#[test]
fn fibo_all_configs_agree() {
    check_workload("fibo");
}

#[test]
fn k_nucleotide_all_configs_agree() {
    check_workload("k-nucleotide");
}

#[test]
fn mandelbrot_all_configs_agree() {
    check_workload("mandelbrot");
}

#[test]
fn n_body_all_configs_agree() {
    check_workload("n-body");
}

#[test]
fn n_sieve_all_configs_agree() {
    check_workload("n-sieve");
}

#[test]
fn pidigits_all_configs_agree() {
    check_workload("pidigits");
}

#[test]
fn random_all_configs_agree() {
    check_workload("random");
}

#[test]
fn spectral_norm_all_configs_agree() {
    check_workload("spectral-norm");
}
