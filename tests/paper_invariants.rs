//! Workspace-level invariants mirroring the paper's headline claims, at
//! test scale:
//!
//! * the typed ISA retires fewer instructions and cycles than baseline on
//!   type-stable workloads;
//! * Checked Load sits between baseline and Typed on integer workloads and
//!   can regress on FP-heavy ones (Section 7.1);
//! * hardware type-check activity appears only on the typed ISA, and
//!   legacy (untyped) code pays no typed-datapath activity at all.

use tarch_bench::workloads::{by_name, Scale};
use tarch_core::{CoreConfig, Cpu, IsaLevel, StepEvent};
use tarch_isa::text::assemble;

const MAX_STEPS: u64 = 2_000_000_000;

fn lua_cycles(src: &str, level: IsaLevel) -> (u64, u64) {
    let mut vm = luart::LuaVm::from_source(src, level, CoreConfig::paper()).unwrap();
    let r = vm.run(MAX_STEPS).unwrap();
    (r.counters.instructions, r.counters.cycles)
}

#[test]
fn typed_wins_on_type_stable_workloads() {
    for name in ["fibo", "n-sieve", "fannkuch-redux"] {
        let src = by_name(name).unwrap().source(Scale::Test);
        let (bi, bc) = lua_cycles(&src, IsaLevel::Baseline);
        let (ti, tc) = lua_cycles(&src, IsaLevel::Typed);
        assert!(ti < bi, "{name}: typed instructions {ti} !< baseline {bi}");
        assert!(tc < bc, "{name}: typed cycles {tc} !< baseline {bc}");
    }
}

#[test]
fn checked_load_regresses_on_fp_heavy_code() {
    // mandelbrot is FP-dominated: the CL fast path (fixed to Int at build
    // time) always misses, so CL must not beat baseline by any meaningful
    // margin — the effect the paper reports for mandelbrot/n-body.
    let src = by_name("mandelbrot").unwrap().source(Scale::Test);
    let (_, bc) = lua_cycles(&src, IsaLevel::Baseline);
    let (_, cc) = lua_cycles(&src, IsaLevel::CheckedLoad);
    assert!(
        cc as f64 > bc as f64 * 0.995,
        "checked-load should not win on FP-heavy code: {cc} vs {bc}"
    );
}

#[test]
fn typed_activity_only_on_typed_isa() {
    let src = by_name("fibo").unwrap().source(Scale::Test);
    for level in [IsaLevel::Baseline, IsaLevel::CheckedLoad] {
        let mut vm = luart::LuaVm::from_source(&src, level, CoreConfig::paper()).unwrap();
        let r = vm.run(MAX_STEPS).unwrap();
        assert_eq!(r.counters.type_checks, 0, "{level} must not touch the TRT");
        assert_eq!(r.counters.tagged_mem, 0, "{level} must not use tld/tsd");
    }
    let mut vm = luart::LuaVm::from_source(&src, IsaLevel::Typed, CoreConfig::paper()).unwrap();
    let r = vm.run(MAX_STEPS).unwrap();
    assert!(r.counters.type_checks > 0);
    assert!(r.counters.tagged_mem > 0);
}

#[test]
fn legacy_code_pays_no_typed_tax() {
    // Section 5: untyped code on a Typed Architecture core causes no
    // typed-datapath activity — the counters stay at zero and timing is
    // identical to a core without the extension (same model, so we check
    // the counters and that untyped destinations carry the untyped tag).
    let src = "
        li a0, 0
        li a1, 1000
    top:
        add a0, a0, a1
        addi a1, a1, -1
        bnez a1, top
        halt
    ";
    let program = assemble(src, 0x1000, 0x2_0000).unwrap();
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    while cpu.step().unwrap() != StepEvent::Halted {}
    let c = cpu.counters();
    assert_eq!(c.type_checks, 0);
    assert_eq!(c.tagged_mem, 0);
    assert_eq!(c.chklb_checks, 0);
    assert_eq!(cpu.regs().read(tarch_isa::Reg::A0).t, tarch_core::UNTYPED_TAG);
}

#[test]
fn checked_load_between_baseline_and_typed_on_integer_code() {
    let src = by_name("fibo").unwrap().source(Scale::Test);
    let (bi, _) = lua_cycles(&src, IsaLevel::Baseline);
    let (ci, _) = lua_cycles(&src, IsaLevel::CheckedLoad);
    let (ti, _) = lua_cycles(&src, IsaLevel::Typed);
    assert!(ci <= bi, "CL instructions {ci} vs baseline {bi}");
    assert!(ti <= ci, "typed instructions {ti} vs CL {ci}");
}

#[test]
fn js_engine_overflow_detection_feeds_counters() {
    let src = "
        local x = 2147483000
        local hits = 0
        for i = 1, 20 do
            local y = x + 700 + i   -- overflows int32 near the end
            if y > x then hits = hits + 1 end
        end
        print(hits)
    ";
    let mut vm = jsrt::JsVm::from_source(src, IsaLevel::Typed, CoreConfig::paper()).unwrap();
    let r = vm.run(MAX_STEPS).unwrap();
    assert_eq!(r.output, "20\n");
    assert!(
        r.counters.overflow_misses > 0,
        "int32 overflow must trigger the hardware overflow detector"
    );
}

#[test]
fn trt_capacity_is_paper_sized() {
    // Both engines preload exactly 8 rules — the paper's TRT size.
    assert_eq!(luart::layout::trt_rules().len(), 8);
    assert_eq!(jsrt::layout::trt_rules().len(), 8);
    assert_eq!(CoreConfig::paper().trt_entries, 8);
}
