//! Counter-equivalence golden tests for the host-side fast paths.
//!
//! The predecoded-instruction table, the basic-block engine (with its
//! chaining and macro-op-fusion layers), the MRU cache/TLB memos, and
//! the tarch-trace observability layer are
//! pure host-side mechanisms: the architectural model — every `PerfCounters` field, the branch-predictor statistics,
//! the final register state, program output — must be bit-identical with
//! any combination of them enabled or disabled. These tests run the
//! *same* program under each fast-path configuration and diff everything
//! observable against the fully-naive reference (re-decode every fetch,
//! step one instruction at a time, scan every cache way and TLB entry):
//!
//! * every `tarch_isa::samples::all_forms()` instruction, executed as a
//!   tiny standalone program (covering every format's fetch/execute path,
//!   including ones that trap or run into a bounded loop);
//! * real Lua and JS workloads through the full simulated engines, at all
//!   three ISA levels.

use std::collections::BTreeMap;
use tarch_bench::workloads::{self, Scale};
use tarch_core::{BranchStats, CoreConfig, Cpu, FusionTable, PerfCounters, StepEvent, Trap};
use tarch_isa::asm::Program;
use tarch_isa::{samples, Instruction, Reg};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;
const FORM_STEPS: u64 = 200;
const VM_STEPS: u64 = 2_000_000_000;

/// One named fast-path configuration under test.
#[derive(Debug, Clone, Copy)]
struct Variant {
    name: &'static str,
    predecode: bool,
    blocks: bool,
    mem_fast_paths: bool,
    /// Block chaining (only meaningful with `blocks`).
    chain: bool,
    /// Macro-op fusion at block-build time (only meaningful with `blocks`).
    fuse: bool,
    /// Tier-2 template compilation of hot blocks (only meaningful with
    /// `blocks`). Compiled bodies fold decode into host closures, so
    /// this is the variant axis most likely to drift — every counter
    /// must still match the naive interpreter bit for bit.
    tier2: bool,
    /// The tarch-trace observability layer (sampler + event ring +
    /// metric windows); purely host-side, so it must not perturb any
    /// architectural counter either.
    trace: bool,
    /// Explicit fusion-table bits ([`FusionTable::from_bits`]); `None`
    /// keeps the full table. Profile-guided runs restrict which fusion
    /// classes fire per workload, and any restriction — down to the
    /// empty table — must be architecturally invisible.
    fusion: Option<u16>,
    /// Run under a PGO hot set: tier-2 promotion and superblock
    /// formation are driven by sampled hot pcs instead of the heat
    /// threshold. Cold code never compiles, hot code compiles early and
    /// straightens across chain links — none of which may perturb a
    /// single architectural counter.
    pgo_hot: bool,
}

impl Variant {
    const fn bare(name: &'static str, predecode: bool, blocks: bool, mem: bool) -> Variant {
        Variant {
            name,
            predecode,
            blocks,
            mem_fast_paths: mem,
            chain: false,
            fuse: false,
            tier2: false,
            trace: false,
            fusion: None,
            pgo_hot: false,
        }
    }
}

/// The fully-naive reference: every host-side fast path off.
const REFERENCE: Variant = Variant::bare("naive", false, false, false);

/// Each fast path alone (the block engine both with and without the
/// predecode table under it — the block builder has a decode path for
/// each), the four chain×fuse combinations of the block engine,
/// tier-2 compilation against each of those (plain, chained, fused,
/// both — the templates must match the interpreter op for op in every
/// combination), everything together (the shipping default), and the
/// observability layer on both the stepwise and the fully-optimised hot
/// loop, and the profile-guided configurations: a restricted and an empty
/// fusion table, and a sampled hot set driving tier-up and superblock
/// formation.
const VARIANTS: [Variant; 18] = [
    Variant::bare("predecode", true, false, false),
    Variant::bare("blocks", false, true, false),
    Variant::bare("blocks+predecode", true, true, false),
    Variant::bare("mru", false, false, true),
    Variant { chain: true, ..Variant::bare("blocks+chain", false, true, false) },
    Variant { fuse: true, ..Variant::bare("blocks+fuse", false, true, false) },
    Variant {
        chain: true,
        fuse: true,
        ..Variant::bare("blocks+chain+fuse", false, true, false)
    },
    Variant { tier2: true, ..Variant::bare("blocks+tier2", false, true, false) },
    Variant {
        chain: true,
        tier2: true,
        ..Variant::bare("blocks+chain+tier2", false, true, false)
    },
    Variant {
        fuse: true,
        tier2: true,
        ..Variant::bare("blocks+fuse+tier2", false, true, false)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        ..Variant::bare("blocks+chain+fuse+tier2", false, true, false)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        ..Variant::bare("all", true, true, true)
    },
    Variant { trace: true, ..Variant::bare("naive+trace", false, false, false) },
    Variant {
        chain: true,
        fuse: true,
        trace: true,
        ..Variant::bare("all+trace", true, true, true)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        trace: true,
        ..Variant::bare("all+tier2+trace", true, true, true)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        fusion: Some(0),
        ..Variant::bare("fuse-table-empty", true, true, true)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        fusion: Some(0x0007), // ALU-only pairs: AluPair | AluLoad | LoadAlu
        ..Variant::bare("fuse-table-alu-only", true, true, true)
    },
    Variant {
        chain: true,
        fuse: true,
        tier2: true,
        fusion: Some(0x07ff), // a typical derived per-workload table
        pgo_hot: true,
        ..Variant::bare("pgo", true, true, true)
    },
];

fn config(v: Variant) -> CoreConfig {
    CoreConfig {
        predecode: v.predecode,
        blocks: v.blocks,
        mem_fast_paths: v.mem_fast_paths,
        chain_blocks: v.chain,
        fuse: v.fuse,
        tier2: v.tier2,
        // Tier up on the second execution of every block, so even the
        // 200-step standalone-form programs exercise compiled bodies and
        // the deopt/revalidation edges, not just the tier-up counter.
        tier2_threshold: 1,
        fusion_table: match v.fusion {
            Some(bits) => FusionTable::from_bits(bits),
            None => FusionTable::full(),
        },
        // Dense sampling, short windows and a tiny ring, so a traced run
        // exercises every tracer path (including overflow) while the
        // architectural state must stay bit-identical.
        trace: v.trace.then_some(tarch_core::TraceConfig {
            sample_period: 1_000,
            window_cycles: 50_000,
            ring_capacity: 64,
        }),
        ..CoreConfig::paper()
    }
}

/// Everything architecturally observable after a bounded run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: Result<StepEvent, Trap>,
    counters: PerfCounters,
    branch: BranchStats,
    regs: Vec<u64>,
    pc: u64,
}

/// Runs `instr` as a standalone `[instr, halt]` program with every
/// integer register pointing at writable data, bounded by `FORM_STEPS`
/// (branch forms can loop through zeroed memory; typed forms can redirect
/// to a null handler — both are fine as long as all runs agree).
fn run_form(instr: Instruction, variant: Variant) -> Observed {
    let program = Program {
        text_base: TEXT_BASE,
        text: vec![
            instr.encode().expect("sample form encodes"),
            Instruction::Halt.encode().expect("halt encodes"),
        ],
        data_base: DATA_BASE,
        data: (0..=255u8).collect(),
        entry: TEXT_BASE,
        symbols: BTreeMap::new(),
    };
    let mut cpu = Cpu::new(config(variant));
    cpu.load_program(&program);
    if variant.pgo_hot {
        // The only block entry a two-instruction program has; the PGO
        // promotion path must still be architecturally invisible.
        cpu.set_pgo_hot_pcs([TEXT_BASE]);
    }
    for n in 1..32 {
        let r = Reg::new(n).expect("valid register");
        cpu.regs_mut().write_untyped(r, DATA_BASE + 64);
    }
    let outcome = cpu.run(FORM_STEPS);
    Observed {
        outcome,
        counters: *cpu.counters(),
        branch: cpu.branch_stats(),
        regs: (0..32).map(|n| cpu.regs().read(Reg::new(n).unwrap()).v).collect(),
        pc: cpu.pc(),
    }
}

#[test]
fn every_sample_form_is_counter_identical() {
    for instr in samples::all_forms() {
        let reference = run_form(instr, REFERENCE);
        for variant in VARIANTS {
            let observed = run_form(instr, variant);
            assert_eq!(
                observed, reference,
                "`{}` diverged from naive reference for `{instr}`",
                variant.name
            );
        }
    }
}

fn check_vm_equivalence(workload: &str) {
    let w = workloads::by_name(workload).expect("known workload");
    let src = w.source(Scale::Test);
    let chunk = miniscript::parse(&src).expect("parses");
    let module = luart::compile(&chunk).expect("compiles");

    for level in tarch_core::IsaLevel::ALL {
        let run_lua = |variant: Variant| {
            // A PGO leg is a two-phase run: a traced profile pass
            // harvests the hot set, then a fresh VM runs with it loaded
            // — exactly what `repro pgo` does.
            let hot = variant.pgo_hot.then(|| {
                let profiled = Variant { trace: true, pgo_hot: false, ..variant };
                let mut vm = luart::LuaVm::new(&module, level, config(profiled))
                    .unwrap_or_else(|e| panic!("{workload} luart {level} [pgo pre]: {e}"));
                vm.run(VM_STEPS)
                    .unwrap_or_else(|e| panic!("{workload} luart {level} [pgo pre]: {e}"));
                vm.cpu().tracer().map(|t| t.pc_profile().hot_set()).unwrap_or_default()
            });
            let mut vm = luart::LuaVm::new(&module, level, config(variant))
                .unwrap_or_else(|e| panic!("{workload} luart {level} [{}]: {e}", variant.name));
            if let Some(hot) = hot {
                vm.cpu_mut().set_pgo_hot_pcs(hot);
            }
            vm.run(VM_STEPS)
                .unwrap_or_else(|e| panic!("{workload} luart {level} [{}]: {e}", variant.name))
        };
        let reference = run_lua(REFERENCE);
        for variant in VARIANTS {
            let observed = run_lua(variant);
            let tag = format!("{workload}: luart {level} [{}]", variant.name);
            assert_eq!(observed.output, reference.output, "{tag} output diverged");
            assert_eq!(observed.counters, reference.counters, "{tag} counters diverged");
            assert_eq!(observed.branch, reference.branch, "{tag} branch stats diverged");
        }

        let run_js = |variant: Variant| {
            let hot = variant.pgo_hot.then(|| {
                let profiled = Variant { trace: true, pgo_hot: false, ..variant };
                let mut vm = jsrt::JsVm::from_source(&src, level, config(profiled))
                    .unwrap_or_else(|e| panic!("{workload} jsrt {level} [pgo pre]: {e}"));
                vm.run(VM_STEPS)
                    .unwrap_or_else(|e| panic!("{workload} jsrt {level} [pgo pre]: {e}"));
                vm.cpu().tracer().map(|t| t.pc_profile().hot_set()).unwrap_or_default()
            });
            let mut vm = jsrt::JsVm::from_source(&src, level, config(variant))
                .unwrap_or_else(|e| panic!("{workload} jsrt {level} [{}]: {e}", variant.name));
            if let Some(hot) = hot {
                vm.cpu_mut().set_pgo_hot_pcs(hot);
            }
            vm.run(VM_STEPS)
                .unwrap_or_else(|e| panic!("{workload} jsrt {level} [{}]: {e}", variant.name))
        };
        let reference = run_js(REFERENCE);
        for variant in VARIANTS {
            let observed = run_js(variant);
            let tag = format!("{workload}: jsrt {level} [{}]", variant.name);
            assert_eq!(observed.output, reference.output, "{tag} output diverged");
            assert_eq!(observed.counters, reference.counters, "{tag} counters diverged");
            assert_eq!(observed.branch, reference.branch, "{tag} branch stats diverged");
        }
    }
}

#[test]
fn lua_and_js_workload_counters_identical() {
    check_vm_equivalence("fibo");
}

/// Snapshot-clone leg of the matrix: for every fast-path configuration,
/// a tenant stamped from a [`tarch_core::Snapshot`] — run undivided *and*
/// run sliced into small preemption quanta — must retire exactly the
/// counters of a freshly constructed VM running the same program. This
/// is what makes `tarch-fleet`'s copy-on-write tenant stamping and
/// cycle-budget scheduling architecturally invisible.
#[test]
fn snapshot_clone_runs_are_counter_identical() {
    use tarch_fleet::{SliceOutcome, TemplateSpec, TenantTemplate};
    use tarch_runner::EngineKind;

    let src = workloads::by_name("fibo").expect("known workload").source(Scale::Test);
    let level = tarch_core::IsaLevel::Typed;
    for engine in EngineKind::ALL {
        for variant in std::iter::once(REFERENCE).chain(VARIANTS) {
            let core = config(variant);
            let tag = format!("fibo: {} snapshot [{}]", engine.id(), variant.name);

            // Fresh construction + undivided run through the engine driver.
            let reference = match engine {
                EngineKind::Lua => luart::LuaVm::from_source(&src, level, core)
                    .and_then(|mut vm| vm.run(VM_STEPS))
                    .map(|r| (r.counters, r.branch, r.output))
                    .unwrap_or_else(|e| panic!("{tag}: {e}")),
                EngineKind::Js => jsrt::JsVm::from_source(&src, level, core)
                    .and_then(|mut vm| vm.run(VM_STEPS))
                    .map(|r| (r.counters, r.branch, r.output))
                    .unwrap_or_else(|e| panic!("{tag}: {e}")),
            };

            let spec = TemplateSpec {
                label: tag.clone(),
                source: src.clone(),
                engine,
                level,
            };
            let template = TenantTemplate::build(spec, core)
                .unwrap_or_else(|e| panic!("{tag}: {e}"));

            // Snapshot clone, run undivided.
            let mut clone = template.clone_tenant();
            let mut steps = VM_STEPS;
            clone.run_to_completion(&mut steps).unwrap_or_else(|e| panic!("{tag}: {e}"));
            let undivided = (clone.counters(), clone.branch_stats(), clone.output().to_string());
            assert_eq!(undivided, reference, "{tag}: undivided clone diverged");

            // Snapshot clone, preempted into small cycle quanta.
            let mut sliced = template.clone_tenant();
            let mut steps = VM_STEPS;
            let mut slices = 0u64;
            while sliced.run_slice(10_000, &mut steps).unwrap_or_else(|e| panic!("{tag}: {e}"))
                == SliceOutcome::Preempted
            {
                slices += 1;
            }
            assert!(slices > 1, "{tag}: budget too large to exercise preemption");
            let resliced = (sliced.counters(), sliced.branch_stats(), sliced.output().to_string());
            assert_eq!(resliced, reference, "{tag}: sliced clone diverged after {slices} slices");
        }
    }
}

#[test]
fn helper_heavy_workload_counters_identical() {
    // string/table helpers go through `ecall`, whose native implementations
    // write simulated memory via `mem_mut` — the epoch-revalidation path
    // for both the predecode slots and the block table.
    check_vm_equivalence("k-nucleotide");
}
