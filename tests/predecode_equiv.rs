//! Counter-equivalence golden tests for the predecode engine.
//!
//! The predecoded-instruction table is a pure host-side optimisation: the
//! architectural model — every `PerfCounters` field, the branch-predictor
//! statistics, the final register state, program output — must be
//! bit-identical whether fetches are served from the table or re-decoded
//! from memory on every step. These tests run the *same* program with
//! `CoreConfig::predecode` on and off and diff everything observable:
//!
//! * every `tarch_isa::samples::all_forms()` instruction, executed as a
//!   tiny standalone program (covering every format's fetch/execute path,
//!   including ones that trap or run into a bounded loop);
//! * real Lua and JS workloads through the full simulated engines, at all
//!   three ISA levels.

use std::collections::BTreeMap;
use tarch_bench::workloads::{self, Scale};
use tarch_core::{BranchStats, CoreConfig, Cpu, PerfCounters, StepEvent, Trap};
use tarch_isa::asm::Program;
use tarch_isa::{samples, Instruction, Reg};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;
const FORM_STEPS: u64 = 200;
const VM_STEPS: u64 = 2_000_000_000;

fn config(predecode: bool) -> CoreConfig {
    CoreConfig { predecode, ..CoreConfig::paper() }
}

/// Everything architecturally observable after a bounded run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: Result<StepEvent, Trap>,
    counters: PerfCounters,
    branch: BranchStats,
    regs: Vec<u64>,
    pc: u64,
}

/// Runs `instr` as a standalone `[instr, halt]` program with every
/// integer register pointing at writable data, bounded by `FORM_STEPS`
/// (branch forms can loop through zeroed memory; typed forms can redirect
/// to a null handler — both are fine as long as the two runs agree).
fn run_form(instr: Instruction, predecode: bool) -> Observed {
    let program = Program {
        text_base: TEXT_BASE,
        text: vec![
            instr.encode().expect("sample form encodes"),
            Instruction::Halt.encode().expect("halt encodes"),
        ],
        data_base: DATA_BASE,
        data: (0..=255u8).collect(),
        entry: TEXT_BASE,
        symbols: BTreeMap::new(),
    };
    let mut cpu = Cpu::new(config(predecode));
    cpu.load_program(&program);
    for n in 1..32 {
        let r = Reg::new(n).expect("valid register");
        cpu.regs_mut().write_untyped(r, DATA_BASE + 64);
    }
    let outcome = cpu.run(FORM_STEPS);
    Observed {
        outcome,
        counters: *cpu.counters(),
        branch: cpu.branch_stats(),
        regs: (0..32).map(|n| cpu.regs().read(Reg::new(n).unwrap()).v).collect(),
        pc: cpu.pc(),
    }
}

#[test]
fn every_sample_form_is_counter_identical() {
    for instr in samples::all_forms() {
        let on = run_form(instr, true);
        let off = run_form(instr, false);
        assert_eq!(on, off, "predecode on/off diverged for `{instr}`");
    }
}

fn check_vm_equivalence(workload: &str) {
    let w = workloads::by_name(workload).expect("known workload");
    let src = w.source(Scale::Test);
    let chunk = miniscript::parse(&src).expect("parses");
    let module = luart::compile(&chunk).expect("compiles");

    for level in tarch_core::IsaLevel::ALL {
        let run_lua = |predecode: bool| {
            let mut vm = luart::LuaVm::new(&module, level, config(predecode))
                .unwrap_or_else(|e| panic!("{workload} luart {level}: {e}"));
            vm.run(VM_STEPS).unwrap_or_else(|e| panic!("{workload} luart {level}: {e}"))
        };
        let on = run_lua(true);
        let off = run_lua(false);
        assert_eq!(on.output, off.output, "{workload}: luart {level} output diverged");
        assert_eq!(on.counters, off.counters, "{workload}: luart {level} counters diverged");
        assert_eq!(on.branch, off.branch, "{workload}: luart {level} branch stats diverged");

        let run_js = |predecode: bool| {
            let mut vm = jsrt::JsVm::from_source(&src, level, config(predecode))
                .unwrap_or_else(|e| panic!("{workload} jsrt {level}: {e}"));
            vm.run(VM_STEPS).unwrap_or_else(|e| panic!("{workload} jsrt {level}: {e}"))
        };
        let on = run_js(true);
        let off = run_js(false);
        assert_eq!(on.output, off.output, "{workload}: jsrt {level} output diverged");
        assert_eq!(on.counters, off.counters, "{workload}: jsrt {level} counters diverged");
        assert_eq!(on.branch, off.branch, "{workload}: jsrt {level} branch stats diverged");
    }
}

#[test]
fn lua_and_js_workload_counters_identical() {
    check_vm_equivalence("fibo");
}

#[test]
fn helper_heavy_workload_counters_identical() {
    // string/table helpers go through `ecall`, whose native implementations
    // write simulated memory via `mem_mut` — the epoch-revalidation path.
    check_vm_equivalence("k-nucleotide");
}
