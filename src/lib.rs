//! # typed-arch — facade crate
//!
//! One-stop re-exports for the Typed Architectures reproduction (ASPLOS
//! 2017). See the README for the architecture overview and DESIGN.md for
//! the system inventory; the individual crates carry the detailed docs:
//!
//! * [`isa`] — the TRV64 instruction set and assemblers;
//! * [`mem`] — caches, TLBs, DRAM timing, physical memory;
//! * [`core`] — the Typed Architecture processor model (the paper's
//!   contribution);
//! * [`sim`] — machine integration and the native-helper interface;
//! * [`script`] — the MiniScript frontend and reference interpreter;
//! * [`lua`] — the register-based Lua-like engine;
//! * [`js`] — the stack-based NaN-boxing engine;
//! * [`energy`] — the area/power/EDP model;
//! * [`runner`] — the parallel experiment runner (worker pool, result
//!   cache, `BENCH_*.json` artifacts);
//! * [`mod@bench`] — workloads and the experiment harness.
//!
//! # Examples
//!
//! ```
//! use typed_arch::core::{CoreConfig, IsaLevel};
//! use typed_arch::lua::LuaVm;
//!
//! let mut vm = LuaVm::from_source("print(6 * 7)", IsaLevel::Typed, CoreConfig::paper())?;
//! assert_eq!(vm.run(10_000_000)?.output, "42\n");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// The TRV64 instruction set (`tarch-isa`).
pub use tarch_isa as isa;

/// Memory-hierarchy models (`tarch-mem`).
pub use tarch_mem as mem;

/// The Typed Architecture core (`tarch-core`).
pub use tarch_core as core;

/// Machine integration (`tarch-sim`).
pub use tarch_sim as sim;

/// The MiniScript frontend (`miniscript`).
pub use miniscript as script;

/// The register-based Lua-like engine (`luart`).
pub use luart as lua;

/// The stack-based NaN-boxing engine (`jsrt`).
pub use jsrt as js;

/// The area/power/EDP model (`tarch-energy`).
pub use tarch_energy as energy;

/// The parallel experiment runner (`tarch-runner`).
pub use tarch_runner as runner;

/// Workloads and the experiment harness (`tarch-bench`).
pub use tarch_bench as bench;
