//! Property-based differential testing for the NaN-boxing engine: random
//! arithmetic expressions must print identically under the reference
//! interpreter and the *simulated* typed engine — this fuzzes the
//! stack-machine compiler, the NaN-box packing, and the hardware tag
//! datapath together.

use jsrt::JsVm;
use miniscript::{parse, Interp};
use proptest::prelude::*;
use tarch_core::{CoreConfig, IsaLevel};

#[derive(Debug, Clone)]
enum E {
    Int(i32),
    Float(f64),
    Bin(&'static str, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Int(v) => format!("{v}"),
            E::Float(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            E::Bin(op, a, b) => format!("({} {op} {})", a.render(), b.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-40i32..40).prop_map(E::Int),
        (-4.0f64..4.0).prop_map(|f| E::Float((f * 4.0).round() / 4.0)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("/")],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_typed_engine_agrees_with_reference(e in arb_expr()) {
        let src = format!("print({})", e.render());
        let chunk = parse(&src).unwrap();
        let mut interp = Interp::new();
        interp.run(&chunk).unwrap();
        let want = interp.output().to_string();

        let mut vm = JsVm::from_source(&src, IsaLevel::Typed, CoreConfig::paper()).unwrap();
        let r = vm.run(50_000_000).unwrap();
        prop_assert_eq!(r.output, want, "source: {}", src);
    }
}
