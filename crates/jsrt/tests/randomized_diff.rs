//! Randomized differential testing for the NaN-boxing engine: random
//! arithmetic expressions must print identically under the reference
//! interpreter and the *simulated* typed engine — this fuzzes the
//! stack-machine compiler, the NaN-box packing, and the hardware tag
//! datapath together.
//!
//! Expressions come from a seeded deterministic generator
//! ([`tarch_testkit::Rng`]), so the corpus is identical on every run.

use jsrt::JsVm;
use miniscript::{parse, Interp};
use tarch_core::{CoreConfig, IsaLevel};
use tarch_testkit::Rng;

#[derive(Debug, Clone)]
enum E {
    Int(i32),
    Float(f64),
    Bin(&'static str, Box<E>, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Int(v) => format!("{v}"),
            E::Float(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            E::Bin(op, a, b) => format!("({} {op} {})", a.render(), b.render()),
        }
    }
}

const BIN_OPS: [&str; 4] = ["+", "-", "*", "/"];

fn random_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.range_u64(0, 3) == 0 {
        if rng.bool() {
            E::Int(rng.range_i32(-40, 40))
        } else {
            E::Float((rng.range_f64(-4.0, 4.0) * 4.0).round() / 4.0)
        }
    } else {
        let op = *rng.choice(&BIN_OPS);
        E::Bin(
            op,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        )
    }
}

#[test]
fn simulated_typed_engine_agrees_with_reference() {
    let mut rng = Rng::new(0x5a9b_0c01);
    for _ in 0..48 {
        let e = random_expr(&mut rng, 3);
        let src = format!("print({})", e.render());
        let chunk = parse(&src).unwrap();
        let mut interp = Interp::new();
        interp.run(&chunk).unwrap();
        let want = interp.output().to_string();

        let mut vm = JsVm::from_source(&src, IsaLevel::Typed, CoreConfig::paper()).unwrap();
        let r = vm.run(50_000_000).unwrap();
        assert_eq!(r.output, want, "source: {src}");
    }
}
