//! Differential tests: every program must print the same bytes under the
//! MiniScript reference interpreter and the simulated `jsrt` engine at all
//! three ISA levels.

use jsrt::{compile, JsVm};
use miniscript::{parse, Interp};
use tarch_core::{CoreConfig, IsaLevel};

const MAX_STEPS: u64 = 200_000_000;

fn check(src: &str) {
    let chunk = parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut interp = Interp::new();
    interp.run(&chunk).unwrap_or_else(|e| panic!("reference: {e}\n{src}"));
    let expected = interp.output().to_string();

    let module = compile(&chunk).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut instr = Vec::new();
    for level in IsaLevel::ALL {
        let mut vm = JsVm::new(&module, level, CoreConfig::paper())
            .unwrap_or_else(|e| panic!("build {level}: {e}"));
        let report = vm.run(MAX_STEPS).unwrap_or_else(|e| panic!("sim {level}: {e}\n{src}"));
        assert_eq!(report.output, expected, "{level} engine diverged for:\n{src}");
        instr.push((level, report.counters.instructions));
    }
    // Typed may only exceed baseline by its one-time setup.
    let baseline = instr[0].1;
    let typed = instr[2].1;
    assert!(
        typed <= baseline + 100,
        "typed retired {typed} vs baseline {baseline} for:\n{src}"
    );
}

#[test]
fn integer_arithmetic() {
    check("print(1 + 2, 10 - 3, 6 * 7, 7 // 2, 7 % 3, -7 // 2, -7 % 3)");
    check("local a = 100 local b = 7 print(a + b * 2 - a // b)");
}

#[test]
fn int32_overflow_promotes_to_double() {
    // 2^31 - 1 + 1 overflows int32; jsrt promotes to double, which prints
    // identically to the reference's int64 result.
    check("local x = 2147483647 print(x + 1, x * 2, -(-x) - x)");
    check("local y = -2147483648 print(y - 1)");
}

#[test]
fn float_arithmetic() {
    check("print(1.5 + 2.25, 1.5 * 2.0, 7.0 / 2.0, 0.5 - 1.5)");
    check("print(1 + 2.5, 2.5 + 1, 2 * 3.5)");
    check("print(7 / 2, 7.5 % 2, 7.5 // 2)");
}

#[test]
fn string_coercion() {
    check("print(\"1\" + \"2\")");
    check("print(\"1.5\" * 2)");
    check("print(-\"3\")");
}

#[test]
fn comparisons() {
    check("print(1 < 2, 2 <= 2, 3 == 3.0, 3 ~= 4, 2 > 1, 2 >= 3)");
    check("print(\"abc\" == \"abc\", \"a\" == \"b\", \"a\" < \"b\")");
    check("print(1.5 < 2.5, 1.5 <= 1.5, 2.5 == 2.5, 0.0 == -0.0)");
    check("print(nil == nil, nil == false, true == true)");
    check("print(1 == 1.5, 2 < 2.5)"); // mixed int/double compares
}

#[test]
fn logic_and_truthiness() {
    check("print(true and 1 or 2, false and 1 or 2, nil and 1 or 2)");
    check("local x = 0 if x then print(\"zero is truthy\") end");
    check("print(not nil, not false, not 0, not \"\")");
}

#[test]
fn control_flow() {
    check("local s = 0 for i = 1, 50 do s = s + i end print(s)");
    check("local s = 0 for i = 50, 1, -2 do s = s + i end print(s)");
    check("for x = 0.25, 1.0, 0.25 do write(x, \";\") end print(\"\")");
    check("local st = 2 local s = 0 for i = 1, 10, st do s = s + i end print(s)"); // dynamic step
    check("local i = 0 while i < 32 do i = i + 5 end print(i)");
    check("local i = 0 while true do i = i + 1 if i >= 7 then break end end print(i)");
    check("if 1 > 2 then print(1) elseif 3 > 2 then print(2) else print(3) end");
}

#[test]
fn functions_and_recursion() {
    check("function add(x, y) return x + y end print(add(1, 2), add(1.5, 2.0))");
    check("function fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end print(fib(16))");
    check("function noval() return end print(noval())");
}

#[test]
fn arrays_fast_paths() {
    check("local t = {1, 2, 3} print(t[1] + t[2] + t[3], #t)");
    check("local t = {} for i = 1, 40 do t[i] = i * i end local s = 0 for i = 1, 40 do s = s + t[i] end print(s, #t)");
}

#[test]
fn arrays_slow_paths() {
    check("local t = {} t[\"name\"] = \"js\" t.version = 17 print(t.name, t[\"version\"], t.absent)");
    check("local t = {} t[100] = 7 print(t[100], t[99], #t)");
    check("local t = {} t[2] = 2 t[1] = 1 print(#t, t[1], t[2])");
    check("local t = {} insert(t, 10) insert(t, 20) print(#t, t[2])");
    check("local m = {{1, 2}, {3, 4}} print(m[1][2], m[2][1])");
}

#[test]
fn strings_and_builtins() {
    check("print(sub(\"typed architectures\", 7, 9), len(\"abc\"), #\"hello\")");
    check("print(\"a\" .. \"b\" .. 12 .. 3.5)");
    check("print(char(72), byte(\"H\"), byte(\"Hi\", 2))");
    check("print(floor(9.9), floor(-9.9), sqrt(144), abs(-5), min(3, 8), max(3, 8))");
    check("print(tostring(42), tostring(nil), tostring(1.25))");
}

#[test]
fn globals_and_unary() {
    check("g = 5 function bump() g = g + 1 end bump() bump() print(g)");
    check("print(undefined_global)");
    check("local x = 5 print(-x, -(-x))");
    check("local y = 2.5 print(-y)");
}

#[test]
fn typed_counters_behave() {
    let src = "local s = 0 for i = 1, 200 do s = s + i * 2 end print(s)";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).unwrap();
    let r = vm.run(MAX_STEPS).unwrap();
    assert_eq!(r.output, "40200\n");
    assert!(r.counters.type_hits >= 400);
    assert_eq!(r.counters.overflow_misses, 0);

    // Overflowing adds trigger the hardware overflow detector.
    let src = "local x = 2000000000 local s = 0 for i = 1, 10 do s = x + x end print(s)";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).unwrap();
    let r = vm.run(MAX_STEPS).unwrap();
    assert_eq!(r.output, "4000000000\n");
    assert!(r.counters.overflow_misses >= 10, "overflow misses: {}", r.counters.overflow_misses);
}

#[test]
fn profiled_run_attributes_bytecodes() {
    let src = "local s = 0 for i = 1, 100 do s = s + i end print(s)";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Baseline, CoreConfig::paper()).unwrap();
    let r = vm.run_profiled(MAX_STEPS).unwrap();
    let p = r.profile.expect("profile requested");
    assert_eq!(p.dynamic.get(&jsrt::Op::Add).copied(), Some(200), "loop add + index add");
    assert!(p.total_bytecodes() > 400);
}

#[test]
fn runtime_errors() {
    let src = "local t = nil print(t[1])";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).unwrap();
    let err = vm.run(MAX_STEPS).unwrap_err();
    assert!(err.to_string().contains("index a nil"), "{err}");

    let src = "print(7 // 0)";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Baseline, CoreConfig::paper()).unwrap();
    let err = vm.run(MAX_STEPS).unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn stack_overflow_is_caught() {
    let src = "function f(n) return f(n + 1) end print(f(0))";
    let module = compile(&parse(src).unwrap()).unwrap();
    let mut vm = JsVm::new(&module, IsaLevel::Baseline, CoreConfig::paper()).unwrap();
    let err = vm.run(MAX_STEPS).unwrap_err();
    assert!(err.to_string().contains("stack overflow"), "{err}");
}
