//! # jsrt — the stack-based, NaN-boxing JavaScript-like scripting engine
//!
//! The second engine the paper evaluates (Section 4.2), standing in for
//! SpiderMonkey 17:
//!
//! * a **stack-based** bytecode VM whose binary operators consume the top
//!   of stack;
//! * SpiderMonkey's **NaN-boxing value layout**: doubles stored raw,
//!   non-doubles carry 13 one bits, a 4-bit tag at bits `[50:47]` and a
//!   47-bit payload; integers take the int32 fast path and overflow to
//!   doubles (the overflow-triggered type misprediction of Section 7.1);
//! * dense-element array objects with host-side property maps, interned
//!   strings;
//! * a generated-TRV64 interpreter in three variants of the five hot
//!   bytecodes (ADD, SUB, MUL, GETELEM, SETELEM; paper Table 3), using
//!   the hardware NaN-detection tag datapath in the Typed variant.
//!
//! # Examples
//!
//! ```
//! use jsrt::JsVm;
//! use tarch_core::{CoreConfig, IsaLevel};
//!
//! let src = "
//!     local s = 0
//!     for i = 1, 100 do s = s + i end
//!     print(s)
//! ";
//! let mut typed = JsVm::from_source(src, IsaLevel::Typed, CoreConfig::paper())?;
//! let report = typed.run(10_000_000)?;
//! assert_eq!(report.output, "5050\n");
//! assert!(report.counters.type_hits > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bytecode;
mod codegen;
mod compiler;
mod engine;
pub mod helpers_mod;
pub mod layout;
mod runtime;

pub use bytecode::{Bc, Builtin, Const, Module, Op, Proto};
pub use codegen::{build_image, JsImage};
pub use compiler::{compile, CompileError};
pub use engine::{run_source, EngineError, JsVm, OpProfile, RunReport};
pub use runtime::JsHost;
