//! Engine driver for `jsrt`: compile → generate → simulate.

use crate::bytecode::{Module, Op};
use crate::codegen::{build_image, JsImage};
use crate::compiler::{compile, CompileError};
use crate::runtime::JsHost;
use miniscript::ParseError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tarch_core::{BranchStats, CoreConfig, IsaLevel, PerfCounters};
use tarch_isa::asm::AsmError;
use tarch_sim::{Machine, RunOutcome, SimError};

/// Error from building or running the engine.
#[derive(Debug)]
pub enum EngineError {
    /// MiniScript parse error.
    Parse(ParseError),
    /// Bytecode compilation error.
    Compile(CompileError),
    /// Interpreter assembly error (codegen bug).
    Asm(AsmError),
    /// Simulation error (trap or runtime error).
    Sim(SimError),
    /// Step budget exhausted.
    StepLimit {
        /// The exhausted budget.
        max_steps: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => e.fmt(f),
            EngineError::Compile(e) => e.fmt(f),
            EngineError::Asm(e) => e.fmt(f),
            EngineError::Sim(e) => e.fmt(f),
            EngineError::StepLimit { max_steps } => {
                write!(f, "program did not halt within {max_steps} simulated instructions")
            }
        }
    }
}

impl Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Parse(e)
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> EngineError {
        EngineError::Compile(e)
    }
}

impl From<AsmError> for EngineError {
    fn from(e: AsmError) -> EngineError {
        EngineError::Asm(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> EngineError {
        EngineError::Sim(e)
    }
}

/// Per-opcode attribution from an instrumented run.
#[derive(Debug, Clone, Default)]
pub struct OpProfile {
    /// Dynamic bytecode counts.
    pub dynamic: HashMap<Op, u64>,
    /// Native instructions attributed to each opcode's handler.
    pub instructions: HashMap<Op, u64>,
}

impl OpProfile {
    /// Total dynamic bytecodes.
    pub fn total_bytecodes(&self) -> u64 {
        self.dynamic.values().sum()
    }

    /// Average native instructions per dynamic instance of `op`.
    pub fn instr_per_bytecode(&self, op: Op) -> f64 {
        let d = self.dynamic.get(&op).copied().unwrap_or(0);
        if d == 0 {
            0.0
        } else {
            self.instructions.get(&op).copied().unwrap_or(0) as f64 / d as f64
        }
    }
}

/// Results of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Printed output.
    pub output: String,
    /// Hardware counters.
    pub counters: PerfCounters,
    /// Branch statistics.
    pub branch: BranchStats,
    /// ISA level.
    pub level: IsaLevel,
    /// Optional per-opcode attribution.
    pub profile: Option<OpProfile>,
}

impl RunReport {
    /// Control-flow mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.counters.per_kilo_instr(self.branch.total_misses())
    }
}

/// A ready-to-run `jsrt` engine instance.
///
/// # Examples
///
/// ```
/// use jsrt::JsVm;
/// use tarch_core::{CoreConfig, IsaLevel};
///
/// let mut vm = JsVm::from_source("print(40 + 2)", IsaLevel::Typed, CoreConfig::paper())?;
/// let report = vm.run(10_000_000)?;
/// assert_eq!(report.output, "42\n");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JsVm {
    machine: Machine<JsHost>,
    image: JsImage,
}

impl JsVm {
    /// Builds an engine for a compiled module.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on codegen failure.
    pub fn new(module: &Module, level: IsaLevel, core: CoreConfig) -> Result<JsVm, EngineError> {
        let image = build_image(module, level)?;
        let host = JsHost::new(image.strings.clone());
        let mut machine = Machine::new(core, host);
        machine.load(&image.program);
        Ok(JsVm { machine, image })
    }

    /// Parses, compiles and builds in one step.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on parse/compile/codegen failure.
    pub fn from_source(src: &str, level: IsaLevel, core: CoreConfig) -> Result<JsVm, EngineError> {
        let chunk = miniscript::parse(src)?;
        let module = compile(&chunk)?;
        JsVm::new(&module, level, core)
    }

    /// The generated image.
    pub fn image(&self) -> &JsImage {
        &self.image
    }

    /// The simulated core (read access for measurement tooling).
    pub fn cpu(&self) -> &tarch_core::Cpu {
        self.machine.cpu()
    }

    /// The native host (read access; `tarch-fleet` clones it alongside a
    /// core snapshot to stamp out tenant instances).
    pub fn host(&self) -> &JsHost {
        self.machine.host()
    }

    /// Decomposes the constructed VM into its core and host, discarding
    /// the image metadata (the program is already loaded into the core's
    /// memory). `tarch-fleet`'s fresh-construction baseline uses this to
    /// drive the pair directly.
    pub fn into_parts(self) -> (tarch_core::Cpu, JsHost) {
        self.machine.into_parts()
    }

    /// The simulated core, mutably (measurement tooling, e.g. enabling
    /// the opcode-pair profile behind `repro bench --profile-pairs`).
    pub fn cpu_mut(&mut self) -> &mut tarch_core::Cpu {
        self.machine.cpu_mut()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on traps, runtime errors, or step-limit
    /// exhaustion.
    pub fn run(&mut self, max_steps: u64) -> Result<RunReport, EngineError> {
        match self.machine.run(max_steps)? {
            RunOutcome::Halted => Ok(self.report(None)),
            RunOutcome::StepLimit => Err(EngineError::StepLimit { max_steps }),
        }
    }

    /// Runs with per-opcode attribution.
    ///
    /// # Errors
    ///
    /// Same as [`JsVm::run`].
    pub fn run_profiled(&mut self, max_steps: u64) -> Result<RunReport, EngineError> {
        let entries: HashMap<u64, Op> =
            self.image.handler_entries.iter().map(|(op, pc)| (*pc, *op)).collect();
        let mut profile = OpProfile::default();
        let mut current: Option<Op> = None;
        let mut since_entry = 0u64;
        let outcome = self.machine.run_observed(max_steps, |pc| {
            if let Some(op) = entries.get(&pc) {
                if let Some(prev) = current {
                    *profile.instructions.entry(prev).or_insert(0) += since_entry;
                }
                *profile.dynamic.entry(*op).or_insert(0) += 1;
                current = Some(*op);
                since_entry = 0;
            }
            since_entry += 1;
        })?;
        if let Some(prev) = current {
            *profile.instructions.entry(prev).or_insert(0) += since_entry;
        }
        match outcome {
            RunOutcome::Halted => Ok(self.report(Some(profile))),
            RunOutcome::StepLimit => Err(EngineError::StepLimit { max_steps }),
        }
    }

    fn report(&self, profile: Option<OpProfile>) -> RunReport {
        RunReport {
            output: self.machine.host().output().to_string(),
            counters: *self.machine.cpu().counters(),
            branch: self.machine.cpu().branch_stats(),
            level: self.image.level,
            profile,
        }
    }
}

/// One-shot convenience runner.
///
/// # Errors
///
/// Returns [`EngineError`] on any failure along the pipeline.
pub fn run_source(
    src: &str,
    level: IsaLevel,
    core: CoreConfig,
    max_steps: u64,
) -> Result<RunReport, EngineError> {
    JsVm::from_source(src, level, core)?.run(max_steps)
}
