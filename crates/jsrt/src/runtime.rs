//! The `jsrt` native host: runtime services behind `ecall`.
//!
//! Same contract and cost philosophy as `luart`'s host (costs identical
//! across ISA levels; see that module's table), over 8-byte NaN-boxed
//! values. Number semantics follow the engine: integers live in the int32
//! fast range and overflow to doubles — printed output still matches the
//! i64-based reference because every benchmark value stays inside the
//! exact-double range.

use crate::bytecode::{Builtin, Op};
use crate::helpers_mod as helpers;
use crate::layout::{self, map, object, tag};
use miniscript::{float_floor_mod, format_float, int_floor_div, int_floor_mod, string_sub};
use std::collections::HashMap;
use tarch_core::{canonical_f64_bits, Cpu};
use tarch_isa::Reg;
use tarch_sim::{Cost, HostError, NativeHost};

/// Hash-part key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HKey {
    Int(i64),
    Str(u32),
}

/// Decoded host view of a NaN-boxed value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Hv {
    Undef,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(u32),
    Object(u64),
}

/// The native host for the `jsrt` engine.
///
/// `Clone` pairs with `tarch_core::Snapshot`: the host is plain owned
/// data (interned strings, object hash parts, output buffer), so cloning
/// it alongside a snapshot clone yields a fully isolated tenant VM.
#[derive(Debug, Clone)]
pub struct JsHost {
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    hash_parts: Vec<HashMap<HKey, u64>>,
    globals: HashMap<u32, u64>,
    output: String,
    heap_ptr: u64,
}

impl JsHost {
    /// Creates a host pre-loaded with the image's interned strings.
    pub fn new(strings: Vec<String>) -> JsHost {
        let string_ids =
            strings.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
        JsHost {
            strings,
            string_ids,
            hash_parts: Vec::new(),
            globals: HashMap::new(),
            output: String::new(),
            heap_ptr: map::HEAP_BASE,
        }
    }

    /// Everything the program printed.
    pub fn output(&self) -> &str {
        &self.output
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(id) = self.string_ids.get(s) {
            return *id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    fn string(&self, id: u32) -> Result<&str, HostError> {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| HostError::new(0, format!("bad string id {id}")))
    }

    fn alloc(&mut self, bytes: u64) -> Result<u64, HostError> {
        let addr = (self.heap_ptr + 15) & !15;
        let end = addr + bytes;
        if end > map::HEAP_LIMIT {
            return Err(HostError::new(0, "heap exhausted (GC is disabled)"));
        }
        self.heap_ptr = end;
        Ok(addr)
    }

    fn decode(value: u64) -> Hv {
        if !layout::is_boxed(value) {
            return Hv::Double(f64::from_bits(value));
        }
        let payload = layout::payload_of(value);
        match layout::tag_of(value) {
            tag::INT => Hv::Int(payload),
            tag::UNDEF => Hv::Undef,
            tag::BOOL => Hv::Bool(payload != 0),
            tag::STR => Hv::Str(payload as u32),
            tag::OBJECT => Hv::Object(payload as u64),
            other => Hv::Object(((other as u64) << 47) | payload as u64), // unreachable in practice
        }
    }

    /// Encodes a number with the engine's int32-or-double rule.
    fn encode_number(v: f64) -> u64 {
        if v == v.trunc() && (i32::MIN as f64..=i32::MAX as f64).contains(&v) && v.is_finite() {
            layout::box_int(v as i32)
        } else {
            canonical_f64_bits(v)
        }
    }

    fn encode_int(v: i64) -> u64 {
        match i32::try_from(v) {
            Ok(v32) => layout::box_int(v32),
            Err(_) => canonical_f64_bits(v as f64),
        }
    }

    fn encode(hv: Hv) -> u64 {
        match hv {
            Hv::Undef => layout::UNDEFINED,
            Hv::Bool(b) => layout::boxed(tag::BOOL, b as u64),
            Hv::Int(i) => Self::encode_int(i),
            Hv::Double(f) => canonical_f64_bits(f),
            Hv::Str(id) => layout::boxed(tag::STR, id as u64),
            Hv::Object(p) => layout::boxed(tag::OBJECT, p),
        }
    }

    fn type_name(hv: Hv) -> &'static str {
        match hv {
            Hv::Undef => "nil",
            Hv::Bool(_) => "boolean",
            Hv::Int(_) | Hv::Double(_) => "number",
            Hv::Str(_) => "string",
            Hv::Object(_) => "table",
        }
    }

    fn format(&self, hv: Hv) -> Result<String, HostError> {
        Ok(match hv {
            Hv::Undef => "nil".to_string(),
            Hv::Bool(b) => b.to_string(),
            Hv::Int(i) => i.to_string(),
            Hv::Double(f) => format_float(f),
            Hv::Str(id) => self.string(id)?.to_string(),
            Hv::Object(_) => "table".to_string(),
        })
    }

    fn to_number(&self, hv: Hv) -> Result<(f64, bool), HostError> {
        match hv {
            Hv::Int(i) => Ok((i as f64, false)),
            Hv::Double(f) => Ok((f, false)),
            Hv::Str(id) => {
                let s = self.string(id)?;
                s.trim()
                    .parse::<f64>()
                    .map(|f| (f, true))
                    .map_err(|_| HostError::new(0, format!("cannot convert `{s}` to a number")))
            }
            other => Err(HostError::new(
                0,
                format!("attempt to perform arithmetic on a {} value", Self::type_name(other)),
            )),
        }
    }

    fn read(cpu: &Cpu, addr: u64) -> u64 {
        cpu.mem().read_u64(addr)
    }

    fn write(cpu: &mut Cpu, addr: u64, v: u64) {
        cpu.host_store_u64(addr, v);
    }

    // --- object services -----------------------------------------------

    fn elem_key(&self, key: Hv) -> Result<HKey, HostError> {
        match key {
            Hv::Int(i) => Ok(HKey::Int(i)),
            Hv::Double(f) if f == f.trunc() && f.is_finite() => Ok(HKey::Int(f as i64)),
            Hv::Str(id) => Ok(HKey::Str(id)),
            other => {
                Err(HostError::new(0, format!("invalid table key ({})", Self::type_name(other))))
            }
        }
    }

    fn elem_get(&self, cpu: &Cpu, hdr: u64, key: HKey) -> Result<u64, HostError> {
        if let HKey::Int(i) = key {
            let len = cpu.mem().read_u64(hdr + object::LEN as u64) as i64;
            if i >= 1 && i <= len {
                let elems = cpu.mem().read_u64(hdr + object::ELEMS_PTR as u64);
                return Ok(Self::read(cpu, elems + (i as u64 - 1) * 8));
            }
        }
        let hash_id = cpu.mem().read_u64(hdr + object::HASH_ID as u64) as usize;
        let part = self
            .hash_parts
            .get(hash_id)
            .ok_or_else(|| HostError::new(0, "corrupt object header"))?;
        Ok(part.get(&key).copied().unwrap_or(layout::UNDEFINED))
    }

    fn elem_set(
        &mut self,
        cpu: &mut Cpu,
        hdr: u64,
        key: HKey,
        value: u64,
    ) -> Result<Cost, HostError> {
        let mut extra = Cost::default();
        if let HKey::Int(i) = key {
            let len = cpu.mem().read_u64(hdr + object::LEN as u64) as i64;
            let cap = cpu.mem().read_u64(hdr + object::CAP as u64) as i64;
            if i >= 1 && i <= len {
                let elems = cpu.mem().read_u64(hdr + object::ELEMS_PTR as u64);
                Self::write(cpu, elems + (i as u64 - 1) * 8, value);
                return Ok(extra);
            }
            if i == len + 1 {
                if len == cap {
                    extra = extra.plus(self.grow(cpu, hdr)?);
                }
                let elems = cpu.mem().read_u64(hdr + object::ELEMS_PTR as u64);
                Self::write(cpu, elems + len as u64 * 8, value);
                cpu.host_store_u64(hdr + object::LEN as u64, len as u64 + 1);
                extra = extra.plus(self.absorb(cpu, hdr)?);
                return Ok(extra);
            }
        }
        let hash_id = cpu.mem().read_u64(hdr + object::HASH_ID as u64) as usize;
        let part = self
            .hash_parts
            .get_mut(hash_id)
            .ok_or_else(|| HostError::new(0, "corrupt object header"))?;
        if value == layout::UNDEFINED {
            part.remove(&key);
        } else {
            part.insert(key, value);
        }
        Ok(extra)
    }

    fn grow(&mut self, cpu: &mut Cpu, hdr: u64) -> Result<Cost, HostError> {
        let cap = cpu.mem().read_u64(hdr + object::CAP as u64);
        let len = cpu.mem().read_u64(hdr + object::LEN as u64);
        let new_cap = (cap * 2).max(4);
        let new_elems = self.alloc(new_cap * 8)?;
        let old = cpu.mem().read_u64(hdr + object::ELEMS_PTR as u64);
        for i in 0..len {
            let v = Self::read(cpu, old + i * 8);
            Self::write(cpu, new_elems + i * 8, v);
        }
        cpu.host_store_u64(hdr + object::ELEMS_PTR as u64, new_elems);
        cpu.host_store_u64(hdr + object::CAP as u64, new_cap);
        Ok(Cost::affine(50, 3, len))
    }

    fn absorb(&mut self, cpu: &mut Cpu, hdr: u64) -> Result<Cost, HostError> {
        let hash_id = cpu.mem().read_u64(hdr + object::HASH_ID as u64) as usize;
        let mut moved = 0;
        loop {
            let len = cpu.mem().read_u64(hdr + object::LEN as u64);
            let Some(part) = self.hash_parts.get_mut(hash_id) else { break };
            let Some(v) = part.remove(&HKey::Int(len as i64 + 1)) else { break };
            let cap = cpu.mem().read_u64(hdr + object::CAP as u64);
            if len == cap {
                self.grow(cpu, hdr)?;
            }
            let elems = cpu.mem().read_u64(hdr + object::ELEMS_PTR as u64);
            Self::write(cpu, elems + len * 8, v);
            cpu.host_store_u64(hdr + object::LEN as u64, len + 1);
            moved += 1;
        }
        Ok(Cost::affine(0, 8, moved))
    }

    fn new_array(&mut self, cpu: &mut Cpu, capacity: u64) -> Result<u64, HostError> {
        let hdr = self.alloc(object::HEADER_SIZE + capacity * 8)?;
        let elems = hdr + object::HEADER_SIZE;
        cpu.host_store_u64(hdr + object::ELEMS_PTR as u64, elems);
        cpu.host_store_u64(hdr + object::CAP as u64, capacity);
        cpu.host_store_u64(hdr + object::LEN as u64, 0);
        cpu.host_store_u64(hdr + object::HASH_ID as u64, self.hash_parts.len() as u64);
        self.hash_parts.push(HashMap::new());
        Ok(hdr)
    }

    // --- services -------------------------------------------------------

    fn arith_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let op_code = cpu.regs().read(Reg::A0).v;
        let dst = cpu.regs().read(Reg::A1).v;
        let lhs = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        let rhs = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A3).v));
        let op = Op::from_code(op_code as u8)
            .ok_or_else(|| HostError::new(helpers::ARITH_SLOW, "bad op code"))?;

        if op == Op::Concat {
            let part = |host: &JsHost, v: Hv| -> Result<String, HostError> {
                match v {
                    Hv::Str(_) | Hv::Int(_) | Hv::Double(_) => host.format(v),
                    other => Err(HostError::new(
                        helpers::ARITH_SLOW,
                        format!("attempt to concatenate a {} value", Self::type_name(other)),
                    )),
                }
            };
            let s = format!("{}{}", part(self, lhs)?, part(self, rhs)?);
            let bytes = s.len() as u64;
            let id = self.intern(&s);
            Self::write(cpu, dst, Self::encode(Hv::Str(id)));
            return Ok(Cost::affine(60, 2, bytes));
        }

        // Integer pairs with exact semantics (floor div/mod; // and % by
        // zero are errors, matching the reference).
        if let (Hv::Int(x), Hv::Int(y)) = (lhs, rhs) {
            let r = match op {
                Op::Add => Some(x.wrapping_add(y)),
                Op::Sub => Some(x.wrapping_sub(y)),
                Op::Mul => Some(x.wrapping_mul(y)),
                Op::IDiv if y != 0 => Some(int_floor_div(x, y)),
                Op::Mod if y != 0 => Some(int_floor_mod(x, y)),
                Op::IDiv | Op::Mod => {
                    return Err(HostError::new(helpers::ARITH_SLOW, "integer division by zero"))
                }
                _ => None,
            };
            if let Some(r) = r {
                Self::write(cpu, dst, Self::encode_int(r));
                return Ok(Cost::fixed(40));
            }
        }
        // `//` and `%` on integral doubles keep the zero-divisor error so
        // outputs match the i64-based reference.
        if matches!(op, Op::IDiv | Op::Mod) {
            let (x, _) = self.to_number(lhs)?;
            let (y, _) = self.to_number(rhs)?;
            if y == 0.0 && x == x.trunc() && y == y.trunc() {
                return Err(HostError::new(helpers::ARITH_SLOW, "integer division by zero"));
            }
        }

        let (x, cx) = self.to_number(lhs)?;
        let (y, cy) = self.to_number(rhs)?;
        let r = match op {
            Op::Add => x + y,
            Op::Sub => x - y,
            Op::Mul => x * y,
            Op::Div => x / y,
            Op::IDiv => (x / y).floor(),
            Op::Mod => float_floor_mod(x, y),
            _ => return Err(HostError::new(helpers::ARITH_SLOW, "bad arith op")),
        };
        Self::write(cpu, dst, Self::encode_number(r));
        Ok(Cost::fixed(40 + 25 * (cx as u64 + cy as u64)))
    }

    fn compare_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let op_code = cpu.regs().read(Reg::A0).v;
        let lhs = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A1).v));
        let rhs = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        let op = Op::from_code(op_code as u8)
            .ok_or_else(|| HostError::new(helpers::COMPARE_SLOW, "bad op code"))?;
        let mut cost = Cost::fixed(30);
        let result = match op {
            Op::Eq | Op::Ne => {
                let eq = match (lhs, rhs) {
                    (Hv::Int(x), Hv::Double(y)) => x as f64 == y,
                    (Hv::Double(x), Hv::Int(y)) => x == y as f64,
                    (Hv::Double(x), Hv::Double(y)) => x == y,
                    (x, y) => x == y,
                };
                (op == Op::Eq) == eq
            }
            Op::Lt | Op::Le => {
                let ord = match (lhs, rhs) {
                    (Hv::Str(x), Hv::Str(y)) => {
                        let (sx, sy) = (self.string(x)?, self.string(y)?);
                        cost = cost.plus(Cost::affine(0, 2, sx.len().min(sy.len()) as u64));
                        sx.cmp(sy)
                    }
                    _ => {
                        let (x, _) = self.to_number(lhs)?;
                        let (y, _) = self.to_number(rhs)?;
                        x.partial_cmp(&y)
                            .ok_or_else(|| HostError::new(helpers::COMPARE_SLOW, "NaN compare"))?
                    }
                };
                if op == Op::Lt {
                    ord.is_lt()
                } else {
                    ord.is_le()
                }
            }
            _ => return Err(HostError::new(helpers::COMPARE_SLOW, "bad compare op")),
        };
        cpu.regs_mut().write_untyped(Reg::A0, result as u64);
        Ok(cost)
    }

    fn getelem_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let dst = cpu.regs().read(Reg::A1).v;
        let obj = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        let key = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A3).v));
        let Hv::Object(hdr) = obj else {
            return Err(HostError::new(
                helpers::GETELEM_SLOW,
                format!("attempt to index a {} value", Self::type_name(obj)),
            ));
        };
        let key = self.elem_key(key)?;
        let cost = match &key {
            HKey::Str(id) => Cost::affine(50, 6, self.string(*id)?.len() as u64),
            HKey::Int(_) => Cost::fixed(60),
        };
        let v = self.elem_get(cpu, hdr, key)?;
        Self::write(cpu, dst, v);
        Ok(cost)
    }

    fn setelem_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let obj = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A1).v));
        let key = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        let value = Self::read(cpu, cpu.regs().read(Reg::A3).v);
        let Hv::Object(hdr) = obj else {
            return Err(HostError::new(
                helpers::SETELEM_SLOW,
                format!("attempt to index a {} value", Self::type_name(obj)),
            ));
        };
        let key = self.elem_key(key)?;
        let cost = match &key {
            HKey::Str(id) => Cost::affine(70, 6, self.string(*id)?.len() as u64),
            HKey::Int(_) => Cost::fixed(80),
        };
        let extra = self.elem_set(cpu, hdr, key, value)?;
        Ok(cost.plus(extra))
    }

    fn builtin(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let base = cpu.regs().read(Reg::A1).v;
        let id = cpu.regs().read(Reg::A2).v;
        let nargs = cpu.regs().read(Reg::A3).v;
        let builtin = Builtin::from_code(id as u16)
            .ok_or_else(|| HostError::new(helpers::BUILTIN, format!("bad builtin id {id}")))?;
        let err = |m: String| HostError::new(helpers::BUILTIN, m);
        let args: Vec<Hv> =
            (0..nargs).map(|i| Self::decode(Self::read(cpu, base + i * 8))).collect();
        let arg = |i: usize| args.get(i).copied().unwrap_or(Hv::Undef);
        let as_int = |hv: Hv| -> Result<i64, HostError> {
            match hv {
                Hv::Int(i) => Ok(i),
                Hv::Double(f) if f == f.trunc() => Ok(f as i64),
                other => Err(err(format!("expected an integer, got {}", Self::type_name(other)))),
            }
        };

        let mut cost;
        let result = match builtin {
            Builtin::Print | Builtin::Write => {
                let mut line = String::new();
                for (i, a) in args.iter().enumerate() {
                    if builtin == Builtin::Print && i > 0 {
                        line.push('\t');
                    }
                    line.push_str(&self.format(*a)?);
                }
                if builtin == Builtin::Print {
                    line.push('\n');
                }
                cost = Cost::affine(60, 3, line.len() as u64)
                    .plus(Cost::affine(0, 25, args.len() as u64));
                self.output.push_str(&line);
                Hv::Undef
            }
            Builtin::Clock => {
                cost = Cost::fixed(20);
                Hv::Double(0.0)
            }
            Builtin::Floor => {
                cost = Cost::fixed(15);
                match arg(0) {
                    Hv::Int(i) => Hv::Int(i),
                    Hv::Double(f) => Hv::Int(f.floor() as i64),
                    other => return Err(err(format!("floor on {}", Self::type_name(other)))),
                }
            }
            Builtin::Sqrt => {
                cost = Cost::fixed(25);
                Hv::Double(self.to_number(arg(0))?.0.sqrt())
            }
            Builtin::Abs => {
                cost = Cost::fixed(15);
                match arg(0) {
                    Hv::Int(i) => Hv::Int(i.wrapping_abs()),
                    Hv::Double(f) => Hv::Double(f.abs()),
                    other => return Err(err(format!("abs on {}", Self::type_name(other)))),
                }
            }
            Builtin::Min | Builtin::Max => {
                cost = Cost::fixed(15);
                let (a, b) = (arg(0), arg(1));
                let (fa, _) = self.to_number(a)?;
                let (fb, _) = self.to_number(b)?;
                let take_a = if builtin == Builtin::Min { fa <= fb } else { fa >= fb };
                if take_a {
                    a
                } else {
                    b
                }
            }
            Builtin::Sub => {
                let Hv::Str(id) = arg(0) else { return Err(err("sub on a non-string".into())) };
                let s = self.string(id)?.to_string();
                let i = as_int(arg(1))?;
                let j = match arg(2) {
                    Hv::Undef => -1,
                    v => as_int(v)?,
                };
                let out = string_sub(&s, i, j);
                cost = Cost::affine(40, 2, out.len() as u64);
                Hv::Str(self.intern(&out))
            }
            Builtin::Len => {
                cost = Cost::fixed(15);
                match arg(0) {
                    Hv::Str(id) => Hv::Int(self.string(id)?.len() as i64),
                    Hv::Object(hdr) => {
                        Hv::Int(cpu.mem().read_u64(hdr + object::LEN as u64) as i64)
                    }
                    other => return Err(err(format!("len on {}", Self::type_name(other)))),
                }
            }
            Builtin::Char => {
                cost = Cost::fixed(20);
                let v = as_int(arg(0))?;
                let b = u8::try_from(v).map_err(|_| err(format!("char: {v} out of range")))?;
                Hv::Str(self.intern(&(b as char).to_string()))
            }
            Builtin::Byte => {
                cost = Cost::fixed(20);
                let Hv::Str(id) = arg(0) else { return Err(err("byte on a non-string".into())) };
                let i = match arg(1) {
                    Hv::Undef => 1,
                    v => as_int(v)?,
                };
                let s = self.string(id)?;
                match s.as_bytes().get((i - 1).max(0) as usize) {
                    Some(b) if i >= 1 => Hv::Int(*b as i64),
                    _ => Hv::Undef,
                }
            }
            Builtin::Insert => {
                cost = Cost::fixed(30);
                let Hv::Object(hdr) = arg(0) else {
                    return Err(err("insert on a non-table".into()));
                };
                let len = cpu.mem().read_u64(hdr + object::LEN as u64) as i64;
                let value = Self::read(cpu, base + 8);
                let extra = self.elem_set(cpu, hdr, HKey::Int(len + 1), value)?;
                cost = cost.plus(extra);
                Hv::Undef
            }
            Builtin::Tostring => {
                let s = self.format(arg(0))?;
                cost = Cost::affine(60, 2, s.len() as u64);
                Hv::Str(self.intern(&s))
            }
        };
        Self::write(cpu, base, Self::encode(result));
        Ok(cost)
    }

    fn len_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let dst = cpu.regs().read(Reg::A1).v;
        let v = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        match v {
            Hv::Str(id) => {
                let len = self.string(id)?.len() as i64;
                Self::write(cpu, dst, Self::encode(Hv::Int(len)));
                Ok(Cost::fixed(15))
            }
            other => Err(HostError::new(
                helpers::LEN_SLOW,
                format!("attempt to get length of a {} value", Self::type_name(other)),
            )),
        }
    }

    fn neg_slow(&mut self, cpu: &mut Cpu) -> Result<Cost, HostError> {
        let dst = cpu.regs().read(Reg::A1).v;
        let v = Self::decode(Self::read(cpu, cpu.regs().read(Reg::A2).v));
        let (n, coerced) = self.to_number(v)?;
        Self::write(cpu, dst, Self::encode_number(-n));
        Ok(Cost::fixed(if coerced { 65 } else { 40 }))
    }
}

impl NativeHost for JsHost {
    fn ecall(&mut self, cpu: &mut Cpu) -> Result<(), HostError> {
        let id = cpu.regs().read(Reg::A7).v;
        let cost = match id {
            helpers::ARITH_SLOW => self.arith_slow(cpu)?,
            helpers::COMPARE_SLOW => self.compare_slow(cpu)?,
            helpers::GETELEM_SLOW => self.getelem_slow(cpu)?,
            helpers::SETELEM_SLOW => self.setelem_slow(cpu)?,
            helpers::NEWARR => {
                let dst = cpu.regs().read(Reg::A1).v;
                let hint = cpu.regs().read(Reg::A2).v;
                let hdr = self.new_array(cpu, hint)?;
                Self::write(cpu, dst, Self::encode(Hv::Object(hdr)));
                Cost::affine(60, 1, hint)
            }
            helpers::GETGLOBAL => {
                let dst = cpu.regs().read(Reg::A1).v;
                let name = Self::read(cpu, cpu.regs().read(Reg::A2).v);
                let key = layout::payload_of(name) as u32;
                let v = self.globals.get(&key).copied().unwrap_or(layout::UNDEFINED);
                Self::write(cpu, dst, v);
                Cost::fixed(35)
            }
            helpers::SETGLOBAL => {
                let value = Self::read(cpu, cpu.regs().read(Reg::A1).v);
                let name = Self::read(cpu, cpu.regs().read(Reg::A2).v);
                let key = layout::payload_of(name) as u32;
                self.globals.insert(key, value);
                Cost::fixed(35)
            }
            helpers::BUILTIN => self.builtin(cpu)?,
            helpers::LEN_SLOW => self.len_slow(cpu)?,
            helpers::NEG_SLOW => self.neg_slow(cpu)?,
            helpers::ERROR => {
                let code = cpu.regs().read(Reg::A0).v;
                let msg = match code {
                    helpers::errcode::STACK_OVERFLOW => "stack overflow",
                    helpers::errcode::DIV_BY_ZERO => "integer division by zero",
                    _ => "runtime error",
                };
                return Err(HostError::new(helpers::ERROR, msg));
            }
            other => return Err(HostError::new(other, "unknown helper id")),
        };
        cost.charge(cpu);
        Ok(())
    }
}
