//! Native-helper ids for the `jsrt` engine (id in `a7`, args `a0`–`a3`,
//! result — when any — in `a0`; addresses point at 8-byte NaN-boxed slots
//! on the operand stack).

/// Slow arithmetic (`a0`=op, `a1`=dst, `a2`=lhs addr, `a3`=rhs addr).
pub const ARITH_SLOW: u64 = 1;
/// Slow comparison (`a0`=op, `a1`=lhs addr, `a2`=rhs addr) → bool in `a0`.
pub const COMPARE_SLOW: u64 = 2;
/// Element read slow path (`a1`=dst, `a2`=obj addr, `a3`=key addr).
pub const GETELEM_SLOW: u64 = 3;
/// Element write slow path (`a1`=obj addr, `a2`=key addr, `a3`=value addr).
pub const SETELEM_SLOW: u64 = 4;
/// Array allocation (`a1`=dst, `a2`=capacity hint).
pub const NEWARR: u64 = 5;
/// Global read (`a1`=dst, `a2`=name-constant addr).
pub const GETGLOBAL: u64 = 6;
/// Global write (`a1`=value addr, `a2`=name-constant addr).
pub const SETGLOBAL: u64 = 7;
/// Builtin call (`a1`=args base addr, `a2`=builtin id, `a3`=nargs); result
/// written to the args base.
pub const BUILTIN: u64 = 8;
/// `#` slow path (`a1`=dst, `a2`=operand addr).
pub const LEN_SLOW: u64 = 9;
/// Unary negation slow path (`a1`=dst, `a2`=operand addr).
pub const NEG_SLOW: u64 = 10;
/// Fatal error (`a0`=code).
pub const ERROR: u64 = 11;

/// Error codes for [`ERROR`].
pub mod errcode {
    /// Stack overflow.
    pub const STACK_OVERFLOW: u64 = 1;
    /// Integer division/modulo by zero.
    pub const DIV_BY_ZERO: u64 = 2;
}
