//! TRV64 code generator for the `jsrt` stack-machine interpreter.
//!
//! Same architecture as `luart`'s generator — threaded dispatch plus one
//! handler per opcode, three variants of the five hot bytecodes (ADD, SUB,
//! MUL, GETELEM, SETELEM; paper Table 3) — but over 8-byte NaN-boxed
//! values on an operand stack:
//!
//! * **Baseline** unboxing guards compare the 17-bit box prefix + tag with
//!   shift/compare sequences, sign-extend payloads, and re-box results,
//!   with an explicit int32 overflow check (Section 4.2);
//! * **CheckedLoad** keys `chklb` on byte 6 of the value (`0xf8|tag>>1`)
//!   but still needs a box-prefix backstop per operand, because a single
//!   byte cannot discriminate a NaN-boxed layout — the "specific tag-value
//!   layout" limitation the paper attributes to Checked Load. It is
//!   therefore at best break-even here (see EXPERIMENTS.md);
//! * **Typed** uses the NaN-detecting `tld`/`tsd` datapath: extraction,
//!   type check, ALU binding, overflow detection and re-boxing all happen
//!   in hardware.

use crate::bytecode::{Const, Module, Op};
use crate::helpers_mod as helpers;
use crate::layout::{self, callinfo, funcinfo, map, object, tag};
use std::collections::HashMap;
use tarch_core::IsaLevel;
use tarch_isa::asm::{AsmError, Label, Program, ProgramBuilder};
use tarch_isa::{FReg, FpCmpOp, FpuOp, Instruction, Reg};

/// VM pc.
const PC: Reg = Reg::S0;
/// Locals base.
const LOCALS: Reg = Reg::S1;
/// Constants base.
const KB: Reg = Reg::S2;
/// Dispatch table.
const DT: Reg = Reg::S3;
/// CallInfo stack pointer.
const CI: Reg = Reg::S4;
/// Function table.
const FT: Reg = Reg::S5;
/// Operand stack pointer (points one past TOS; grows upward).
const SP: Reg = Reg::S6;
/// Value stack limit.
const STK_LIM: Reg = Reg::S7;
/// CallInfo stack limit.
const CI_LIM: Reg = Reg::S11;
/// Current bytecode word.
const W: Reg = Reg::T0;

/// High 17 bits of a boxed value with a given tag: `(0x1fff << 4) | tag`.
fn box_prefix17(t: u8) -> i64 {
    ((0x1fffu64 << 4) | t as u64) as i64
}

/// A built jsrt image.
#[derive(Debug, Clone)]
pub struct JsImage {
    /// Assembled program.
    pub program: Program,
    /// Handler entry pcs.
    pub handler_entries: Vec<(Op, u64)>,
    /// Dispatch loop pc.
    pub dispatch_pc: u64,
    /// Interned strings.
    pub strings: Vec<String>,
    /// ISA level.
    pub level: IsaLevel,
}

/// Generates the interpreter image.
///
/// # Errors
///
/// Returns [`AsmError`] on assembly failure (codegen bug).
pub fn build_image(module: &Module, level: IsaLevel) -> Result<JsImage, AsmError> {
    let mut g = Gen::new(module, level);
    g.emit_entry();
    g.emit_dispatch();
    g.emit_handlers();
    g.emit_data();
    g.finish()
}

struct Gen<'a> {
    b: ProgramBuilder,
    module: &'a Module,
    level: IsaLevel,
    dispatch: Label,
    handler_labels: Vec<(Op, Label)>,
    stack_ov: Label,
    div_zero: Label,
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    func_code: Vec<Label>,
    func_consts: Vec<Label>,
    dispatch_table: Label,
    functable: Label,
    halt_bc: Label,
}

impl<'a> Gen<'a> {
    fn new(module: &'a Module, level: IsaLevel) -> Gen<'a> {
        let mut b = ProgramBuilder::new(map::TEXT_BASE, map::DATA_BASE);
        let dispatch = b.new_label("dispatch");
        let stack_ov = b.new_label("stack_overflow");
        let div_zero = b.new_label("div_zero");
        let handler_labels =
            Op::ALL.iter().map(|op| (*op, b.new_label(&format!("op_{}", op.name())))).collect();
        let func_code =
            (0..module.protos.len()).map(|i| b.new_label(&format!("code_{i}"))).collect();
        let func_consts =
            (0..module.protos.len()).map(|i| b.new_label(&format!("consts_{i}"))).collect();
        let dispatch_table = b.new_label("dispatch_table");
        let functable = b.new_label("functable");
        let halt_bc = b.new_label("halt_bc");
        Gen {
            b,
            module,
            level,
            dispatch,
            handler_labels,
            stack_ov,
            div_zero,
            strings: Vec::new(),
            string_ids: HashMap::new(),
            func_code,
            func_consts,
            dispatch_table,
            functable,
            halt_bc,
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(id) = self.string_ids.get(s) {
            return *id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    fn handler(&self, op: Op) -> Label {
        self.handler_labels.iter().find(|(o, _)| *o == op).expect("all ops labelled").1
    }

    fn next(&mut self) {
        let d = self.dispatch;
        self.b.j(d);
    }

    fn ecall(&mut self, id: u64) {
        self.b.li(Reg::A7, id as i64);
        self.b.ecall();
    }

    /// `dst = sign-extended 24-bit operand`.
    fn decode_imm(&mut self, dst: Reg) {
        self.b.slli(dst, W, 40);
        self.b.srai(dst, dst, 40);
    }

    /// `dst = zero-extended 24-bit operand`.
    fn decode_uimm(&mut self, dst: Reg) {
        self.b.slli(dst, W, 40);
        self.b.srli(dst, dst, 40);
    }

    /// `dst = sign-extended operand * 4` (jump offset in bytes).
    fn decode_offset(&mut self, dst: Reg) {
        self.b.slli(dst, W, 40);
        self.b.srai(dst, dst, 38);
    }

    /// Push the value in `src` (clobbers nothing else).
    fn push(&mut self, src: Reg) {
        self.b.sd(src, 0, SP);
        self.b.addi(SP, SP, 8);
    }

    /// Pop into `dst`.
    fn pop(&mut self, dst: Reg) {
        self.b.addi(SP, SP, -8);
        self.b.ld(dst, 0, SP);
    }

    /// Sign-extend a boxed payload in place (47-bit).
    fn unbox_signed(&mut self, r: Reg) {
        self.b.slli(r, r, 17);
        self.b.srai(r, r, 17);
    }

    /// Zero the top 17 bits (payload for re-boxing / address payloads).
    fn unbox_unsigned(&mut self, r: Reg) {
        self.b.slli(r, r, 17);
        self.b.srli(r, r, 17);
    }

    /// Re-box `val` (47-bit payload already masked or maskable) with the
    /// prefix17 held in `prefix17_reg`, into `val`.
    fn rebox(&mut self, val: Reg, prefix17_reg: Reg, tmp: Reg) {
        self.unbox_unsigned(val);
        self.b.slli(tmp, prefix17_reg, 47);
        self.b.or(val, val, tmp);
    }

    /// Branch to `slow` unless `val`'s 17-bit prefix equals `prefix17`
    /// (checks boxed-ness and tag at once). Clobbers `t1`, `t2`.
    fn guard_prefix(&mut self, val: Reg, prefix17: i64, t1: Reg, t2: Reg, slow: Label) {
        self.b.srli(t1, val, 47);
        self.b.li(t2, prefix17);
        self.b.bne(t1, t2, slow);
    }

    fn emit_entry(&mut self) {
        self.b.set_entry_here();
        if self.level == IsaLevel::CheckedLoad {
            // Pin R_exptype to the Int check byte; element handlers that
            // check Object restore it afterwards.
            self.b.li(Reg::T1, layout::chk_byte(tag::INT) as i64);
            self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::ExpType, rs1: Reg::T1 });
        }
        if self.level == IsaLevel::Typed {
            let spr = layout::spr_settings();
            self.b.li(Reg::T1, spr.offset as i64);
            self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::Offset, rs1: Reg::T1 });
            self.b.li(Reg::T1, spr.mask as i64);
            self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::Mask, rs1: Reg::T1 });
            self.b.li(Reg::T1, spr.shift as i64);
            self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::Shift, rs1: Reg::T1 });
            for rule in layout::trt_rules() {
                self.b.li(Reg::T1, rule.pack() as i64);
                self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::TrtPush, rs1: Reg::T1 });
            }
        }
        let (dt, ft, hb) = (self.dispatch_table, self.functable, self.halt_bc);
        self.b.la(DT, dt);
        self.b.la(FT, ft);
        self.b.li(CI, map::CI_BASE as i64);
        self.b.li(CI_LIM, map::CI_LIMIT as i64);
        self.b.li(STK_LIM, map::STACK_LIMIT as i64);
        self.b.li(LOCALS, map::STACK_BASE as i64);
        let main = &self.module.protos[self.module.main];
        self.b.li(SP, (map::STACK_BASE + main.nlocals as u64 * 8) as i64);
        let (mc, mk) = (self.func_code[self.module.main], self.func_consts[self.module.main]);
        self.b.la(KB, mk);
        self.b.la(PC, mc);
        self.b.la(Reg::T1, hb);
        self.b.sd(Reg::T1, callinfo::RET_PC, CI);
        self.b.sd(LOCALS, callinfo::RET_LOCALS, CI);
        self.b.sd(KB, callinfo::RET_CONSTS, CI);
        self.b.addi(CI, CI, callinfo::STRIDE as i32);
        self.next();

        let so = self.stack_ov;
        self.b.bind(so);
        self.b.li(Reg::A0, helpers::errcode::STACK_OVERFLOW as i64);
        self.ecall(helpers::ERROR);
        self.b.halt();
        let dz = self.div_zero;
        self.b.bind(dz);
        self.b.li(Reg::A0, helpers::errcode::DIV_BY_ZERO as i64);
        self.ecall(helpers::ERROR);
        self.b.halt();
    }

    fn emit_dispatch(&mut self) {
        let d = self.dispatch;
        self.b.bind(d);
        self.b.lwu(W, 0, PC);
        self.b.addi(PC, PC, 4);
        self.b.srli(Reg::T1, W, 24);
        self.b.slli(Reg::T1, Reg::T1, 3);
        self.b.add(Reg::T1, Reg::T1, DT);
        self.b.ld(Reg::T1, 0, Reg::T1);
        self.b.jr(Reg::T1);
    }

    fn emit_handlers(&mut self) {
        for op in Op::ALL {
            let label = self.handler(op);
            self.b.bind(label);
            match op {
                Op::PushK => self.h_pushk(),
                Op::PushI => self.h_pushi(),
                Op::PushUndef => self.h_pushundef(),
                Op::PushBool => self.h_pushbool(),
                Op::GetLocal => self.h_getlocal(),
                Op::SetLocal => self.h_setlocal(),
                Op::Pop => {
                    self.b.addi(SP, SP, -8);
                    self.next();
                }
                Op::Add | Op::Sub | Op::Mul => self.h_arith_hot(op),
                Op::Div => self.h_div(),
                Op::IDiv | Op::Mod => self.h_intdiv(op),
                Op::Concat => self.h_concat(),
                Op::Eq | Op::Ne => self.h_cmp_eq(op),
                Op::Lt | Op::Le => self.h_cmp_ord(op),
                Op::Not => self.h_not(),
                Op::Neg => self.h_neg(),
                Op::Len => self.h_len(),
                Op::Jump => self.h_jump(),
                Op::JIf | Op::JNot => self.h_jcond(op),
                Op::GetElem => self.h_getelem(),
                Op::SetElem => self.h_setelem(),
                Op::GetGlobal => self.h_getglobal(),
                Op::SetGlobal => self.h_setglobal(),
                Op::NewArr => self.h_newarr(),
                Op::Call => self.h_call(),
                Op::CallB => self.h_callb(),
                Op::Ret | Op::RetV => self.h_ret(op),
                Op::Halt => self.b.halt(),
            }
        }
    }

    // --- stack & constants ---------------------------------------------

    fn h_pushk(&mut self) {
        self.decode_uimm(Reg::T1);
        self.b.slli(Reg::T1, Reg::T1, 3);
        self.b.add(Reg::T1, Reg::T1, KB);
        self.b.ld(Reg::T2, 0, Reg::T1);
        self.push(Reg::T2);
        self.next();
    }

    fn h_pushi(&mut self) {
        self.decode_imm(Reg::T1);
        self.unbox_unsigned(Reg::T1);
        self.b.li(Reg::T2, box_prefix17(tag::INT));
        self.b.slli(Reg::T2, Reg::T2, 47);
        self.b.or(Reg::T1, Reg::T1, Reg::T2);
        self.push(Reg::T1);
        self.next();
    }

    fn h_pushundef(&mut self) {
        self.b.li(Reg::T1, box_prefix17(tag::UNDEF));
        self.b.slli(Reg::T1, Reg::T1, 47);
        self.push(Reg::T1);
        self.next();
    }

    fn h_pushbool(&mut self) {
        self.decode_uimm(Reg::T1);
        self.b.li(Reg::T2, box_prefix17(tag::BOOL));
        self.b.slli(Reg::T2, Reg::T2, 47);
        self.b.or(Reg::T1, Reg::T1, Reg::T2);
        self.push(Reg::T1);
        self.next();
    }

    fn h_getlocal(&mut self) {
        self.decode_uimm(Reg::T1);
        self.b.slli(Reg::T1, Reg::T1, 3);
        self.b.add(Reg::T1, Reg::T1, LOCALS);
        self.b.ld(Reg::T2, 0, Reg::T1);
        self.push(Reg::T2);
        self.next();
    }

    fn h_setlocal(&mut self) {
        self.decode_uimm(Reg::T1);
        self.b.slli(Reg::T1, Reg::T1, 3);
        self.b.add(Reg::T1, Reg::T1, LOCALS);
        self.pop(Reg::T2);
        self.b.sd(Reg::T2, 0, Reg::T1);
        self.next();
    }

    // --- arithmetic -------------------------------------------------------

    fn h_arith_hot(&mut self, op: Op) {
        let guard_chain = self.b.new_label("js_arith_chain");
        match self.level {
            IsaLevel::Baseline => {}
            IsaLevel::CheckedLoad => {
                // chklb on byte 6 (0xf8 | tag>>1) + box-prefix backstop: a
                // single byte cannot prove boxed-ness under NaN boxing.
                self.b.thdl(guard_chain);
                self.b.chklb(Reg::T1, -10, SP); // byte 6 of St[-2]
                self.b.chklb(Reg::T1, -2, SP); // byte 6 of St[-1]
                self.b.ld(Reg::T1, -16, SP);
                self.b.ld(Reg::T2, -8, SP);
                self.b.li(Reg::T3, 0x1fff);
                self.b.srli(Reg::T4, Reg::T1, 51);
                self.b.bne(Reg::T4, Reg::T3, guard_chain);
                self.b.srli(Reg::T4, Reg::T2, 51);
                self.b.bne(Reg::T4, Reg::T3, guard_chain);
                self.unbox_signed(Reg::T1);
                self.unbox_signed(Reg::T2);
                self.emit_int_op(op, Reg::T1, Reg::T1, Reg::T2);
                self.b.emit(Instruction::Alu {
                    op: tarch_isa::AluOp::Addw,
                    rd: Reg::T2,
                    rs1: Reg::T1,
                    rs2: Reg::ZERO,
                });
                self.b.bne(Reg::T2, Reg::T1, guard_chain); // int32 overflow
                self.b.li(Reg::T2, box_prefix17(tag::INT));
                self.rebox(Reg::T1, Reg::T2, Reg::T3);
                self.b.sd(Reg::T1, -16, SP);
                self.b.addi(SP, SP, -8);
                self.next();
            }
            IsaLevel::Typed => {
                // Figure 3, NaN-boxing edition: extraction, TRT check, ALU
                // binding, overflow detection and re-boxing in hardware.
                self.b.tld(Reg::A2, -16, SP);
                self.b.tld(Reg::A3, -8, SP);
                self.b.thdl(guard_chain);
                match op {
                    Op::Add => self.b.xadd(Reg::A2, Reg::A2, Reg::A3),
                    Op::Sub => self.b.xsub(Reg::A2, Reg::A2, Reg::A3),
                    _ => self.b.xmul(Reg::A2, Reg::A2, Reg::A3),
                }
                self.b.tsd(Reg::A2, -16, SP);
                self.b.addi(SP, SP, -8);
                self.next();
            }
        }
        self.b.bind(guard_chain);
        self.emit_arith_guard_chain(op);
    }

    /// Software unboxing chain: Int×Int (with overflow→double), any
    /// numeric mix via the FP pipe, strings via the helper.
    fn emit_arith_guard_chain(&mut self, op: Op) {
        let not_int = self.b.new_label("jsa_not_int");
        let as_double = self.b.new_label("jsa_as_double");
        let slow = self.b.new_label("jsa_slow");
        let store_f = self.b.new_label("jsa_store_f");

        self.b.ld(Reg::T1, -16, SP);
        self.b.ld(Reg::T2, -8, SP);
        self.guard_prefix(Reg::T1, box_prefix17(tag::INT), Reg::T3, Reg::T4, not_int);
        self.b.srli(Reg::T3, Reg::T2, 47);
        self.b.bne(Reg::T3, Reg::T4, not_int);
        // Int × Int.
        self.unbox_signed(Reg::T1);
        self.unbox_signed(Reg::T2);
        self.emit_int_op(op, Reg::T5, Reg::T1, Reg::T2);
        self.b.emit(Instruction::Alu {
            op: tarch_isa::AluOp::Addw,
            rd: Reg::T6,
            rs1: Reg::T5,
            rs2: Reg::ZERO,
        });
        self.b.bne(Reg::T6, Reg::T5, as_double); // overflow → double result
        self.b.li(Reg::T2, box_prefix17(tag::INT));
        self.rebox(Reg::T5, Reg::T2, Reg::T3);
        self.b.sd(Reg::T5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();

        // Overflowed Int×Int: redo in FP.
        self.b.bind(as_double);
        self.b.emit(Instruction::FcvtDL { rd: FReg::F2, rs1: Reg::T1 });
        self.b.emit(Instruction::FcvtDL { rd: FReg::F5, rs1: Reg::T2 });
        self.b.j(store_f);

        // Mixed / double operands.
        self.b.bind(not_int);
        self.emit_load_double(Reg::T1, FReg::F2, slow);
        self.emit_load_double(Reg::T2, FReg::F5, slow);

        self.b.bind(store_f);
        let fop = match op {
            Op::Add => FpuOp::Fadd,
            Op::Sub => FpuOp::Fsub,
            _ => FpuOp::Fmul,
        };
        self.b.emit(Instruction::Fpu { op: fop, rd: FReg::F5, rs1: FReg::F2, rs2: FReg::F5 });
        self.b.fsd(FReg::F5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();

        self.b.bind(slow);
        self.call_arith_slow(op);
    }

    fn call_arith_slow(&mut self, op: Op) {
        self.b.li(Reg::A0, op as i64);
        self.b.addi(Reg::A1, SP, -16);
        self.b.addi(Reg::A2, SP, -16);
        self.b.addi(Reg::A3, SP, -8);
        self.ecall(helpers::ARITH_SLOW);
        self.b.addi(SP, SP, -8);
        self.next();
    }

    fn emit_int_op(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) {
        match op {
            Op::Add => self.b.add(rd, rs1, rs2),
            Op::Sub => self.b.sub(rd, rs1, rs2),
            _ => self.b.mul(rd, rs1, rs2),
        }
    }

    /// Loads the numeric value in `src` (raw dword) into an FP register:
    /// boxed Int → convert; unboxed → raw double; boxed non-Int → `slow`.
    fn emit_load_double(&mut self, src: Reg, dst: FReg, slow: Label) {
        let raw = self.b.new_label("jld_raw");
        let done = self.b.new_label("jld_done");
        self.b.srli(Reg::T3, src, 47);
        self.b.li(Reg::T4, box_prefix17(tag::INT));
        self.b.bne(Reg::T3, Reg::T4, raw);
        self.unbox_signed(src);
        self.b.emit(Instruction::FcvtDL { rd: dst, rs1: src });
        self.b.j(done);
        self.b.bind(raw);
        self.b.srli(Reg::T3, src, 51);
        self.b.li(Reg::T4, 0x1fff);
        self.b.beq(Reg::T3, Reg::T4, slow); // boxed non-int
        self.b.emit(Instruction::FmvDX { rd: dst, rs1: src });
        self.b.bind(done);
    }

    fn h_div(&mut self) {
        let slow = self.b.new_label("jsdiv_slow");
        self.b.ld(Reg::T1, -16, SP);
        self.b.ld(Reg::T2, -8, SP);
        self.emit_load_double(Reg::T1, FReg::F2, slow);
        self.emit_load_double(Reg::T2, FReg::F5, slow);
        self.b.emit(Instruction::Fpu {
            op: FpuOp::Fdiv,
            rd: FReg::F5,
            rs1: FReg::F2,
            rs2: FReg::F5,
        });
        self.b.fsd(FReg::F5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();
        self.b.bind(slow);
        self.call_arith_slow(Op::Div);
    }

    fn h_intdiv(&mut self, op: Op) {
        let slow = self.b.new_label("jsidiv_slow");
        let store = self.b.new_label("jsidiv_store");
        let dz = self.div_zero;
        self.b.ld(Reg::T1, -16, SP);
        self.b.ld(Reg::T2, -8, SP);
        self.guard_prefix(Reg::T1, box_prefix17(tag::INT), Reg::T3, Reg::T4, slow);
        self.b.srli(Reg::T3, Reg::T2, 47);
        self.b.bne(Reg::T3, Reg::T4, slow);
        self.unbox_signed(Reg::T1);
        self.unbox_signed(Reg::T2);
        self.b.beqz(Reg::T2, dz);
        if op == Op::IDiv {
            self.b.div(Reg::T5, Reg::T1, Reg::T2);
            self.b.rem(Reg::T6, Reg::T1, Reg::T2);
            self.b.beqz(Reg::T6, store);
            self.b.xor(Reg::T6, Reg::T1, Reg::T2);
            self.b.bge(Reg::T6, Reg::ZERO, store);
            self.b.addi(Reg::T5, Reg::T5, -1);
        } else {
            self.b.rem(Reg::T5, Reg::T1, Reg::T2);
            self.b.beqz(Reg::T5, store);
            self.b.xor(Reg::T6, Reg::T5, Reg::T2);
            self.b.bge(Reg::T6, Reg::ZERO, store);
            self.b.add(Reg::T5, Reg::T5, Reg::T2);
        }
        self.b.bind(store);
        // The quotient of two int32s always fits int32 except MIN//-1;
        // check and re-box (overflow falls back to the helper).
        self.b.emit(Instruction::Alu {
            op: tarch_isa::AluOp::Addw,
            rd: Reg::T6,
            rs1: Reg::T5,
            rs2: Reg::ZERO,
        });
        self.b.bne(Reg::T6, Reg::T5, slow);
        self.b.li(Reg::T2, box_prefix17(tag::INT));
        self.rebox(Reg::T5, Reg::T2, Reg::T3);
        self.b.sd(Reg::T5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();
        self.b.bind(slow);
        self.call_arith_slow(op);
    }

    fn h_concat(&mut self) {
        self.call_arith_slow(Op::Concat);
    }

    // --- comparisons ------------------------------------------------------

    fn h_cmp_eq(&mut self, op: Op) {
        let boxed_raw = self.b.new_label("jseq_raw");
        let doubles = self.b.new_label("jseq_dbl");
        let slow = self.b.new_label("jseq_slow");
        let store = self.b.new_label("jseq_store");
        self.b.ld(Reg::T1, -16, SP);
        self.b.ld(Reg::T2, -8, SP);
        self.b.srli(Reg::T3, Reg::T1, 47);
        self.b.srli(Reg::T4, Reg::T2, 47);
        self.b.bne(Reg::T3, Reg::T4, slow); // differing prefixes (incl. int/double mix)
        // Same prefix: boxed → raw compare; unboxed (both doubles) → FP.
        self.b.srli(Reg::T3, Reg::T1, 51);
        self.b.li(Reg::T4, 0x1fff);
        self.b.beq(Reg::T3, Reg::T4, boxed_raw);
        self.b.bind(doubles);
        self.b.emit(Instruction::FmvDX { rd: FReg::F2, rs1: Reg::T1 });
        self.b.emit(Instruction::FmvDX { rd: FReg::F5, rs1: Reg::T2 });
        self.b.emit(Instruction::FpCmp {
            op: FpCmpOp::Feq,
            rd: Reg::T5,
            rs1: FReg::F2,
            rs2: FReg::F5,
        });
        if op == Op::Ne {
            self.b.xori(Reg::T5, Reg::T5, 1);
        }
        self.b.j(store);
        self.b.bind(boxed_raw);
        self.b.xor(Reg::T5, Reg::T1, Reg::T2);
        if op == Op::Eq {
            self.b.seqz(Reg::T5, Reg::T5);
        } else {
            self.b.snez(Reg::T5, Reg::T5);
        }
        self.b.j(store);
        self.b.bind(slow);
        self.b.li(Reg::A0, op as i64);
        self.b.addi(Reg::A1, SP, -16);
        self.b.addi(Reg::A2, SP, -8);
        self.ecall(helpers::COMPARE_SLOW);
        self.b.mv(Reg::T5, Reg::A0);
        self.b.bind(store);
        // Box the boolean result.
        self.b.li(Reg::T2, box_prefix17(tag::BOOL));
        self.b.slli(Reg::T2, Reg::T2, 47);
        self.b.or(Reg::T5, Reg::T5, Reg::T2);
        self.b.sd(Reg::T5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();
    }

    fn h_cmp_ord(&mut self, op: Op) {
        let not_int = self.b.new_label("jsord_not_int");
        let slow = self.b.new_label("jsord_slow");
        let store = self.b.new_label("jsord_store");
        self.b.ld(Reg::T1, -16, SP);
        self.b.ld(Reg::T2, -8, SP);
        self.guard_prefix(Reg::T1, box_prefix17(tag::INT), Reg::T3, Reg::T4, not_int);
        self.b.srli(Reg::T3, Reg::T2, 47);
        self.b.bne(Reg::T3, Reg::T4, slow);
        self.unbox_signed(Reg::T1);
        self.unbox_signed(Reg::T2);
        if op == Op::Lt {
            self.b.slt(Reg::T5, Reg::T1, Reg::T2);
        } else {
            self.b.slt(Reg::T5, Reg::T2, Reg::T1);
            self.b.xori(Reg::T5, Reg::T5, 1);
        }
        self.b.j(store);
        self.b.bind(not_int);
        // Both raw doubles → FP compare; anything else → helper.
        self.b.srli(Reg::T3, Reg::T1, 51);
        self.b.li(Reg::T4, 0x1fff);
        self.b.beq(Reg::T3, Reg::T4, slow);
        self.b.srli(Reg::T3, Reg::T2, 51);
        self.b.beq(Reg::T3, Reg::T4, slow);
        self.b.emit(Instruction::FmvDX { rd: FReg::F2, rs1: Reg::T1 });
        self.b.emit(Instruction::FmvDX { rd: FReg::F5, rs1: Reg::T2 });
        let fop = if op == Op::Lt { FpCmpOp::Flt } else { FpCmpOp::Fle };
        self.b.emit(Instruction::FpCmp { op: fop, rd: Reg::T5, rs1: FReg::F2, rs2: FReg::F5 });
        self.b.j(store);
        self.b.bind(slow);
        self.b.li(Reg::A0, op as i64);
        self.b.addi(Reg::A1, SP, -16);
        self.b.addi(Reg::A2, SP, -8);
        self.ecall(helpers::COMPARE_SLOW);
        self.b.mv(Reg::T5, Reg::A0);
        self.b.bind(store);
        self.b.li(Reg::T2, box_prefix17(tag::BOOL));
        self.b.slli(Reg::T2, Reg::T2, 47);
        self.b.or(Reg::T5, Reg::T5, Reg::T2);
        self.b.sd(Reg::T5, -16, SP);
        self.b.addi(SP, SP, -8);
        self.next();
    }

    // --- unary --------------------------------------------------------------

    /// Truthiness of `val`: branches to `falsy` when undefined or false.
    /// Clobbers `t3`, `t4`.
    fn emit_truthiness(&mut self, val: Reg, falsy: Label, truthy: Label) {
        self.b.srli(Reg::T3, val, 47);
        self.b.li(Reg::T4, box_prefix17(tag::UNDEF));
        self.b.beq(Reg::T3, Reg::T4, falsy);
        self.b.li(Reg::T4, box_prefix17(tag::BOOL));
        self.b.bne(Reg::T3, Reg::T4, truthy);
        self.b.andi(Reg::T4, val, 1);
        self.b.beqz(Reg::T4, falsy);
        self.b.j(truthy);
    }

    fn h_not(&mut self) {
        let falsy = self.b.new_label("jsnot_falsy");
        let truthy = self.b.new_label("jsnot_truthy");
        let store = self.b.new_label("jsnot_store");
        self.b.ld(Reg::T1, -8, SP);
        self.emit_truthiness(Reg::T1, falsy, truthy);
        self.b.bind(truthy);
        self.b.li(Reg::T5, 0);
        self.b.j(store);
        self.b.bind(falsy);
        self.b.li(Reg::T5, 1);
        self.b.bind(store);
        self.b.li(Reg::T2, box_prefix17(tag::BOOL));
        self.b.slli(Reg::T2, Reg::T2, 47);
        self.b.or(Reg::T5, Reg::T5, Reg::T2);
        self.b.sd(Reg::T5, -8, SP);
        self.next();
    }

    fn h_neg(&mut self) {
        let raw = self.b.new_label("jsneg_raw");
        let slow = self.b.new_label("jsneg_slow");
        self.b.ld(Reg::T1, -8, SP);
        self.b.srli(Reg::T3, Reg::T1, 47);
        self.b.li(Reg::T4, box_prefix17(tag::INT));
        self.b.bne(Reg::T3, Reg::T4, raw);
        self.unbox_signed(Reg::T1);
        self.b.neg(Reg::T1, Reg::T1);
        // -INT32_MIN overflows int32.
        self.b.emit(Instruction::Alu {
            op: tarch_isa::AluOp::Addw,
            rd: Reg::T2,
            rs1: Reg::T1,
            rs2: Reg::ZERO,
        });
        self.b.bne(Reg::T2, Reg::T1, slow);
        self.b.li(Reg::T2, box_prefix17(tag::INT));
        self.rebox(Reg::T1, Reg::T2, Reg::T3);
        self.b.sd(Reg::T1, -8, SP);
        self.next();
        self.b.bind(raw);
        self.b.srli(Reg::T3, Reg::T1, 51);
        self.b.li(Reg::T4, 0x1fff);
        self.b.beq(Reg::T3, Reg::T4, slow); // boxed non-int
        self.b.li(Reg::T2, 1);
        self.b.slli(Reg::T2, Reg::T2, 63);
        self.b.xor(Reg::T1, Reg::T1, Reg::T2);
        self.b.sd(Reg::T1, -8, SP);
        self.next();
        self.b.bind(slow);
        self.b.addi(Reg::A1, SP, -8);
        self.b.addi(Reg::A2, SP, -8);
        self.ecall(helpers::NEG_SLOW);
        self.next();
    }

    fn h_len(&mut self) {
        let slow = self.b.new_label("jslen_slow");
        self.b.ld(Reg::T1, -8, SP);
        self.guard_prefix(Reg::T1, box_prefix17(tag::OBJECT), Reg::T3, Reg::T4, slow);
        self.unbox_unsigned(Reg::T1);
        self.b.ld(Reg::T5, object::LEN, Reg::T1);
        self.b.li(Reg::T2, box_prefix17(tag::INT));
        self.rebox(Reg::T5, Reg::T2, Reg::T3);
        self.b.sd(Reg::T5, -8, SP);
        self.next();
        self.b.bind(slow);
        self.b.addi(Reg::A1, SP, -8);
        self.b.addi(Reg::A2, SP, -8);
        self.ecall(helpers::LEN_SLOW);
        self.next();
    }

    // --- control flow --------------------------------------------------------

    fn h_jump(&mut self) {
        self.decode_offset(Reg::T1);
        self.b.add(PC, PC, Reg::T1);
        self.next();
    }

    fn h_jcond(&mut self, op: Op) {
        let falsy = self.b.new_label("jsjc_falsy");
        let truthy = self.b.new_label("jsjc_truthy");
        self.decode_offset(Reg::T1);
        self.pop(Reg::T2);
        self.emit_truthiness(Reg::T2, falsy, truthy);
        let (jump_side, fall_side) = if op == Op::JIf { (truthy, falsy) } else { (falsy, truthy) };
        self.b.bind(jump_side);
        self.b.add(PC, PC, Reg::T1);
        self.next();
        self.b.bind(fall_side);
        self.next();
    }

    // --- elements --------------------------------------------------------------

    fn h_getelem(&mut self) {
        let slow = self.b.new_label("jsge_slow");
        match self.level {
            IsaLevel::Baseline => {
                self.b.ld(Reg::T1, -16, SP); // obj
                self.b.ld(Reg::T2, -8, SP); // key
                self.guard_prefix(Reg::T1, box_prefix17(tag::OBJECT), Reg::T3, Reg::T4, slow);
                self.guard_prefix(Reg::T2, box_prefix17(tag::INT), Reg::T3, Reg::T4, slow);
                self.unbox_unsigned(Reg::T1);
                self.unbox_signed(Reg::T2);
                self.emit_elem_index(Reg::T1, Reg::T2, Reg::T6, slow);
                self.b.ld(Reg::T3, 0, Reg::T6);
                self.b.sd(Reg::T3, -16, SP);
                self.b.addi(SP, SP, -8);
                self.next();
            }
            IsaLevel::CheckedLoad => {
                self.b.thdl(slow);
                self.b.li(Reg::T3, layout::chk_byte(tag::OBJECT) as i64);
                self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::ExpType, rs1: Reg::T3 });
                self.b.chklb(Reg::T4, -10, SP);
                self.b.li(Reg::T3, layout::chk_byte(tag::INT) as i64);
                self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::ExpType, rs1: Reg::T3 });
                self.b.chklb(Reg::T4, -2, SP);
                self.b.ld(Reg::T1, -16, SP);
                self.b.ld(Reg::T2, -8, SP);
                // Box-prefix backstops.
                self.b.li(Reg::T3, 0x1fff);
                self.b.srli(Reg::T4, Reg::T1, 51);
                self.b.bne(Reg::T4, Reg::T3, slow);
                self.b.srli(Reg::T4, Reg::T2, 51);
                self.b.bne(Reg::T4, Reg::T3, slow);
                self.unbox_unsigned(Reg::T1);
                self.unbox_signed(Reg::T2);
                self.emit_elem_index(Reg::T1, Reg::T2, Reg::T6, slow);
                self.b.ld(Reg::T3, 0, Reg::T6);
                self.b.sd(Reg::T3, -16, SP);
                self.b.addi(SP, SP, -8);
                self.next();
            }
            IsaLevel::Typed => {
                self.b.tld(Reg::A2, -16, SP); // obj: tag 6, payload = header
                self.b.tld(Reg::A3, -8, SP); // key: tag 1, payload = index
                self.b.thdl(slow);
                self.b.tchk(Reg::A2, Reg::A3);
                self.emit_elem_index(Reg::A2, Reg::A3, Reg::T6, slow);
                self.b.ld(Reg::T3, 0, Reg::T6);
                self.b.sd(Reg::T3, -16, SP);
                self.b.addi(SP, SP, -8);
                self.next();
            }
        }
        self.b.bind(slow);
        self.b.addi(Reg::A1, SP, -16);
        self.b.addi(Reg::A2, SP, -16);
        self.b.addi(Reg::A3, SP, -8);
        self.ecall(helpers::GETELEM_SLOW);
        self.b.addi(SP, SP, -8);
        self.next();
    }

    /// `elem = elems_ptr + (key-1)*8`, bounds-checked. `hdr` holds the
    /// header address, `key` the integer key. Clobbers T5.
    fn emit_elem_index(&mut self, hdr: Reg, key: Reg, elem: Reg, slow: Label) {
        self.b.ld(Reg::T5, object::LEN, hdr);
        self.b.addi(elem, key, -1);
        self.b.bgeu(elem, Reg::T5, slow);
        self.b.ld(Reg::T5, object::ELEMS_PTR, hdr);
        self.b.slli(elem, elem, 3);
        self.b.add(elem, elem, Reg::T5);
    }

    fn h_setelem(&mut self) {
        // Stack: [obj, key, val] at SP-24, SP-16, SP-8.
        let slow = self.b.new_label("jsse_slow");
        let store = self.b.new_label("jsse_store");
        match self.level {
            IsaLevel::Baseline | IsaLevel::CheckedLoad => {
                if self.level == IsaLevel::Baseline {
                    self.b.ld(Reg::T1, -24, SP);
                    self.b.ld(Reg::T2, -16, SP);
                    self.guard_prefix(Reg::T1, box_prefix17(tag::OBJECT), Reg::T3, Reg::T4, slow);
                    self.guard_prefix(Reg::T2, box_prefix17(tag::INT), Reg::T3, Reg::T4, slow);
                } else {
                    self.b.thdl(slow);
                    self.b.li(Reg::T3, layout::chk_byte(tag::OBJECT) as i64);
                    self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::ExpType, rs1: Reg::T3 });
                    self.b.chklb(Reg::T4, -18, SP);
                    self.b.li(Reg::T3, layout::chk_byte(tag::INT) as i64);
                    self.b.emit(Instruction::SetSpr { spr: tarch_isa::Spr::ExpType, rs1: Reg::T3 });
                    self.b.chklb(Reg::T4, -10, SP);
                    self.b.ld(Reg::T1, -24, SP);
                    self.b.ld(Reg::T2, -16, SP);
                    self.b.li(Reg::T3, 0x1fff);
                    self.b.srli(Reg::T4, Reg::T1, 51);
                    self.b.bne(Reg::T4, Reg::T3, slow);
                    self.b.srli(Reg::T4, Reg::T2, 51);
                    self.b.bne(Reg::T4, Reg::T3, slow);
                }
                self.unbox_unsigned(Reg::T1);
                self.unbox_signed(Reg::T2);
            }
            IsaLevel::Typed => {
                self.b.tld(Reg::A2, -24, SP);
                self.b.tld(Reg::A3, -16, SP);
                self.b.thdl(slow);
                self.b.tchk(Reg::A2, Reg::A3);
                self.b.mv(Reg::T1, Reg::A2);
                self.b.mv(Reg::T2, Reg::A3);
            }
        }
        self.emit_setelem_bounds(Reg::T1, Reg::T2, Reg::T6, slow, store);
        self.b.bind(store);
        self.b.ld(Reg::T3, -8, SP);
        self.b.sd(Reg::T3, 0, Reg::T6);
        self.b.addi(SP, SP, -24);
        self.next();
        self.b.bind(slow);
        self.b.addi(Reg::A1, SP, -24);
        self.b.addi(Reg::A2, SP, -16);
        self.b.addi(Reg::A3, SP, -8);
        self.ecall(helpers::SETELEM_SLOW);
        self.b.addi(SP, SP, -24);
        self.next();
    }

    /// Dense write with in-place append, like `luart`'s.
    fn emit_setelem_bounds(&mut self, hdr: Reg, key: Reg, elem: Reg, slow: Label, store: Label) {
        let in_range = self.b.new_label("jsse_in_range");
        self.b.ld(Reg::T5, object::LEN, hdr);
        self.b.addi(elem, key, -1);
        self.b.bltu(elem, Reg::T5, in_range);
        self.b.bne(elem, Reg::T5, slow);
        self.b.ld(Reg::T4, object::CAP, hdr);
        self.b.bgeu(Reg::T5, Reg::T4, slow);
        self.b.addi(Reg::T5, Reg::T5, 1);
        self.b.sd(Reg::T5, object::LEN, hdr);
        self.b.bind(in_range);
        self.b.ld(Reg::T5, object::ELEMS_PTR, hdr);
        self.b.slli(elem, elem, 3);
        self.b.add(elem, elem, Reg::T5);
        self.b.j(store);
    }

    // --- globals, arrays, calls ---------------------------------------------

    fn h_getglobal(&mut self) {
        self.decode_uimm(Reg::A2);
        self.b.slli(Reg::A2, Reg::A2, 3);
        self.b.add(Reg::A2, Reg::A2, KB);
        self.b.mv(Reg::A1, SP);
        self.ecall(helpers::GETGLOBAL);
        self.b.addi(SP, SP, 8);
        self.next();
    }

    fn h_setglobal(&mut self) {
        self.decode_uimm(Reg::A2);
        self.b.slli(Reg::A2, Reg::A2, 3);
        self.b.add(Reg::A2, Reg::A2, KB);
        self.b.addi(Reg::A1, SP, -8);
        self.ecall(helpers::SETGLOBAL);
        self.b.addi(SP, SP, -8);
        self.next();
    }

    fn h_newarr(&mut self) {
        self.decode_uimm(Reg::A2);
        self.b.mv(Reg::A1, SP);
        self.ecall(helpers::NEWARR);
        self.b.addi(SP, SP, 8);
        self.next();
    }

    fn h_call(&mut self) {
        let ov = self.stack_ov;
        self.b.bgeu(CI, CI_LIM, ov);
        self.b.sd(PC, callinfo::RET_PC, CI);
        self.b.sd(LOCALS, callinfo::RET_LOCALS, CI);
        self.b.sd(KB, callinfo::RET_CONSTS, CI);
        self.b.addi(CI, CI, callinfo::STRIDE as i32);
        // nargs → new locals base.
        self.b.srli(Reg::T2, W, 16);
        self.b.andi(Reg::T2, Reg::T2, 0xff);
        self.b.slli(Reg::T2, Reg::T2, 3);
        self.b.sub(LOCALS, SP, Reg::T2);
        // Callee FuncInfo.
        self.b.slli(Reg::T3, W, 48);
        self.b.srli(Reg::T3, Reg::T3, 48);
        self.b.slli(Reg::T3, Reg::T3, 5);
        self.b.add(Reg::T3, Reg::T3, FT);
        self.b.ld(PC, funcinfo::CODE, Reg::T3);
        self.b.ld(KB, funcinfo::CONSTS, Reg::T3);
        self.b.ld(Reg::T4, funcinfo::NLOCALS, Reg::T3);
        self.b.slli(Reg::T4, Reg::T4, 3);
        self.b.add(SP, LOCALS, Reg::T4);
        self.b.ld(Reg::T4, funcinfo::FRAME, Reg::T3);
        self.b.slli(Reg::T4, Reg::T4, 3);
        self.b.add(Reg::T4, Reg::T4, LOCALS);
        self.b.bgeu(Reg::T4, STK_LIM, ov);
        self.next();
    }

    fn h_callb(&mut self) {
        // a1 = args base = SP - nargs*8; result written there.
        self.b.srli(Reg::A3, W, 16);
        self.b.andi(Reg::A3, Reg::A3, 0xff);
        self.b.slli(Reg::T2, Reg::A3, 3);
        self.b.sub(Reg::A1, SP, Reg::T2);
        self.b.slli(Reg::A2, W, 48);
        self.b.srli(Reg::A2, Reg::A2, 48);
        self.ecall(helpers::BUILTIN);
        // sp = args base + 1 slot.
        self.b.addi(SP, Reg::A1, 8);
        self.next();
    }

    fn h_ret(&mut self, op: Op) {
        if op == Op::RetV {
            self.b.ld(Reg::T1, -8, SP);
        } else {
            self.b.li(Reg::T1, box_prefix17(tag::UNDEF));
            self.b.slli(Reg::T1, Reg::T1, 47);
        }
        self.b.mv(Reg::T2, LOCALS); // callee locals base = result slot
        self.b.addi(CI, CI, -(callinfo::STRIDE as i32));
        self.b.ld(PC, callinfo::RET_PC, CI);
        self.b.ld(LOCALS, callinfo::RET_LOCALS, CI);
        self.b.ld(KB, callinfo::RET_CONSTS, CI);
        self.b.sd(Reg::T1, 0, Reg::T2);
        self.b.addi(SP, Reg::T2, 8);
        self.next();
    }

    // --- data ------------------------------------------------------------------

    fn emit_data(&mut self) {
        self.b.align_data(8);
        let dt = self.dispatch_table;
        self.b.bind_data(dt);
        for op in Op::ALL {
            let h = self.handler(op);
            self.b.dword_label(h);
        }
        let ft = self.functable;
        self.b.bind_data(ft);
        for i in 0..self.module.protos.len() {
            let (c, k) = (self.func_code[i], self.func_consts[i]);
            let p = &self.module.protos[i];
            self.b.dword_label(c);
            self.b.dword_label(k);
            self.b.dword(p.nlocals as u64);
            self.b.dword(p.nlocals as u64 + p.max_stack as u64 + 1);
        }
        let hb = self.halt_bc;
        self.b.bind_data(hb);
        let halt_word = crate::bytecode::Bc::new(Op::Halt, 0).encode();
        self.b.bytes(&halt_word.to_le_bytes());
        self.b.bytes(&halt_word.to_le_bytes());

        for i in 0..self.module.protos.len() {
            self.b.align_data(8);
            let cl = self.func_code[i];
            self.b.bind_data(cl);
            let words: Vec<u8> = self.module.protos[i]
                .code
                .iter()
                .flat_map(|bc| bc.encode().to_le_bytes())
                .collect();
            self.b.bytes(&words);
            self.b.align_data(8);
            let kl = self.func_consts[i];
            self.b.bind_data(kl);
            let consts = self.module.protos[i].consts.clone();
            for k in &consts {
                let dword = match k {
                    Const::Int(v) => match i32::try_from(*v) {
                        Ok(v32) => layout::box_int(v32),
                        Err(_) => (*v as f64).to_bits(),
                    },
                    Const::Float(v) => v.to_bits(),
                    Const::Str(s) => layout::boxed(tag::STR, self.intern(s) as u64),
                };
                self.b.dword(dword);
            }
        }
    }

    fn finish(self) -> Result<JsImage, AsmError> {
        let program = self.b.finish()?;
        let mut handler_entries: Vec<(Op, u64)> = Op::ALL
            .iter()
            .map(|op| (*op, program.symbol(&format!("op_{}", op.name())).expect("handler symbol")))
            .collect();
        handler_entries.sort_by_key(|(_, pc)| *pc);
        let dispatch_pc = program.symbol("dispatch").expect("dispatch symbol");
        Ok(JsImage { program, handler_entries, dispatch_pc, strings: self.strings, level: self.level })
    }
}
