//! Stack-machine bytecode of the `jsrt` engine.
//!
//! Mirrors SpiderMonkey's interpreter architecture (paper Section 4.2): a
//! stack-based VM whose binary operators consume the top of stack. Our
//! encoding is a fixed 32-bit word — 8-bit opcode plus a 24-bit operand
//! (signed jump offset, constant/local index, or packed call operands) —
//! rather than SpiderMonkey's variable-length stream; the dynamic bytecode
//! *mix* is what the experiments depend on, not the static encoding.

use std::fmt;

/// A stack-machine opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    /// Push constant `K[imm]`.
    PushK = 0,
    /// Push a small signed integer immediate.
    PushI,
    /// Push `undefined`.
    PushUndef,
    /// Push `true`/`false` (`imm != 0`).
    PushBool,
    /// Push `locals[imm]`.
    GetLocal,
    /// `locals[imm] = pop()`.
    SetLocal,
    /// Discard the top of stack.
    Pop,
    /// `St[-2] = St[-2] + St[-1]; pop` — type-guarded (paper Table 3).
    Add,
    /// Subtract — type-guarded.
    Sub,
    /// Multiply — type-guarded.
    Mul,
    /// Divide (always double).
    Div,
    /// Floor divide.
    IDiv,
    /// Floor modulo.
    Mod,
    /// Concatenate.
    Concat,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Logical not of TOS.
    Not,
    /// Arithmetic negation of TOS.
    Neg,
    /// Length of TOS.
    Len,
    /// Unconditional relative jump.
    Jump,
    /// Pop; jump if truthy.
    JIf,
    /// Pop; jump if falsy.
    JNot,
    /// `St[-2] = St[-2][St[-1]]; pop` — type-guarded element read.
    GetElem,
    /// `St[-3][St[-2]] = St[-1]; pop 3` — type-guarded element write.
    SetElem,
    /// Push `globals[K[imm]]`.
    GetGlobal,
    /// `globals[K[imm]] = pop()`.
    SetGlobal,
    /// Push a new array object (capacity hint in `imm`).
    NewArr,
    /// Call function (`imm` packs nargs and function index).
    Call,
    /// Call builtin (`imm` packs nargs and builtin id).
    CallB,
    /// Return `undefined`.
    Ret,
    /// Return TOS.
    RetV,
    /// Stop the VM.
    Halt,
}

impl Op {
    /// All opcodes in encoding order.
    pub const ALL: [Op; 34] = [
        Op::PushK,
        Op::PushI,
        Op::PushUndef,
        Op::PushBool,
        Op::GetLocal,
        Op::SetLocal,
        Op::Pop,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::IDiv,
        Op::Mod,
        Op::Concat,
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Le,
        Op::Not,
        Op::Neg,
        Op::Len,
        Op::Jump,
        Op::JIf,
        Op::JNot,
        Op::GetElem,
        Op::SetElem,
        Op::GetGlobal,
        Op::SetGlobal,
        Op::NewArr,
        Op::Call,
        Op::CallB,
        Op::Ret,
        Op::RetV,
        Op::Halt,
    ];

    /// Decodes an opcode number.
    pub fn from_code(code: u8) -> Option<Op> {
        Op::ALL.get(code as usize).copied()
    }

    /// Display name (SpiderMonkey style).
    pub fn name(self) -> &'static str {
        match self {
            Op::PushK => "PUSHK",
            Op::PushI => "PUSHI",
            Op::PushUndef => "PUSHUNDEF",
            Op::PushBool => "PUSHBOOL",
            Op::GetLocal => "GETLOCAL",
            Op::SetLocal => "SETLOCAL",
            Op::Pop => "POP",
            Op::Add => "ADD",
            Op::Sub => "SUB",
            Op::Mul => "MUL",
            Op::Div => "DIV",
            Op::IDiv => "IDIV",
            Op::Mod => "MOD",
            Op::Concat => "CONCAT",
            Op::Eq => "EQ",
            Op::Ne => "NE",
            Op::Lt => "LT",
            Op::Le => "LE",
            Op::Not => "NOT",
            Op::Neg => "NEG",
            Op::Len => "LEN",
            Op::Jump => "JUMP",
            Op::JIf => "JIF",
            Op::JNot => "JNOT",
            Op::GetElem => "GETELEM",
            Op::SetElem => "SETELEM",
            Op::GetGlobal => "GETGLOBAL",
            Op::SetGlobal => "SETGLOBAL",
            Op::NewArr => "NEWARR",
            Op::Call => "CALL",
            Op::CallB => "CALLB",
            Op::Ret => "RET",
            Op::RetV => "RETV",
            Op::Halt => "HALT",
        }
    }

    /// Whether this is one of the five retargeted hot bytecodes
    /// (paper Table 3: ADD, SUB, MUL, GETELEM, SETELEM).
    pub fn is_retargeted(self) -> bool {
        matches!(self, Op::Add | Op::Sub | Op::Mul | Op::GetElem | Op::SetElem)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One instruction: opcode plus a signed 24-bit operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bc {
    /// Opcode.
    pub op: Op,
    /// Operand (immediate, index, offset, or packed call fields).
    pub imm: i32,
}

impl Bc {
    /// Builds an instruction.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the operand exceeds 24 signed bits.
    pub fn new(op: Op, imm: i32) -> Bc {
        debug_assert!((-(1 << 23)..(1 << 23)).contains(&imm), "imm overflow: {imm}");
        Bc { op, imm }
    }

    /// Packs call operands: callee index (16 bits) and nargs (8 bits).
    pub fn call(op: Op, callee: u16, nargs: u8) -> Bc {
        Bc::new(op, ((nargs as i32) << 16) | callee as i32)
    }

    /// Callee index of a packed call.
    pub fn callee(self) -> u16 {
        (self.imm & 0xffff) as u16
    }

    /// Argument count of a packed call.
    pub fn nargs(self) -> u8 {
        ((self.imm >> 16) & 0xff) as u8
    }

    /// Encodes to a 32-bit word.
    pub fn encode(self) -> u32 {
        ((self.op as u32) << 24) | ((self.imm as u32) & 0x00ff_ffff)
    }

    /// Decodes from a 32-bit word.
    pub fn decode(word: u32) -> Option<Bc> {
        let op = Op::from_code((word >> 24) as u8)?;
        let imm = ((word << 8) as i32) >> 8; // sign-extend 24 bits
        Some(Bc { op, imm })
    }
}

impl fmt::Display for Bc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Call | Op::CallB => {
                write!(f, "{} #{} ({} args)", self.op, self.callee(), self.nargs())
            }
            _ => write!(f, "{} {}", self.op, self.imm),
        }
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer (boxed as Int when it fits 32 bits, else stored as Double).
    Int(i64),
    /// Double.
    Float(f64),
    /// String (interned at link time).
    Str(String),
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Proto {
    /// Name (diagnostics).
    pub name: String,
    /// Parameter count.
    pub nparams: u8,
    /// Local slot count (params first).
    pub nlocals: u16,
    /// Maximum operand-stack depth.
    pub max_stack: u16,
    /// Code.
    pub code: Vec<Bc>,
    /// Constants.
    pub consts: Vec<Const>,
}

/// Builtins callable via `CallB` (shared id space with `luart`'s set).
pub use luart::Builtin;

/// A compiled module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// All functions; `protos[main]` is the top level.
    pub protos: Vec<Proto>,
    /// Index of the main function.
    pub main: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for op in Op::ALL {
            for imm in [-(1 << 23), -1, 0, 1, (1 << 23) - 1] {
                let bc = Bc::new(op, imm);
                assert_eq!(Bc::decode(bc.encode()), Some(bc), "{op} {imm}");
            }
        }
    }

    #[test]
    fn call_packing() {
        let bc = Bc::call(Op::Call, 513, 7);
        assert_eq!(bc.callee(), 513);
        assert_eq!(bc.nargs(), 7);
        let rt = Bc::decode(bc.encode()).unwrap();
        assert_eq!(rt.callee(), 513);
        assert_eq!(rt.nargs(), 7);
    }

    #[test]
    fn retargeted_matches_table3() {
        let hot: Vec<Op> = Op::ALL.into_iter().filter(|o| o.is_retargeted()).collect();
        assert_eq!(hot, vec![Op::Add, Op::Sub, Op::Mul, Op::GetElem, Op::SetElem]);
    }

    #[test]
    fn bad_opcode() {
        assert_eq!(Bc::decode(0xff00_0000), None);
    }
}
