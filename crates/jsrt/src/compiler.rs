//! MiniScript AST → stack bytecode compiler.
//!
//! Conventional stack-machine lowering: expressions push one value;
//! statements leave the operand stack balanced. Locals (and the hidden
//! temporaries needed for short-circuit operators and array literals on a
//! DUP-less machine) live in frame slots; the compiler tracks the maximum
//! operand depth so frames can be overflow-checked on call.

use crate::bytecode::{Bc, Builtin, Const, Module, Op, Proto};
use miniscript::{BinOp, Block, Chunk, Expr, Stat, Target, UnOp};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Compile-time error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl CompileError {
    fn new(message: impl Into<String>) -> CompileError {
        CompileError { message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl Error for CompileError {}

/// Compiles a parsed chunk into a stack-bytecode [`Module`].
///
/// # Errors
///
/// Returns [`CompileError`] for unknown functions, arity mismatches, or
/// resource overflows.
///
/// # Examples
///
/// ```
/// let chunk = miniscript::parse("print(1 + 2)")?;
/// let module = jsrt::compile(&chunk)?;
/// assert_eq!(module.protos.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(chunk: &Chunk) -> Result<Module, CompileError> {
    let mut func_ids = HashMap::new();
    for (i, f) in chunk.functions.iter().enumerate() {
        if func_ids.insert(f.name.clone(), i).is_some() {
            return Err(CompileError::new(format!("function `{}` defined twice", f.name)));
        }
        if Builtin::by_name(&f.name).is_some() {
            return Err(CompileError::new(format!("function `{}` shadows a builtin", f.name)));
        }
    }

    let mut protos = Vec::new();
    for f in &chunk.functions {
        let mut c = FnCompiler::new(&f.name, &func_ids, chunk);
        for p in &f.params {
            c.declare_local(p)?;
        }
        c.block(&f.body)?;
        c.emit(Bc::new(Op::Ret, 0), 0);
        protos.push(c.finish(f.params.len() as u8));
    }
    let mut c = FnCompiler::new("main", &func_ids, chunk);
    c.block(&chunk.main)?;
    c.emit(Bc::new(Op::Ret, 0), 0);
    protos.push(c.finish(0));
    let main = protos.len() - 1;
    Ok(Module { protos, main })
}

struct LoopCtx {
    break_jumps: Vec<usize>,
}

struct FnCompiler<'a> {
    name: String,
    func_ids: &'a HashMap<String, usize>,
    chunk: &'a Chunk,
    code: Vec<Bc>,
    consts: Vec<Const>,
    locals: Vec<(String, u16)>,
    scope_marks: Vec<usize>,
    next_slot: u16,
    max_slot: u16,
    depth: i32,
    max_depth: i32,
    loops: Vec<LoopCtx>,
}

impl<'a> FnCompiler<'a> {
    fn new(name: &str, func_ids: &'a HashMap<String, usize>, chunk: &'a Chunk) -> FnCompiler<'a> {
        FnCompiler {
            name: name.to_string(),
            func_ids,
            chunk,
            code: Vec::new(),
            consts: Vec::new(),
            locals: Vec::new(),
            scope_marks: Vec::new(),
            next_slot: 0,
            max_slot: 0,
            depth: 0,
            max_depth: 0,
            loops: Vec::new(),
        }
    }

    fn finish(self, nparams: u8) -> Proto {
        Proto {
            name: self.name,
            nparams,
            nlocals: self.max_slot.max(nparams as u16),
            max_stack: self.max_depth.max(1) as u16,
            code: self.code,
            consts: self.consts,
        }
    }

    fn emit(&mut self, bc: Bc, stack_delta: i32) -> usize {
        self.code.push(bc);
        self.depth += stack_delta;
        debug_assert!(self.depth >= 0, "operand stack underflow in `{}`", self.name);
        self.max_depth = self.max_depth.max(self.depth);
        self.code.len() - 1
    }

    fn emit_jump(&mut self, op: Op, stack_delta: i32) -> usize {
        self.emit(Bc::new(op, 0), stack_delta)
    }

    fn patch_here(&mut self, at: usize) {
        let off = self.code.len() as i32 - at as i32 - 1;
        self.code[at] = Bc::new(self.code[at].op, off);
    }

    fn jump_back(&mut self, op: Op, target: usize, stack_delta: i32) {
        let off = target as i32 - self.code.len() as i32 - 1;
        self.emit(Bc::new(op, off), stack_delta);
    }

    fn alloc_slot(&mut self) -> Result<u16, CompileError> {
        let s = self.next_slot;
        if s >= 4000 {
            return Err(CompileError::new(format!("function `{}` needs too many locals", self.name)));
        }
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        Ok(s)
    }

    fn declare_local(&mut self, name: &str) -> Result<u16, CompileError> {
        let s = self.alloc_slot()?;
        self.locals.push((name.to_string(), s));
        Ok(s)
    }

    fn free_temp(&mut self, slot: u16) {
        debug_assert_eq!(slot + 1, self.next_slot, "temps must be freed LIFO");
        self.next_slot -= 1;
    }

    fn resolve_local(&self, name: &str) -> Option<u16> {
        self.locals.iter().rev().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    fn enter_scope(&mut self) {
        self.scope_marks.push(self.locals.len());
    }

    fn leave_scope(&mut self) {
        let mark = self.scope_marks.pop().expect("scope underflow");
        if let Some((_, lowest)) = self.locals.get(mark) {
            self.next_slot = *lowest;
        }
        self.locals.truncate(mark);
    }

    fn add_const(&mut self, c: Const) -> Result<i32, CompileError> {
        let found = self.consts.iter().position(|k| match (k, &c) {
            (Const::Int(a), Const::Int(b)) => a == b,
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            (Const::Str(a), Const::Str(b)) => a == b,
            _ => false,
        });
        let idx = match found {
            Some(i) => i,
            None => {
                self.consts.push(c);
                self.consts.len() - 1
            }
        };
        if idx >= (1 << 23) {
            return Err(CompileError::new("too many constants"));
        }
        Ok(idx as i32)
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Nil => {
                self.emit(Bc::new(Op::PushUndef, 0), 1);
            }
            Expr::Bool(b) => {
                self.emit(Bc::new(Op::PushBool, *b as i32), 1);
            }
            Expr::Int(v) => {
                if (-(1 << 23)..(1 << 23)).contains(v) {
                    self.emit(Bc::new(Op::PushI, *v as i32), 1);
                } else {
                    let k = self.add_const(Const::Int(*v))?;
                    self.emit(Bc::new(Op::PushK, k), 1);
                }
            }
            Expr::Float(v) => {
                let k = self.add_const(Const::Float(*v))?;
                self.emit(Bc::new(Op::PushK, k), 1);
            }
            Expr::Str(s) => {
                let k = self.add_const(Const::Str(s.clone()))?;
                self.emit(Bc::new(Op::PushK, k), 1);
            }
            Expr::Var(name) => {
                if let Some(slot) = self.resolve_local(name) {
                    self.emit(Bc::new(Op::GetLocal, slot as i32), 1);
                } else {
                    let k = self.add_const(Const::Str(name.clone()))?;
                    self.emit(Bc::new(Op::GetGlobal, k), 1);
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (bop, swap) = match op {
                    BinOp::Add => (Op::Add, false),
                    BinOp::Sub => (Op::Sub, false),
                    BinOp::Mul => (Op::Mul, false),
                    BinOp::Div => (Op::Div, false),
                    BinOp::IDiv => (Op::IDiv, false),
                    BinOp::Mod => (Op::Mod, false),
                    BinOp::Concat => (Op::Concat, false),
                    BinOp::Eq => (Op::Eq, false),
                    BinOp::Ne => (Op::Ne, false),
                    BinOp::Lt => (Op::Lt, false),
                    BinOp::Le => (Op::Le, false),
                    BinOp::Gt => (Op::Lt, true),
                    BinOp::Ge => (Op::Le, true),
                };
                if swap {
                    self.expr(rhs)?;
                    self.expr(lhs)?;
                } else {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                }
                self.emit(Bc::new(bop, 0), -1);
            }
            Expr::Unary { op, expr } => {
                self.expr(expr)?;
                let uop = match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                    UnOp::Len => Op::Len,
                };
                self.emit(Bc::new(uop, 0), 0);
            }
            Expr::And(l, r) => {
                // tmp = l; if tmp then tmp = r end; push tmp
                let tmp = self.alloc_slot()?;
                self.expr(l)?;
                self.emit(Bc::new(Op::SetLocal, tmp as i32), -1);
                self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                let skip = self.emit_jump(Op::JNot, -1);
                self.expr(r)?;
                self.emit(Bc::new(Op::SetLocal, tmp as i32), -1);
                self.patch_here(skip);
                self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                self.free_temp(tmp);
            }
            Expr::Or(l, r) => {
                let tmp = self.alloc_slot()?;
                self.expr(l)?;
                self.emit(Bc::new(Op::SetLocal, tmp as i32), -1);
                self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                let skip = self.emit_jump(Op::JIf, -1);
                self.expr(r)?;
                self.emit(Bc::new(Op::SetLocal, tmp as i32), -1);
                self.patch_here(skip);
                self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                self.free_temp(tmp);
            }
            Expr::Index { table, key } => {
                self.expr(table)?;
                self.expr(key)?;
                self.emit(Bc::new(Op::GetElem, 0), -1);
            }
            Expr::Call { func, args } => self.call(func, args)?,
            Expr::Table(items) => {
                let tmp = self.alloc_slot()?;
                self.emit(Bc::new(Op::NewArr, items.len() as i32), 1);
                self.emit(Bc::new(Op::SetLocal, tmp as i32), -1);
                for (i, item) in items.iter().enumerate() {
                    self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                    self.emit(Bc::new(Op::PushI, i as i32 + 1), 1);
                    self.expr(item)?;
                    self.emit(Bc::new(Op::SetElem, 0), -3);
                }
                self.emit(Bc::new(Op::GetLocal, tmp as i32), 1);
                self.free_temp(tmp);
            }
        }
        Ok(())
    }

    fn call(&mut self, func: &str, args: &[Expr]) -> Result<(), CompileError> {
        for a in args {
            self.expr(a)?;
        }
        let delta = 1 - args.len() as i32;
        if let Some(&id) = self.func_ids.get(func) {
            let f = &self.chunk.functions[id];
            if f.params.len() != args.len() {
                return Err(CompileError::new(format!(
                    "function `{func}` expects {} arguments, got {}",
                    f.params.len(),
                    args.len()
                )));
            }
            self.emit(Bc::call(Op::Call, id as u16, args.len() as u8), delta);
        } else if let Some(b) = Builtin::by_name(func) {
            self.emit(Bc::call(Op::CallB, b as u16, args.len() as u8), delta);
        } else {
            return Err(CompileError::new(format!("unknown function `{func}`")));
        }
        Ok(())
    }

    fn block(&mut self, block: &Block) -> Result<(), CompileError> {
        self.enter_scope();
        for stat in block {
            self.stat(stat)?;
        }
        self.leave_scope();
        Ok(())
    }

    fn stat(&mut self, stat: &Stat) -> Result<(), CompileError> {
        match stat {
            Stat::Local { name, init } => {
                // Evaluate before declaring so `local x = x` sees the outer x.
                match init {
                    Some(e) => self.expr(e)?,
                    None => {
                        self.emit(Bc::new(Op::PushUndef, 0), 1);
                    }
                }
                let slot = self.declare_local(name)?;
                self.emit(Bc::new(Op::SetLocal, slot as i32), -1);
            }
            Stat::Assign { target, value } => match target {
                Target::Name(name) => {
                    self.expr(value)?;
                    if let Some(slot) = self.resolve_local(name) {
                        self.emit(Bc::new(Op::SetLocal, slot as i32), -1);
                    } else {
                        let k = self.add_const(Const::Str(name.clone()))?;
                        self.emit(Bc::new(Op::SetGlobal, k), -1);
                    }
                }
                Target::Index { table, key } => {
                    self.expr(table)?;
                    self.expr(key)?;
                    self.expr(value)?;
                    self.emit(Bc::new(Op::SetElem, 0), -3);
                }
            },
            Stat::If { arms, else_body } => {
                let mut end_jumps = Vec::new();
                for (i, (cond, body)) in arms.iter().enumerate() {
                    self.expr(cond)?;
                    let skip = self.emit_jump(Op::JNot, -1);
                    self.block(body)?;
                    let last = i == arms.len() - 1 && else_body.is_none();
                    if !last {
                        end_jumps.push(self.emit_jump(Op::Jump, 0));
                    }
                    self.patch_here(skip);
                }
                if let Some(body) = else_body {
                    self.block(body)?;
                }
                for j in end_jumps {
                    self.patch_here(j);
                }
            }
            Stat::While { cond, body } => {
                let top = self.code.len();
                self.expr(cond)?;
                let exit = self.emit_jump(Op::JNot, -1);
                self.loops.push(LoopCtx { break_jumps: Vec::new() });
                self.block(body)?;
                self.jump_back(Op::Jump, top, 0);
                self.patch_here(exit);
                let ctx = self.loops.pop().expect("loop stack");
                for j in ctx.break_jumps {
                    self.patch_here(j);
                }
            }
            Stat::NumericFor { var, start, stop, step, body } => {
                self.enter_scope();
                let idx = self.declare_local("(for index)")?;
                let limit = self.declare_local("(for limit)")?;
                let steps = self.declare_local("(for step)")?;
                let vars = self.declare_local(var)?;
                self.expr(start)?;
                self.emit(Bc::new(Op::SetLocal, idx as i32), -1);
                self.expr(stop)?;
                self.emit(Bc::new(Op::SetLocal, limit as i32), -1);
                let step_sign = match step {
                    None => Some(true),
                    Some(Expr::Int(v)) => Some(*v >= 0),
                    Some(Expr::Float(v)) => Some(*v >= 0.0),
                    Some(_) => None,
                };
                match step {
                    Some(e) => self.expr(e)?,
                    None => {
                        self.emit(Bc::new(Op::PushI, 1), 1);
                    }
                }
                self.emit(Bc::new(Op::SetLocal, steps as i32), -1);

                let top = self.code.len();
                match step_sign {
                    Some(true) => {
                        self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                        self.emit(Bc::new(Op::GetLocal, limit as i32), 1);
                        self.emit(Bc::new(Op::Le, 0), -1);
                    }
                    Some(false) => {
                        self.emit(Bc::new(Op::GetLocal, limit as i32), 1);
                        self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                        self.emit(Bc::new(Op::Le, 0), -1);
                    }
                    None => {
                        // Runtime step-sign dispatch.
                        self.emit(Bc::new(Op::GetLocal, steps as i32), 1);
                        self.emit(Bc::new(Op::PushI, 0), 1);
                        self.emit(Bc::new(Op::Lt, 0), -1);
                        let neg = self.emit_jump(Op::JIf, -1);
                        self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                        self.emit(Bc::new(Op::GetLocal, limit as i32), 1);
                        self.emit(Bc::new(Op::Le, 0), -1);
                        let join = self.emit_jump(Op::Jump, 0);
                        self.patch_here(neg);
                        self.emit(Bc::new(Op::GetLocal, limit as i32), 1);
                        self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                        self.emit(Bc::new(Op::Le, 0), -1);
                        self.patch_here(join);
                        // Both arms leave one boolean; reconcile the
                        // static depth (the two paths are exclusive).
                        self.depth -= 1;
                        self.max_depth = self.max_depth.max(self.depth + 1);
                        self.depth += 1;
                    }
                }
                let exit = self.emit_jump(Op::JNot, -1);
                self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                self.emit(Bc::new(Op::SetLocal, vars as i32), -1);
                self.loops.push(LoopCtx { break_jumps: Vec::new() });
                self.block(body)?;
                self.emit(Bc::new(Op::GetLocal, idx as i32), 1);
                self.emit(Bc::new(Op::GetLocal, steps as i32), 1);
                self.emit(Bc::new(Op::Add, 0), -1);
                self.emit(Bc::new(Op::SetLocal, idx as i32), -1);
                self.jump_back(Op::Jump, top, 0);
                self.patch_here(exit);
                let ctx = self.loops.pop().expect("loop stack");
                for j in ctx.break_jumps {
                    self.patch_here(j);
                }
                self.leave_scope();
            }
            Stat::Return(value) => match value {
                Some(e) => {
                    self.expr(e)?;
                    self.emit(Bc::new(Op::RetV, 0), -1);
                }
                None => {
                    self.emit(Bc::new(Op::Ret, 0), 0);
                }
            },
            Stat::Break => {
                let j = self.emit_jump(Op::Jump, 0);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_jumps.push(j),
                    None => return Err(CompileError::new("break outside a loop")),
                }
            }
            Stat::ExprStat(e) => {
                self.expr(e)?;
                self.emit(Bc::new(Op::Pop, 0), -1);
            }
            Stat::Do(body) => self.block(body)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniscript::parse;

    fn compile_src(src: &str) -> Module {
        compile(&parse(src).unwrap()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn stack_balanced_statements() {
        let m = compile_src("local a = 1 + 2 a = a * 3 print(a)");
        let p = &m.protos[m.main];
        assert!(p.max_stack >= 2);
        // Statements are balanced: final Ret with empty stack; the compiler
        // would have panicked on underflow in debug builds.
        assert_eq!(p.code.last().unwrap().op, Op::Ret);
    }

    #[test]
    fn small_ints_use_pushi() {
        let m = compile_src("local x = 5 + 1000000");
        let p = &m.protos[m.main];
        assert!(p.code.iter().filter(|b| b.op == Op::PushI).count() >= 2);
        assert!(p.consts.is_empty());
    }

    #[test]
    fn gt_swaps_to_lt() {
        let m = compile_src("local a = 1 local b = 2 local c = a > b");
        let p = &m.protos[m.main];
        assert!(p.code.iter().any(|b| b.op == Op::Lt));
    }

    #[test]
    fn for_loop_shape_static_step() {
        let m = compile_src("for i = 1, 10 do print(i) end");
        let p = &m.protos[m.main];
        assert!(p.code.iter().any(|b| b.op == Op::Le));
        assert!(p.code.iter().any(|b| b.op == Op::JNot));
        assert!(p.code.iter().any(|b| b.op == Op::Add));
    }

    #[test]
    fn call_packing_and_arity() {
        let m = compile_src("function f(a, b) return a + b end print(f(1, 2))");
        let main = &m.protos[m.main];
        let call = main.code.iter().find(|b| b.op == Op::Call).unwrap();
        assert_eq!(call.nargs(), 2);
        let e = compile(&parse("function f(a) return a end f(1, 2)").unwrap()).unwrap_err();
        assert!(e.message.contains("expects 1"));
    }

    #[test]
    fn temp_slots_are_reused() {
        let m = compile_src("local x = (1 and 2) or (3 and 4) local y = (5 and 6)");
        let p = &m.protos[m.main];
        assert!(p.nlocals <= 5, "nlocals = {}", p.nlocals);
    }

    #[test]
    fn errors() {
        assert!(compile(&parse("nope(1)").unwrap()).is_err());
        assert!(compile(&parse("break").unwrap()).is_err());
        assert!(compile(&parse("function print(x) return x end").unwrap()).is_err());
    }
}
