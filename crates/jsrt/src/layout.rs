//! NaN-boxing value layout of the `jsrt` engine (paper Section 4.2).
//!
//! SpiderMonkey's scheme: a value is a 64-bit double-word. Doubles are
//! stored raw; every non-double sets the 13 most-significant bits to one
//! (an impossible pattern for canonicalized doubles), carries a 4-bit type
//! tag at bits `[50:47]`, and a 47-bit payload below. Integer payloads are
//! 32-bit values sign-extended to 47 bits.
//!
//! Tag values are chosen so that `tag >> 1` is unique — this makes byte 6
//! of a boxed value (`0xf8 | tag >> 1`) tag-discriminating, which is what
//! the Checked Load port keys its `chklb` on.

use tarch_core::SprState;
use tarch_isa::{TrtClass, TrtRule};

/// 4-bit NaN-box type tags.
pub mod tag {
    /// 32-bit integer.
    pub const INT: u8 = 1;
    /// `undefined` (MiniScript `nil`).
    pub const UNDEF: u8 = 2;
    /// Boolean (payload 0/1).
    pub const BOOL: u8 = 4;
    /// Object / array (payload = header address).
    pub const OBJECT: u8 = 6;
    /// Interned string (payload = string id).
    pub const STR: u8 = 8;
}

/// Register-level tag of an unboxed double after `tld` extraction
/// (hardware NaN-detection assigns the canonical FP tag).
pub const DOUBLE_TAG: u8 = tarch_core::NANBOX_FP_TAG;

/// The 13-ones box prefix (bits 63..51).
pub const BOX_PREFIX: u64 = 0x1fff << 51;
/// Payload mask (47 bits).
pub const PAYLOAD_MASK: u64 = (1 << 47) - 1;
/// Bit position of the type tag.
pub const TAG_SHIFT: u32 = 47;

/// Boxes a tag + 47-bit payload.
pub fn boxed(tag: u8, payload: u64) -> u64 {
    BOX_PREFIX | (((tag & 0xf) as u64) << TAG_SHIFT) | (payload & PAYLOAD_MASK)
}

/// Boxes a 32-bit integer (sign-extended payload).
pub fn box_int(v: i32) -> u64 {
    boxed(tag::INT, (v as i64) as u64)
}

/// Whether a double-word is NaN-boxed.
pub fn is_boxed(value: u64) -> bool {
    value >> 51 == 0x1fff
}

/// The 4-bit tag of a boxed value.
pub fn tag_of(value: u64) -> u8 {
    ((value >> TAG_SHIFT) & 0xf) as u8
}

/// The sign-extended payload of a boxed value.
pub fn payload_of(value: u64) -> i64 {
    ((value << 17) as i64) >> 17
}

/// Byte 6 of a boxed value: `0xf8 | tag >> 1`. The Checked Load port
/// compares this byte with `chklb` (plus a box-prefix backstop; see the
/// codegen docs for why a single byte cannot fully discriminate NaN-boxed
/// layouts — the limitation the paper ascribes to Checked Load).
pub fn chk_byte(tag: u8) -> u8 {
    0xf8 | (tag >> 1)
}

/// The `undefined` value.
pub const UNDEFINED: u64 = BOX_PREFIX | ((tag::UNDEF as u64) << TAG_SHIFT);

/// Array object header offsets (in the simulated heap; elements are 8-byte
/// NaN-boxed values).
pub mod object {
    /// Address of the dense elements.
    pub const ELEMS_PTR: i32 = 0;
    /// Capacity in elements.
    pub const CAP: i32 = 8;
    /// Length (dense border).
    pub const LEN: i32 = 16;
    /// Host-side property-map id.
    pub const HASH_ID: i32 = 24;
    /// Header size.
    pub const HEADER_SIZE: u64 = 32;
}

/// Function-info record offsets (32-byte records).
pub mod funcinfo {
    /// Code address.
    pub const CODE: i32 = 0;
    /// Constants address.
    pub const CONSTS: i32 = 8;
    /// Local slot count.
    pub const NLOCALS: i32 = 16;
    /// Frame size (locals + max operand stack), in slots.
    pub const FRAME: i32 = 24;
    /// Record stride.
    pub const STRIDE: u64 = 32;
}

/// Call-info record offsets.
pub mod callinfo {
    /// Saved VM pc.
    pub const RET_PC: i32 = 0;
    /// Saved locals base.
    pub const RET_LOCALS: i32 = 8;
    /// Saved constants base.
    pub const RET_CONSTS: i32 = 16;
    /// Frame stride.
    pub const STRIDE: u64 = 32;
}

/// Memory map (same skeleton as `luart`, 8-byte value slots).
pub mod map {
    /// Interpreter text.
    pub const TEXT_BASE: u64 = 0x0001_0000;
    /// Static data.
    pub const DATA_BASE: u64 = 0x0040_0000;
    /// Combined locals + operand stack.
    pub const STACK_BASE: u64 = 0x0100_0000;
    /// Stack limit.
    pub const STACK_LIMIT: u64 = 0x017f_0000;
    /// CallInfo stack.
    pub const CI_BASE: u64 = 0x0180_0000;
    /// CallInfo limit.
    pub const CI_LIMIT: u64 = 0x01a0_0000;
    /// Heap.
    pub const HEAP_BASE: u64 = 0x0200_0000;
    /// Heap limit.
    pub const HEAP_LIMIT: u64 = 0x0800_0000;
}

/// SPR settings per paper Table 4 (SpiderMonkey column): NaN detection on,
/// shift 47, mask 0x0f — plus overflow detection (Section 7.1: a
/// co-located tag requires it).
pub fn spr_settings() -> SprState {
    SprState::spidermonkey()
}

/// TRT contents (Table 5): Int/Double rules for the polymorphic ops plus
/// Object-Int (both orders) for `tchk`. Exactly 8 rules.
pub fn trt_rules() -> Vec<TrtRule> {
    let mut rules = Vec::new();
    for class in [TrtClass::Xadd, TrtClass::Xsub, TrtClass::Xmul] {
        rules.push(TrtRule::new(class, tag::INT, tag::INT, tag::INT));
        rules.push(TrtRule::new(class, DOUBLE_TAG, DOUBLE_TAG, DOUBLE_TAG));
    }
    rules.push(TrtRule::new(TrtClass::Tchk, tag::OBJECT, tag::INT, tag::OBJECT));
    rules.push(TrtRule::new(TrtClass::Tchk, tag::INT, tag::OBJECT, tag::OBJECT));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_testkit::Rng;

    #[test]
    fn int_boxing_roundtrip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 123456] {
            let b = box_int(v);
            assert!(is_boxed(b));
            assert_eq!(tag_of(b), tag::INT);
            assert_eq!(payload_of(b), v as i64, "{v}");
        }
    }

    #[test]
    fn doubles_are_never_boxed() {
        for v in [0.0f64, -1.5, 1e300, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!is_boxed(v.to_bits()), "{v}");
        }
        // Canonical (RISC-V) NaN is positive: not boxed.
        assert!(!is_boxed(0x7ff8_0000_0000_0000));
    }

    #[test]
    fn chk_bytes_are_unique() {
        let tags = [tag::INT, tag::UNDEF, tag::BOOL, tag::OBJECT, tag::STR];
        let mut bytes: Vec<u8> = tags.iter().map(|t| chk_byte(*t)).collect();
        bytes.sort_unstable();
        bytes.dedup();
        assert_eq!(bytes.len(), tags.len(), "chk bytes must discriminate tags");
        // And byte 6 of a boxed value equals chk_byte(tag).
        for t in tags {
            let b = boxed(t, 42);
            assert_eq!((b >> 48) as u8, chk_byte(t));
        }
    }

    #[test]
    fn undefined_value() {
        assert!(is_boxed(UNDEFINED));
        assert_eq!(tag_of(UNDEFINED), tag::UNDEF);
        assert_eq!(payload_of(UNDEFINED), 0);
    }

    #[test]
    fn trt_fits_8_entries() {
        assert_eq!(trt_rules().len(), 8);
        let s = spr_settings();
        assert!(s.nan_detect());
        assert!(s.overflow_detect());
        assert_eq!(s.shift, 47);
        assert_eq!(s.mask, 0x0f);
    }

    #[test]
    fn randomized_box_payload_roundtrip() {
        let mut rng = Rng::new(0xb0c5);
        for _ in 0..4096 {
            let v = rng.i32();
            assert_eq!(payload_of(box_int(v)), v as i64, "{v}");
        }
    }

    #[test]
    fn randomized_hardware_extraction_matches() {
        // The core's tag datapath must agree with this module.
        let mut rng = Rng::new(0xb0c6);
        for _ in 0..4096 {
            let v = rng.i32();
            let spr = spr_settings();
            let entry = spr.extract(box_int(v), 0);
            assert_eq!(entry.t, tag::INT, "{v}");
            assert_eq!(entry.v as i64, v as i64);
            assert!(!entry.f);
        }
    }
}
