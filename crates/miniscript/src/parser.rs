//! Recursive-descent parser for MiniScript.

use crate::ast::*;
use crate::token::{tokenize, LexError, SpannedToken, Token};
use std::error::Error;
use std::fmt;

/// Parse error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 = end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { line: e.line, message: e.message }
    }
}

/// Parses MiniScript source into a [`Chunk`].
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors.
///
/// # Examples
///
/// ```
/// let chunk = miniscript::parse("
///     function add(a, b) return a + b end
///     print(add(1, 2))
/// ")?;
/// assert_eq!(chunk.functions.len(), 1);
/// assert_eq!(chunk.main.len(), 1);
/// # Ok::<(), miniscript::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Chunk, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.chunk()
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).map_or_else(
            || self.tokens.last().map_or(0, |t| t.line),
            |t| t.line,
        )
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Name(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    fn chunk(&mut self) -> Result<Chunk, ParseError> {
        let mut chunk = Chunk::default();
        while self.peek().is_some() {
            if self.eat(&Token::Function) {
                let name = self.name()?;
                self.expect(&Token::LParen)?;
                let mut params = Vec::new();
                if !self.eat(&Token::RParen) {
                    loop {
                        params.push(self.name()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                let body = self.block(&[Token::End])?;
                self.expect(&Token::End)?;
                chunk.functions.push(Function { name, params, body });
            } else {
                chunk.main.push(self.statement()?);
            }
        }
        Ok(chunk)
    }

    fn block(&mut self, terminators: &[Token]) -> Result<Block, ParseError> {
        let mut stats = Vec::new();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(format!("unexpected end of input, expected one of {terminators:?}")))
                }
                Some(t) if terminators.contains(t) => return Ok(stats),
                _ => stats.push(self.statement()?),
            }
        }
    }

    fn statement(&mut self) -> Result<Stat, ParseError> {
        match self.peek() {
            Some(Token::Semicolon) => {
                self.pos += 1;
                self.statement()
            }
            Some(Token::Local) => {
                self.pos += 1;
                let name = self.name()?;
                let init = if self.eat(&Token::Assign) { Some(self.expr()?) } else { None };
                Ok(Stat::Local { name, init })
            }
            Some(Token::If) => {
                self.pos += 1;
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(&Token::Then)?;
                let body = self.block(&[Token::Elseif, Token::Else, Token::End])?;
                arms.push((cond, body));
                let mut else_body = None;
                loop {
                    if self.eat(&Token::Elseif) {
                        let c = self.expr()?;
                        self.expect(&Token::Then)?;
                        let b = self.block(&[Token::Elseif, Token::Else, Token::End])?;
                        arms.push((c, b));
                    } else if self.eat(&Token::Else) {
                        else_body = Some(self.block(&[Token::End])?);
                        self.expect(&Token::End)?;
                        break;
                    } else {
                        self.expect(&Token::End)?;
                        break;
                    }
                }
                Ok(Stat::If { arms, else_body })
            }
            Some(Token::While) => {
                self.pos += 1;
                let cond = self.expr()?;
                self.expect(&Token::Do)?;
                let body = self.block(&[Token::End])?;
                self.expect(&Token::End)?;
                Ok(Stat::While { cond, body })
            }
            Some(Token::For) => {
                self.pos += 1;
                let var = self.name()?;
                self.expect(&Token::Assign)?;
                let start = self.expr()?;
                self.expect(&Token::Comma)?;
                let stop = self.expr()?;
                let step = if self.eat(&Token::Comma) { Some(self.expr()?) } else { None };
                self.expect(&Token::Do)?;
                let body = self.block(&[Token::End])?;
                self.expect(&Token::End)?;
                Ok(Stat::NumericFor { var, start, stop, step, body })
            }
            Some(Token::Return) => {
                self.pos += 1;
                let value = match self.peek() {
                    None | Some(Token::End) | Some(Token::Else) | Some(Token::Elseif) => None,
                    _ => Some(self.expr()?),
                };
                Ok(Stat::Return(value))
            }
            Some(Token::Break) => {
                self.pos += 1;
                Ok(Stat::Break)
            }
            Some(Token::Do) => {
                self.pos += 1;
                let body = self.block(&[Token::End])?;
                self.expect(&Token::End)?;
                Ok(Stat::Do(body))
            }
            _ => {
                // Assignment or call statement.
                let e = self.suffixed_expr()?;
                if self.eat(&Token::Assign) {
                    let value = self.expr()?;
                    let target = match e {
                        Expr::Var(name) => Target::Name(name),
                        Expr::Index { table, key } => Target::Index { table: *table, key: *key },
                        other => {
                            return Err(self.err(format!("cannot assign to {other:?}")))
                        }
                    };
                    Ok(Stat::Assign { target, value })
                } else {
                    match e {
                        Expr::Call { .. } => Ok(Stat::ExprStat(e)),
                        other => Err(self.err(format!("expected a statement, found expression {other:?}"))),
                    }
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.concat_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::NotEq) => BinOp::Ne,
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.concat_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn concat_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        if self.eat(&Token::Concat) {
            // Right-associative, like Lua.
            let rhs = self.concat_expr()?;
            Ok(Expr::Binary { op: BinOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::DoubleSlash) => BinOp::IDiv,
                Some(Token::Percent) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Token::Minus) => Some(UnOp::Neg),
            Some(Token::Not) => Some(UnOp::Not),
            Some(Token::Hash) => Some(UnOp::Len),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let expr = self.unary_expr()?;
            // Constant-fold negative literals so `-5` is an Int literal.
            if op == UnOp::Neg {
                match expr {
                    Expr::Int(v) => return Ok(Expr::Int(v.wrapping_neg())),
                    Expr::Float(v) => return Ok(Expr::Float(-v)),
                    _ => {}
                }
            }
            Ok(Expr::Unary { op, expr: Box::new(expr) })
        } else {
            self.suffixed_expr()
        }
    }

    fn suffixed_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let key = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    e = Expr::Index { table: Box::new(e), key: Box::new(key) };
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                    let field = self.name()?;
                    e = Expr::Index { table: Box::new(e), key: Box::new(Expr::Str(field)) };
                }
                Some(Token::LParen) => {
                    let func = match e {
                        Expr::Var(name) => name,
                        other => {
                            return Err(
                                self.err(format!("only named functions can be called, found {other:?}"))
                            )
                        }
                    };
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    e = Expr::Call { func, args };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token::Nil) => Ok(Expr::Nil),
            Some(Token::True) => Ok(Expr::Bool(true)),
            Some(Token::False) => Ok(Expr::Bool(false)),
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Float(v)) => Ok(Expr::Float(v)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Name(n)) => Ok(Expr::Var(n)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBrace) => {
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Expr::Table(items))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected an expression, found {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_and_associativity() {
        let c = parse("x = 1 + 2 * 3").unwrap();
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        // 1 + (2*3)
        assert_eq!(
            *value,
            Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Int(2)),
                    rhs: Box::new(Expr::Int(3)),
                }),
            }
        );
    }

    #[test]
    fn comparison_binds_looser_than_arith() {
        let c = parse("x = a + 1 < b * 2").unwrap();
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        assert!(matches!(value, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn concat_right_associative() {
        let c = parse(r#"x = "a" .. "b" .. "c""#).unwrap();
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        let Expr::Binary { op: BinOp::Concat, rhs, .. } = value else { panic!() };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Concat, .. }));
    }

    #[test]
    fn negative_literal_folding() {
        let c = parse("x = -5").unwrap();
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        assert_eq!(*value, Expr::Int(-5));
    }

    #[test]
    fn dotted_field_is_string_index() {
        let c = parse("x = body.vx").unwrap();
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        let Expr::Index { key, .. } = value else { panic!() };
        assert_eq!(**key, Expr::Str("vx".into()));
    }

    #[test]
    fn full_control_flow() {
        let src = "
            function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            local total = 0
            for i = 1, 10 do
                total = total + fib(i)
            end
            while total > 100 do
                total = total - 100
                if total == 50 then break end
            end
            print(total)
        ";
        let c = parse(src).unwrap();
        assert_eq!(c.functions.len(), 1);
        assert_eq!(c.functions[0].params, vec!["n"]);
        assert_eq!(c.main.len(), 4);
    }

    #[test]
    fn table_constructor_and_indexing() {
        let c = parse("t = {1, 2, 3} t[4] = t[1] + #t").unwrap();
        assert_eq!(c.main.len(), 2);
        let Stat::Assign { value, .. } = &c.main[0] else { panic!() };
        assert_eq!(*value, Expr::Table(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)]));
    }

    #[test]
    fn errors_have_lines() {
        let e = parse("x = 1\ny = ").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("if x then").unwrap_err();
        assert!(e.message.contains("unexpected end"));
    }

    #[test]
    fn statement_must_be_call_or_assign() {
        assert!(parse("1 + 2").is_err());
        assert!(parse("f(1)").is_ok());
    }
}
