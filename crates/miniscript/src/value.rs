//! Runtime values of the reference interpreter, plus the *shared*
//! number/value formatting used by every engine's `print`, so that
//! differential tests can require byte-identical output across the
//! reference interpreter, `luart` and `jsrt`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A MiniScript value in the reference interpreter.
#[derive(Debug, Clone)]
pub enum Value {
    /// `nil`.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (Lua 5.3's integer subtype).
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Immutable interned string.
    Str(Rc<str>),
    /// Mutable table (array part + hash part).
    Table(Rc<RefCell<Table>>),
}

impl Value {
    /// Lua truthiness: everything but `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The value's type name (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
        }
    }

    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates an empty table value.
    pub fn table() -> Value {
        Value::Table(Rc::new(RefCell::new(Table::default())))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A table key: integers and strings (floats with integral value normalize
/// to integers, like Lua 5.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Rc<str>),
}

/// A table: dense 1-based array part plus a hash part.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Dense array part (`t[1]..t[#t]`).
    pub arr: Vec<Value>,
    /// Hash part for string and sparse integer keys.
    pub map: HashMap<Key, Value>,
}

impl Table {
    /// Reads `t[key]`.
    pub fn get(&self, key: &Key) -> Value {
        if let Key::Int(i) = key {
            let idx = *i;
            if idx >= 1 && (idx as usize) <= self.arr.len() {
                return self.arr[idx as usize - 1].clone();
            }
        }
        self.map.get(key).cloned().unwrap_or(Value::Nil)
    }

    /// Writes `t[key] = value`, growing the array part when appending.
    pub fn set(&mut self, key: Key, value: Value) {
        if let Key::Int(i) = key {
            let idx = i;
            if idx >= 1 && (idx as usize) <= self.arr.len() {
                self.arr[idx as usize - 1] = value;
                return;
            }
            if idx as usize == self.arr.len() + 1 {
                self.arr.push(value);
                // Absorb any queued successors from the hash part.
                let mut next = self.arr.len() as i64 + 1;
                while let Some(v) = self.map.remove(&Key::Int(next)) {
                    self.arr.push(v);
                    next += 1;
                }
                return;
            }
        }
        if matches!(value, Value::Nil) {
            self.map.remove(&key);
        } else {
            self.map.insert(key, value);
        }
    }

    /// The `#t` border: length of the dense array part.
    pub fn len(&self) -> i64 {
        self.arr.len() as i64
    }

    /// Whether both parts are empty.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty() && self.map.is_empty()
    }
}

/// Formats a float exactly as every engine's `print` does.
///
/// Integral doubles within the 2⁵³ exact range print without a decimal
/// point, which makes output comparable between the integer-subtype engine
/// (`luart`) and the all-doubles engine (`jsrt`). Other values use Rust's
/// shortest round-trip formatting.
///
/// # Examples
///
/// ```
/// use miniscript::format_float;
/// assert_eq!(format_float(3.0), "3");
/// assert_eq!(format_float(2.5), "2.5");
/// assert_eq!(format_float(-0.0), "0");
/// ```
pub fn format_float(f: f64) -> String {
    if f == f.trunc() && f.abs() < 9_007_199_254_740_992.0 {
        format!("{}", f as i64)
    } else if f.is_finite() && f != 0.0 && f.abs() >= 1e17 {
        // Large magnitudes use scientific notation instead of Rust's full
        // decimal expansion.
        format!("{f:e}")
    } else {
        format!("{f}")
    }
}

/// Formats a value exactly as every engine's `print` does.
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Nil => "nil".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_float(*f),
        Value::Str(s) => s.to_string(),
        Value::Table(_) => "table".to_string(),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_value(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_array_and_hash_parts() {
        let mut t = Table::default();
        t.set(Key::Int(1), Value::Int(10));
        t.set(Key::Int(2), Value::Int(20));
        t.set(Key::Str(Rc::from("x")), Value::Int(30));
        assert_eq!(t.get(&Key::Int(1)), Value::Int(10));
        assert_eq!(t.get(&Key::Str(Rc::from("x"))), Value::Int(30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Key::Int(9)), Value::Nil);
    }

    #[test]
    fn sparse_then_dense_absorption() {
        let mut t = Table::default();
        t.set(Key::Int(2), Value::Int(2)); // sparse → hash part
        assert_eq!(t.len(), 0);
        t.set(Key::Int(1), Value::Int(1)); // append absorbs key 2
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Key::Int(2)), Value::Int(2));
    }

    #[test]
    fn numeric_equality_across_subtypes() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::Int(0), Value::Nil);
        assert_ne!(Value::str("3"), Value::Int(3));
    }

    #[test]
    fn tables_compare_by_identity() {
        let t = Value::table();
        assert_eq!(t, t.clone());
        assert_ne!(Value::table(), Value::table());
    }

    #[test]
    fn float_formatting_rules() {
        assert_eq!(format_float(832040.0), "832040");
        assert_eq!(format_float(0.1), "0.1");
        assert_eq!(format_float(1e300), "1e300");
        assert_eq!(format_float(f64::INFINITY), "inf");
        assert_eq!(format_value(&Value::Nil), "nil");
        assert_eq!(format_value(&Value::Bool(true)), "true");
    }
}
