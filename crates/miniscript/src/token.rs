//! Lexer for MiniScript.
//!
//! MiniScript is the small Lua-flavoured dynamic language used to express
//! the paper's benchmark programs once, then compile them to *both*
//! scripting engines (the register VM `luart` and the stack VM `jsrt`).

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals and names.
    Int(i64),
    Float(f64),
    Str(String),
    Name(String),
    // Keywords.
    And,
    Break,
    Do,
    Else,
    Elseif,
    End,
    False,
    For,
    Function,
    If,
    Local,
    Nil,
    Not,
    Or,
    Return,
    Then,
    True,
    While,
    // Symbols.
    Plus,
    Minus,
    Star,
    Slash,
    DoubleSlash,
    Percent,
    Caret,
    Hash,
    Eq,
    NotEq,
    Le,
    Ge,
    Lt,
    Gt,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Concat,
    Semicolon,
}

impl Token {
    /// Keyword lookup.
    fn keyword(name: &str) -> Option<Token> {
        let t = match name {
            "and" => Token::And,
            "break" => Token::Break,
            "do" => Token::Do,
            "else" => Token::Else,
            "elseif" => Token::Elseif,
            "end" => Token::End,
            "false" => Token::False,
            "for" => Token::For,
            "function" => Token::Function,
            "if" => Token::If,
            "local" => Token::Local,
            "nil" => Token::Nil,
            "not" => Token::Not,
            "or" => Token::Or,
            "return" => Token::Return,
            "then" => Token::Then,
            "true" => Token::True,
            "while" => Token::While,
            _ => return None,
        };
        Some(t)
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Lexical error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

/// Tokenizes MiniScript source.
///
/// # Errors
///
/// Returns [`LexError`] on malformed numbers, unterminated strings, or
/// unexpected characters.
///
/// # Examples
///
/// ```
/// use miniscript::token::{tokenize, Token};
/// let toks = tokenize("local x = 1 + 2.5 -- comment\n")?;
/// assert_eq!(toks[0].token, Token::Local);
/// assert_eq!(toks[3].token, Token::Int(1));
/// assert_eq!(toks[5].token, Token::Float(2.5));
/// # Ok::<(), miniscript::token::LexError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let err = |line: usize, message: String| LexError { line, message };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                let token = if is_float {
                    Token::Float(
                        text.parse().map_err(|e| err(line, format!("bad number `{text}`: {e}")))?,
                    )
                } else {
                    Token::Int(
                        text.parse().map_err(|e| err(line, format!("bad number `{text}`: {e}")))?,
                    )
                };
                tokens.push(SpannedToken { token, line });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let name = &source[start..i];
                let token =
                    Token::keyword(name).unwrap_or_else(|| Token::Name(name.to_string()));
                tokens.push(SpannedToken { token, line });
            }
            '"' | '\'' => {
                let quote = bytes[i];
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        return Err(err(line, "unterminated string".into()));
                    }
                    if bytes[i] == quote {
                        i += 1;
                        break;
                    }
                    if bytes[i] == b'\\' {
                        i += 1;
                        if i >= bytes.len() {
                            return Err(err(line, "unterminated escape".into()));
                        }
                        let e = bytes[i] as char;
                        s.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '\\' => '\\',
                            '"' => '"',
                            '\'' => '\'',
                            '0' => '\0',
                            other => {
                                return Err(err(line, format!("unknown escape `\\{other}`")))
                            }
                        });
                        i += 1;
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(SpannedToken { token: Token::Str(s), line });
            }
            _ => {
                let (token, advance) = match c {
                    '+' => (Token::Plus, 1),
                    '-' => (Token::Minus, 1),
                    '*' => (Token::Star, 1),
                    '/' if bytes.get(i + 1) == Some(&b'/') => (Token::DoubleSlash, 2),
                    '/' => (Token::Slash, 1),
                    '%' => (Token::Percent, 1),
                    '^' => (Token::Caret, 1),
                    '#' => (Token::Hash, 1),
                    '=' if bytes.get(i + 1) == Some(&b'=') => (Token::Eq, 2),
                    '=' => (Token::Assign, 1),
                    '~' if bytes.get(i + 1) == Some(&b'=') => (Token::NotEq, 2),
                    '<' if bytes.get(i + 1) == Some(&b'=') => (Token::Le, 2),
                    '<' => (Token::Lt, 1),
                    '>' if bytes.get(i + 1) == Some(&b'=') => (Token::Ge, 2),
                    '>' => (Token::Gt, 1),
                    '(' => (Token::LParen, 1),
                    ')' => (Token::RParen, 1),
                    '{' => (Token::LBrace, 1),
                    '}' => (Token::RBrace, 1),
                    '[' => (Token::LBracket, 1),
                    ']' => (Token::RBracket, 1),
                    ',' => (Token::Comma, 1),
                    '.' if bytes.get(i + 1) == Some(&b'.') => (Token::Concat, 2),
                    '.' => (Token::Dot, 1),
                    ';' => (Token::Semicolon, 1),
                    other => return Err(err(line, format!("unexpected character `{other}`"))),
                };
                tokens.push(SpannedToken { token, line });
                i += advance;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn numbers_int_float_exp() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn dotted_name_is_not_float() {
        assert_eq!(
            toks("t.x"),
            vec![Token::Name("t".into()), Token::Dot, Token::Name("x".into())]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Token::Str("a\nb".into())]);
        assert_eq!(toks("'q'"), vec![Token::Str("q".into())]);
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("== ~= <= >= .. //"),
            vec![Token::Eq, Token::NotEq, Token::Le, Token::Ge, Token::Concat, Token::DoubleSlash]
        );
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(toks("while whilex"), vec![Token::While, Token::Name("whilex".into())]);
    }

    #[test]
    fn comments_and_lines() {
        let t = tokenize("x -- cmt\ny").unwrap();
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn unexpected_character_errors() {
        let e = tokenize("a ? b").unwrap_err();
        assert!(e.message.contains('?'));
    }
}
