//! Tree-walking reference interpreter.
//!
//! This is the semantic oracle for the two simulated scripting engines:
//! every benchmark runs under this interpreter and under
//! `luart`/`jsrt` × {baseline, checked-load, typed}, and all printed
//! outputs must match byte-for-byte (see the workspace integration tests).
//!
//! Semantics follow Lua 5.3 where the engines do: an integer subtype with
//! wrapping 64-bit arithmetic, float contagion, `/` always float, `//` and
//! `%` floor-based, string→number coercion in arithmetic (Figure 1(a) of
//! the paper relies on it), 1-based strings and tables.

use crate::ast::*;
use crate::value::{format_value, Key, Table, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Runtime error raised by the reference interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
}

impl RuntimeError {
    fn new(message: impl Into<String>) -> RuntimeError {
        RuntimeError { message: message.into() }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl Error for RuntimeError {}

enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// The reference interpreter.
///
/// # Examples
///
/// ```
/// use miniscript::{parse, Interp};
/// let chunk = parse("print(2 + 3 * 4)")?;
/// let mut interp = Interp::new();
/// interp.run(&chunk)?;
/// assert_eq!(interp.output(), "14\n");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Interp {
    globals: HashMap<String, Value>,
    output: String,
    steps: u64,
    step_limit: u64,
}

impl Default for Interp {
    fn default() -> Interp {
        Interp::new()
    }
}

impl Interp {
    /// Creates an interpreter with the default step limit (500 M).
    pub fn new() -> Interp {
        Interp { globals: HashMap::new(), output: String::new(), steps: 0, step_limit: 500_000_000 }
    }

    /// Caps the number of evaluated AST nodes (guards runaway tests).
    pub fn with_step_limit(limit: u64) -> Interp {
        Interp { step_limit: limit, ..Interp::new() }
    }

    /// Everything printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Runs a parsed chunk to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on type errors, unknown names, or when the
    /// step limit is exceeded.
    pub fn run(&mut self, chunk: &Chunk) -> Result<(), RuntimeError> {
        let mut scope = Scope::new();
        match self.exec_block(chunk, &chunk.main, &mut scope)? {
            Flow::Normal | Flow::Return(_) => Ok(()),
            Flow::Break => Err(RuntimeError::new("break outside a loop")),
        }
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            Err(RuntimeError::new("step limit exceeded"))
        } else {
            Ok(())
        }
    }

    fn exec_block(
        &mut self,
        chunk: &Chunk,
        block: &Block,
        scope: &mut Scope,
    ) -> Result<Flow, RuntimeError> {
        scope.push();
        let flow = self.exec_block_flat(chunk, block, scope);
        scope.pop();
        flow
    }

    fn exec_block_flat(
        &mut self,
        chunk: &Chunk,
        block: &Block,
        scope: &mut Scope,
    ) -> Result<Flow, RuntimeError> {
        for stat in block {
            match self.exec_stat(chunk, stat, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stat(
        &mut self,
        chunk: &Chunk,
        stat: &Stat,
        scope: &mut Scope,
    ) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match stat {
            Stat::Local { name, init } => {
                let v = match init {
                    Some(e) => self.eval(chunk, e, scope)?,
                    None => Value::Nil,
                };
                scope.declare(name, v);
                Ok(Flow::Normal)
            }
            Stat::Assign { target, value } => {
                let v = self.eval(chunk, value, scope)?;
                match target {
                    Target::Name(name) => {
                        if !scope.assign(name, v.clone()) {
                            self.globals.insert(name.clone(), v);
                        }
                    }
                    Target::Index { table, key } => {
                        let t = self.eval(chunk, table, scope)?;
                        let k = self.eval(chunk, key, scope)?;
                        let key = to_key(&k)?;
                        match t {
                            Value::Table(t) => t.borrow_mut().set(key, v),
                            other => {
                                return Err(RuntimeError::new(format!(
                                    "attempt to index a {} value",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stat::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval(chunk, cond, scope)?.truthy() {
                        return self.exec_block(chunk, body, scope);
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(chunk, body, scope);
                }
                Ok(Flow::Normal)
            }
            Stat::While { cond, body } => {
                while self.eval(chunk, cond, scope)?.truthy() {
                    self.tick()?;
                    match self.exec_block(chunk, body, scope)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stat::NumericFor { var, start, stop, step, body } => {
                let start = self.eval(chunk, start, scope)?;
                let stop = self.eval(chunk, stop, scope)?;
                let step = match step {
                    Some(e) => self.eval(chunk, e, scope)?,
                    None => Value::Int(1),
                };
                self.numeric_for(chunk, var, start, stop, step, body, scope)
            }
            Stat::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(chunk, e, scope)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stat::Break => Ok(Flow::Break),
            Stat::ExprStat(e) => {
                self.eval(chunk, e, scope)?;
                Ok(Flow::Normal)
            }
            Stat::Do(body) => self.exec_block(chunk, body, scope),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn numeric_for(
        &mut self,
        chunk: &Chunk,
        var: &str,
        start: Value,
        stop: Value,
        step: Value,
        body: &Block,
        scope: &mut Scope,
    ) -> Result<Flow, RuntimeError> {
        let all_int = matches!(
            (&start, &stop, &step),
            (Value::Int(_), Value::Int(_), Value::Int(_))
        );
        if all_int {
            let (Value::Int(mut i), Value::Int(stop), Value::Int(step)) = (start, stop, step)
            else {
                unreachable!()
            };
            if step == 0 {
                return Err(RuntimeError::new("'for' step is zero"));
            }
            loop {
                if (step > 0 && i > stop) || (step < 0 && i < stop) {
                    break;
                }
                self.tick()?;
                scope.push();
                scope.declare(var, Value::Int(i));
                let flow = self.exec_block_flat(chunk, body, scope);
                scope.pop();
                match flow? {
                    Flow::Normal => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
                match i.checked_add(step) {
                    Some(n) => i = n,
                    None => break,
                }
            }
        } else {
            let mut i = to_float(&start)?;
            let stop = to_float(&stop)?;
            let step = to_float(&step)?;
            if step == 0.0 {
                return Err(RuntimeError::new("'for' step is zero"));
            }
            loop {
                if (step > 0.0 && i > stop) || (step < 0.0 && i < stop) {
                    break;
                }
                self.tick()?;
                scope.push();
                scope.declare(var, Value::Float(i));
                let flow = self.exec_block_flat(chunk, body, scope);
                scope.pop();
                match flow? {
                    Flow::Normal => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
                i += step;
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(&mut self, chunk: &Chunk, e: &Expr, scope: &mut Scope) -> Result<Value, RuntimeError> {
        self.tick()?;
        match e {
            Expr::Nil => Ok(Value::Nil),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Var(name) => Ok(scope
                .lookup(name)
                .or_else(|| self.globals.get(name).cloned())
                .unwrap_or(Value::Nil)),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(chunk, lhs, scope)?;
                let b = self.eval(chunk, rhs, scope)?;
                binary_op(*op, a, b)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(chunk, expr, scope)?;
                unary_op(*op, v)
            }
            Expr::And(l, r) => {
                let a = self.eval(chunk, l, scope)?;
                if a.truthy() {
                    self.eval(chunk, r, scope)
                } else {
                    Ok(a)
                }
            }
            Expr::Or(l, r) => {
                let a = self.eval(chunk, l, scope)?;
                if a.truthy() {
                    Ok(a)
                } else {
                    self.eval(chunk, r, scope)
                }
            }
            Expr::Index { table, key } => {
                let t = self.eval(chunk, table, scope)?;
                let k = self.eval(chunk, key, scope)?;
                match t {
                    Value::Table(t) => Ok(t.borrow().get(&to_key(&k)?)),
                    other => Err(RuntimeError::new(format!(
                        "attempt to index a {} value",
                        other.type_name()
                    ))),
                }
            }
            Expr::Call { func, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(chunk, a, scope)?);
                }
                self.call(chunk, func, argv)
            }
            Expr::Table(items) => {
                let mut t = Table::default();
                for item in items {
                    let v = self.eval(chunk, item, scope)?;
                    t.arr.push(v);
                }
                Ok(Value::Table(Rc::new(std::cell::RefCell::new(t))))
            }
        }
    }

    fn call(&mut self, chunk: &Chunk, func: &str, args: Vec<Value>) -> Result<Value, RuntimeError> {
        if let Some(f) = chunk.function(func) {
            if args.len() != f.params.len() {
                return Err(RuntimeError::new(format!(
                    "function `{func}` expects {} arguments, got {}",
                    f.params.len(),
                    args.len()
                )));
            }
            let mut scope = Scope::new();
            scope.push();
            for (p, a) in f.params.iter().zip(args) {
                scope.declare(p, a);
            }
            let flow = self.exec_block_flat(chunk, &f.body, &mut scope)?;
            return Ok(match flow {
                Flow::Return(v) => v,
                _ => Value::Nil,
            });
        }
        self.builtin(func, args)
    }

    fn builtin(&mut self, func: &str, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let arg = |i: usize| -> Value { args.get(i).cloned().unwrap_or(Value::Nil) };
        match func {
            "print" => {
                let line =
                    args.iter().map(format_value).collect::<Vec<_>>().join("\t");
                self.output.push_str(&line);
                self.output.push('\n');
                Ok(Value::Nil)
            }
            "write" => {
                for a in &args {
                    self.output.push_str(&format_value(a));
                }
                Ok(Value::Nil)
            }
            "clock" => Ok(Value::Float(0.0)),
            "floor" => match arg(0) {
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Int(f.floor() as i64)),
                other => Err(bad_arg("floor", &other)),
            },
            "sqrt" => Ok(Value::Float(to_float(&arg(0))?.sqrt())),
            "abs" => match arg(0) {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(bad_arg("abs", &other)),
            },
            "min" | "max" => {
                let a = arg(0);
                let b = arg(1);
                let fa = to_float(&a)?;
                let fb = to_float(&b)?;
                let take_a = if func == "min" { fa <= fb } else { fa >= fb };
                Ok(if take_a { a } else { b })
            }
            "tostring" => Ok(Value::str(format_value(&arg(0)))),
            "sub" => {
                let Value::Str(s) = arg(0) else { return Err(bad_arg("sub", &arg(0))) };
                let i = to_int(&arg(1))?;
                let j = match arg(2) {
                    Value::Nil => -1,
                    v => to_int(&v)?,
                };
                Ok(Value::str(string_sub(&s, i, j)))
            }
            "len" => match arg(0) {
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                Value::Table(t) => Ok(Value::Int(t.borrow().len())),
                other => Err(bad_arg("len", &other)),
            },
            "char" => {
                let c = to_int(&arg(0))?;
                let c = u8::try_from(c)
                    .map_err(|_| RuntimeError::new(format!("char: {c} out of range")))?;
                Ok(Value::str((c as char).to_string()))
            }
            "byte" => {
                let Value::Str(s) = arg(0) else { return Err(bad_arg("byte", &arg(0))) };
                let i = match arg(1) {
                    Value::Nil => 1,
                    v => to_int(&v)?,
                };
                let idx = i.checked_sub(1).filter(|v| *v >= 0).map(|v| v as usize);
                match idx.and_then(|i| s.as_bytes().get(i)) {
                    Some(b) => Ok(Value::Int(*b as i64)),
                    None => Ok(Value::Nil),
                }
            }
            "insert" => {
                let Value::Table(t) = arg(0) else { return Err(bad_arg("insert", &arg(0))) };
                t.borrow_mut().arr.push(arg(1));
                Ok(Value::Nil)
            }
            other => Err(RuntimeError::new(format!("unknown function `{other}`"))),
        }
    }
}

fn bad_arg(func: &str, v: &Value) -> RuntimeError {
    RuntimeError::new(format!("bad argument to `{func}` ({} value)", v.type_name()))
}

struct Scope {
    scopes: Vec<Vec<(String, Value)>>,
}

impl Scope {
    fn new() -> Scope {
        Scope { scopes: Vec::new() }
    }

    fn push(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes.last_mut().expect("scope stack is never empty").push((name.to_string(), v));
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            for (n, v) in scope.iter().rev() {
                if n == name {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    fn assign(&mut self, name: &str, v: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            for (n, slot) in scope.iter_mut().rev() {
                if n == name {
                    *slot = v;
                    return true;
                }
            }
        }
        false
    }
}

/// 1-based inclusive substring with Lua's negative-index convention.
pub fn string_sub(s: &str, i: i64, j: i64) -> String {
    let len = s.len() as i64;
    let norm = |v: i64, default_low: bool| -> i64 {
        if v >= 0 {
            v
        } else if -v > len && default_low {
            1
        } else {
            len + v + 1
        }
    };
    let start = norm(i, true).max(1);
    let stop = norm(j, false).min(len);
    if start > stop {
        return String::new();
    }
    s[(start - 1) as usize..stop as usize].to_string()
}

fn to_key(v: &Value) -> Result<Key, RuntimeError> {
    match v {
        Value::Int(i) => Ok(Key::Int(*i)),
        Value::Float(f) if *f == f.trunc() && f.is_finite() => Ok(Key::Int(*f as i64)),
        Value::Str(s) => Ok(Key::Str(s.clone())),
        other => Err(RuntimeError::new(format!("invalid table key ({} value)", other.type_name()))),
    }
}

fn to_float(v: &Value) -> Result<f64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        Value::Str(s) => s
            .trim()
            .parse::<f64>()
            .map_err(|_| RuntimeError::new(format!("cannot convert `{s}` to a number"))),
        other => Err(RuntimeError::new(format!(
            "attempt to perform arithmetic on a {} value",
            other.type_name()
        ))),
    }
}

fn to_int(v: &Value) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::Float(f) if *f == f.trunc() => Ok(*f as i64),
        other => Err(RuntimeError::new(format!(
            "expected an integer, got {} value",
            other.type_name()
        ))),
    }
}

/// Numeric pair after Lua's coercion rules: both ints, or both floats.
enum NumPair {
    Int(i64, i64),
    Float(f64, f64),
}

fn numeric_pair(a: &Value, b: &Value) -> Result<NumPair, RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(NumPair::Int(*x, *y)),
        _ => Ok(NumPair::Float(to_float(a)?, to_float(b)?)),
    }
}

/// Floor modulo on floats (Lua `%` semantics).
pub fn float_floor_mod(a: f64, b: f64) -> f64 {
    let r = a % b;
    if r != 0.0 && (r < 0.0) != (b < 0.0) {
        r + b
    } else {
        r
    }
}

/// Floor division on integers (Lua `//` semantics).
pub fn int_floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Floor modulo on integers (Lua `%` semantics).
pub fn int_floor_mod(a: i64, b: i64) -> i64 {
    a.wrapping_sub(int_floor_div(a, b).wrapping_mul(b))
}

fn binary_op(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let r = match numeric_pair(&a, &b)? {
                NumPair::Int(x, y) => Value::Int(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    _ => x.wrapping_mul(y),
                }),
                NumPair::Float(x, y) => Value::Float(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    _ => x * y,
                }),
            };
            Ok(r)
        }
        BinOp::Div => Ok(Value::Float(to_float(&a)? / to_float(&b)?)),
        BinOp::IDiv => match numeric_pair(&a, &b)? {
            NumPair::Int(x, y) => {
                if y == 0 {
                    Err(RuntimeError::new("attempt to perform 'n//0'"))
                } else {
                    Ok(Value::Int(int_floor_div(x, y)))
                }
            }
            NumPair::Float(x, y) => Ok(Value::Float((x / y).floor())),
        },
        BinOp::Mod => match numeric_pair(&a, &b)? {
            NumPair::Int(x, y) => {
                if y == 0 {
                    Err(RuntimeError::new("attempt to perform 'n%%0'"))
                } else {
                    Ok(Value::Int(int_floor_mod(x, y)))
                }
            }
            NumPair::Float(x, y) => Ok(Value::Float(float_floor_mod(x, y))),
        },
        BinOp::Concat => {
            let sa = concat_part(&a)?;
            let sb = concat_part(&b)?;
            Ok(Value::str(format!("{sa}{sb}")))
        }
        BinOp::Eq => Ok(Value::Bool(a == b)),
        BinOp::Ne => Ok(Value::Bool(a != b)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, &a, &b),
    }
}

fn concat_part(v: &Value) -> Result<String, RuntimeError> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Int(_) | Value::Float(_) => Ok(format_value(v)),
        other => {
            Err(RuntimeError::new(format!("attempt to concatenate a {} value", other.type_name())))
        }
    }
}

fn compare(op: BinOp, a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    let ord = match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            let x = to_float(a)?;
            let y = to_float(b)?;
            x.partial_cmp(&y).ok_or_else(|| RuntimeError::new("comparison with NaN"))?
        }
    };
    let r = match op {
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("compare called with non-comparison op"),
    };
    Ok(Value::Bool(r))
}

fn unary_op(op: UnOp, v: Value) -> Result<Value, RuntimeError> {
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Ok(Value::Float(-to_float(&other)?)),
        },
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
        UnOp::Len => match v {
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            Value::Table(t) => Ok(Value::Int(t.borrow().len())),
            other => {
                Err(RuntimeError::new(format!("attempt to get length of a {} value", other.type_name())))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> String {
        let chunk = parse(src).unwrap_or_else(|e| panic!("{e}"));
        let mut i = Interp::new();
        i.run(&chunk).unwrap_or_else(|e| panic!("{e}\n{src}"));
        i.output().to_string()
    }

    fn run_err(src: &str) -> RuntimeError {
        let chunk = parse(src).unwrap();
        let mut i = Interp::new();
        i.run(&chunk).unwrap_err()
    }

    #[test]
    fn arithmetic_subtyping() {
        assert_eq!(run("print(1 + 2)"), "3\n");
        assert_eq!(run("print(1 + 2.5)"), "3.5\n");
        assert_eq!(run("print(7 / 2)"), "3.5\n");
        assert_eq!(run("print(7 // 2)"), "3\n");
        assert_eq!(run("print(-7 // 2)"), "-4\n");
        assert_eq!(run("print(7 % 3)"), "1\n");
        assert_eq!(run("print(-7 % 3)"), "2\n"); // floor mod
        assert_eq!(run("print(7.5 % 2)"), "1.5\n");
        assert_eq!(run("print(2 * 3.0)"), "6\n"); // integral float prints as int
    }

    #[test]
    fn figure_1a_string_coercion() {
        // The paper's Figure 1(a) polymorphic add examples.
        assert_eq!(run("print(1 + 2)"), "3\n");
        assert_eq!(run("print(1 + 2.2)"), "3.2\n");
        assert_eq!(run("print(1.1 + 2.2)"), format!("{}\n", 1.1f64 + 2.2f64));
        assert_eq!(run("print(\"1\" + \"2\")"), "3\n"); // float 3.0 → "3"
        let e = run_err("print(\"a\" + \"b\")");
        assert!(e.message.contains("cannot convert"));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("print(1 < 2, 2 <= 2, 3 > 4, \"a\" < \"b\")"), "true\ttrue\tfalse\ttrue\n");
        assert_eq!(run("print(1 == 1.0, nil == false)"), "true\tfalse\n");
        assert_eq!(run("print(true and 1 or 2)"), "1\n");
        assert_eq!(run("print(false and 1 or 2)"), "2\n");
        assert_eq!(run("print(nil and 1)"), "nil\n");
    }

    #[test]
    fn tables_and_length() {
        assert_eq!(run("local t = {10, 20} t[3] = 30 print(t[1] + t[2] + t[3], #t)"), "60\t3\n");
        assert_eq!(run("local t = {} t[\"x\"] = 5 print(t.x, t.y)"), "5\tnil\n");
        assert_eq!(run("local t = {} t[2.0] = 9 print(t[2])"), "9\n"); // float key normalization
    }

    #[test]
    fn functions_and_recursion() {
        let src = "
            function fib(n)
                if n < 2 then return n end
                return fib(n-1) + fib(n-2)
            end
            print(fib(15))
        ";
        assert_eq!(run(src), "610\n");
    }

    #[test]
    fn loops_break_and_scoping() {
        assert_eq!(run("local s = 0 for i = 1, 5 do s = s + i end print(s)"), "15\n");
        assert_eq!(run("local s = 0 for i = 10, 1, -2 do s = s + i end print(s)"), "30\n");
        assert_eq!(
            run("local s = 0 local i = 0 while true do i = i + 1 if i > 3 then break end s = s + i end print(s)"),
            "6\n"
        );
        // The loop variable is fresh per iteration and scoped to the body.
        assert_eq!(run("local i = 99 for i = 1, 3 do end print(i)"), "99\n");
        assert_eq!(run("do local x = 1 end print(x)"), "nil\n");
    }

    #[test]
    fn float_for_loop() {
        assert_eq!(run("local s = 0 for x = 0.5, 2.5, 0.5 do s = s + x end print(s)"), "7.5\n");
    }

    #[test]
    fn strings_builtins() {
        assert_eq!(run("print(sub(\"hello\", 2, 4))"), "ell\n");
        assert_eq!(run("print(sub(\"hello\", 2))"), "ello\n");
        assert_eq!(run("print(sub(\"hello\", -3))"), "llo\n");
        assert_eq!(run("print(len(\"hello\"), #\"hi\")"), "5\t2\n");
        assert_eq!(run("print(\"a\" .. 1 .. 2.5)"), "a12.5\n");
        assert_eq!(run("print(char(65), byte(\"A\"))"), "A\t65\n");
    }

    #[test]
    fn math_builtins() {
        assert_eq!(run("print(floor(2.7), floor(-2.7), floor(3))"), "2\t-3\t3\n");
        assert_eq!(run("print(sqrt(9))"), "3\n");
        assert_eq!(run("print(abs(-4), abs(4.5))"), "4\t4.5\n");
        assert_eq!(run("print(min(2, 3), max(2, 3), min(2.5, 2))"), "2\t3\t2\n");
        assert_eq!(run("print(tostring(42) .. \"!\")"), "42!\n");
    }

    #[test]
    fn insert_appends() {
        assert_eq!(run("local t = {} insert(t, 7) insert(t, 8) print(#t, t[2])"), "2\t8\n");
    }

    #[test]
    fn global_vs_local_assignment() {
        assert_eq!(
            run("function f() g = 5 end f() print(g)"),
            "5\n"
        );
        assert_eq!(run("local x = 1 function f() return x end print(f())"), "nil\n"); // no closures
    }

    #[test]
    fn error_cases() {
        assert!(run_err("local t = nil print(t[1])").message.contains("index a nil"));
        assert!(run_err("print(#5)").message.contains("length"));
        assert!(run_err("print(1 // 0)").message.contains("n//0"));
        assert!(run_err("nosuch(1)").message.contains("unknown function"));
        assert!(run_err("function f(a) return a end print(f())").message.contains("expects 1"));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let chunk = parse("while true do end").unwrap();
        let mut i = Interp::with_step_limit(10_000);
        assert!(i.run(&chunk).is_err());
    }
}
