//! Abstract syntax tree for MiniScript.

/// Binary operators (excluding short-circuiting `and`/`or`, which get their
/// own expression nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` — the paper's polymorphic ADD.
    Add,
    /// `-` — SUB.
    Sub,
    /// `*` — MUL.
    Mul,
    /// `/` — always float division.
    Div,
    /// `//` — floor division.
    IDiv,
    /// `%` — floor modulo (Lua semantics in every engine).
    Mod,
    /// `..` — string concatenation.
    Concat,
    /// `==`.
    Eq,
    /// `~=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// `#` — length of a string or table array part.
    Len,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`.
    Nil,
    /// `true`/`false`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Variable reference (local or global; resolved by the compilers).
    Var(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Short-circuiting `and`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuiting `or`.
    Or(Box<Expr>, Box<Expr>),
    /// Table indexing `t[k]` (and sugar `t.name`).
    Index {
        /// Table expression.
        table: Box<Expr>,
        /// Key expression.
        key: Box<Expr>,
    },
    /// Function call. Functions are global; builtins resolve by name.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Array-style table constructor `{e1, e2, …}`.
    Table(Vec<Expr>),
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A named variable.
    Name(String),
    /// `t[k]`.
    Index {
        /// Table expression.
        table: Expr,
        /// Key expression.
        key: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stat {
    /// `local name = expr` (init defaults to `nil`).
    Local {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
    },
    /// `target = expr`.
    Assign {
        /// Target.
        target: Target,
        /// Value.
        value: Expr,
    },
    /// `if … then … elseif … else … end`.
    If {
        /// `(condition, body)` arms in order.
        arms: Vec<(Expr, Block)>,
        /// Optional `else` body.
        else_body: Option<Block>,
    },
    /// `while cond do body end`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Numeric `for var = start, stop [, step] do body end`.
    NumericFor {
        /// Loop variable (fresh local).
        var: String,
        /// Start expression.
        start: Expr,
        /// Inclusive stop expression.
        stop: Expr,
        /// Step (defaults to 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// An expression evaluated for side effects (calls).
    ExprStat(Expr),
    /// `do … end` block (new scope).
    Do(Block),
}

/// A sequence of statements.
pub type Block = Vec<Stat>;

/// A top-level function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Block,
}

/// A parsed MiniScript program: function definitions plus top-level code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
    /// Top-level statements (the "main" body).
    pub main: Block,
}

impl Chunk {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}
