//! # miniscript — the benchmark frontend
//!
//! MiniScript is the small Lua-flavoured dynamic language in which this
//! repository expresses the paper's 11 benchmarks (Table 7). One source
//! program compiles to *both* evaluated engines:
//!
//! * `luart` — the register-based, Lua-5.3-layout VM;
//! * `jsrt` — the stack-based, NaN-boxing (SpiderMonkey-layout) VM;
//!
//! and also runs under the host-side tree-walking [`Interp`], which serves
//! as the semantic oracle for differential testing: the printed output of
//! all seven executions (reference + 2 engines × 3 ISA levels) must match
//! byte-for-byte.
//!
//! Semantics are Lua-5.3-like: integer/float number subtypes, float
//! contagion, `/` always float, floor-based `//` and `%`, string→number
//! coercion in arithmetic, 1-based strings and tables. See the `interp`
//! module docs for details.
//!
//! # Examples
//!
//! ```
//! use miniscript::{parse, Interp};
//!
//! let chunk = parse("
//!     function fact(n)
//!         if n < 2 then return 1 end
//!         return n * fact(n - 1)
//!     end
//!     print(fact(10))
//! ")?;
//! let mut interp = Interp::new();
//! interp.run(&chunk)?;
//! assert_eq!(interp.output(), "3628800\n");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
mod interp;
mod parser;
pub mod token;
mod value;

pub use ast::{BinOp, Block, Chunk, Expr, Function, Stat, Target, UnOp};
pub use interp::{float_floor_mod, int_floor_div, int_floor_mod, string_sub, Interp, RuntimeError};
pub use parser::{parse, ParseError};
pub use value::{format_float, format_value, Key, Table, Value};
