//! Property-style equivalence of the MRU fast paths against naive
//! full-scan reference models, on degenerate geometries.
//!
//! The MRU memo in [`Cache::access`] and [`Tlb::access`] must be a pure
//! host-side shortcut: hit/miss outcomes, writeback reports, LRU
//! evictions, and statistics have to be bit-identical with the fast path
//! on and off. The interesting corners are the degenerate geometries —
//! direct-mapped caches (one way: every conflict evicts the memoized
//! line), single-set caches (every address contends for one set), and a
//! 1-entry TLB (every new page evicts the memoized page) — where a stale
//! memo would be fatal if it were trusted without re-validation.
//!
//! Each case drives three models with the same xorshift-random access
//! stream: the fast-path structure, the slow-path structure, and a naive
//! reference (per-set LRU list), asserting step-for-step agreement.

use tarch_mem::{Cache, CacheConfig, Tlb};
use tarch_testkit::Rng;

/// Naive reference: per-set LRU tag lists, scanned in full on every
/// access. Mirrors a write-back write-allocate cache closely enough to
/// predict hits, evictions and writebacks.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>, // (tag, dirty), LRU first
    ways: usize,
    line: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            line: config.line_bytes,
        }
    }

    /// Returns `(hit, writeback address)`.
    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let nsets = self.sets.len() as u64;
        let line_addr = addr / self.line;
        let set = (line_addr % nsets) as usize;
        let tag = line_addr / nsets;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|(t, _)| *t == tag) {
            let (_, dirty) = list.remove(pos);
            list.push((tag, dirty || is_write));
            return (true, None);
        }
        let mut writeback = None;
        if list.len() == self.ways {
            let (victim_tag, dirty) = list.remove(0);
            if dirty {
                writeback = Some((victim_tag * nsets + set as u64) * self.line);
            }
        }
        list.push((tag, is_write));
        (false, writeback)
    }
}

/// Drives fast, slow, and reference models with one random stream.
fn check_cache_geometry(config: CacheConfig, seed: u64, rounds: usize, addr_space: u64) {
    let mut rng = Rng::new(seed);
    for round in 0..rounds {
        let mut fast = Cache::with_fast_path(config, true);
        let mut slow = Cache::with_fast_path(config, false);
        let mut reference = RefCache::new(config);
        let n = rng.range_usize(1, 300);
        for step in 0..n {
            // Mix random addresses with short sequential bursts so the
            // MRU memo actually gets exercised (random addresses alone
            // rarely repeat a line).
            let addr = if step % 3 == 0 {
                rng.range_u64(0, addr_space)
            } else {
                rng.range_u64(0, addr_space / 8) * 4
            };
            let is_write = rng.range_u64(0, 4) == 0;
            let f = fast.access(addr, is_write);
            let s = slow.access(addr, is_write);
            let (r_hit, r_wb) = reference.access(addr, is_write);
            assert_eq!(
                f, s,
                "fast/slow divergence: {config:?} round {round} step {step} addr {addr:#x}"
            );
            assert_eq!(
                (f.hit, f.writeback),
                (r_hit, r_wb),
                "model/reference divergence: {config:?} round {round} step {step} addr {addr:#x}"
            );
            assert_eq!(fast.probe(addr), slow.probe(addr));
        }
        assert_eq!(fast.stats(), slow.stats(), "stats diverged for {config:?}");
    }
}

#[test]
fn direct_mapped_cache_matches_reference() {
    // 8 sets x 1 way: every set conflict evicts the memoized line.
    check_cache_geometry(
        CacheConfig { size_bytes: 512, ways: 1, line_bytes: 64 },
        0xd17ec7,
        64,
        4096,
    );
}

#[test]
fn single_set_cache_matches_reference() {
    // 1 set x 4 ways: all addresses contend for the same set.
    check_cache_geometry(
        CacheConfig { size_bytes: 256, ways: 4, line_bytes: 64 },
        0x5e7,
        64,
        4096,
    );
}

#[test]
fn single_line_cache_matches_reference() {
    // 1 set x 1 way x 64 B: the fully degenerate cache; the memo always
    // points at the only line, which every miss replaces.
    check_cache_geometry(
        CacheConfig { size_bytes: 64, ways: 1, line_bytes: 64 },
        0x111,
        64,
        2048,
    );
}

#[test]
fn tiny_lines_tall_cache_matches_reference() {
    // 64 sets x 2 ways x 8 B lines: adjacent words map to different sets,
    // so the memo is invalidated by stride-1 streams too.
    check_cache_geometry(
        CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 8 },
        0x7a11,
        64,
        8192,
    );
}

/// Naive reference TLB: one LRU list of pages.
struct RefTlb {
    pages: Vec<u64>, // LRU first
    capacity: usize,
}

impl RefTlb {
    fn access(&mut self, addr: u64) -> bool {
        let page = addr >> 12;
        if let Some(pos) = self.pages.iter().position(|p| *p == page) {
            self.pages.remove(pos);
            self.pages.push(page);
            return true;
        }
        if self.pages.len() == self.capacity {
            self.pages.remove(0);
        }
        self.pages.push(page);
        false
    }
}

fn check_tlb_capacity(capacity: usize, seed: u64, rounds: usize) {
    let mut rng = Rng::new(seed);
    for round in 0..rounds {
        let mut fast = Tlb::with_fast_path(capacity, true);
        let mut slow = Tlb::with_fast_path(capacity, false);
        let mut reference = RefTlb { pages: Vec::new(), capacity };
        let n = rng.range_usize(1, 300);
        for step in 0..n {
            // Page-local bursts interleaved with random far jumps.
            let addr = if step % 4 == 0 {
                rng.range_u64(0, 1 << 16)
            } else {
                rng.range_u64(0, 4) * 4096 + rng.range_u64(0, 4096)
            };
            let f = fast.access(addr);
            let s = slow.access(addr);
            let r = reference.access(addr);
            assert_eq!(
                f, s,
                "fast/slow divergence: {capacity}-entry TLB round {round} step {step} addr {addr:#x}"
            );
            assert_eq!(
                f, r,
                "model/reference divergence: {capacity}-entry TLB round {round} step {step} addr {addr:#x}"
            );
        }
        assert_eq!(fast.stats(), slow.stats(), "stats diverged for {capacity}-entry TLB");
    }
}

#[test]
fn one_entry_tlb_matches_reference() {
    check_tlb_capacity(1, 0x71b1, 64);
}

#[test]
fn two_entry_tlb_matches_reference() {
    check_tlb_capacity(2, 0x71b2, 64);
}

#[test]
fn paper_tlb_matches_reference() {
    check_tlb_capacity(8, 0x71b8, 64);
}
