//! Sparse physical memory.
//!
//! Backing store for the simulated machine: a page-granular sparse array of
//! bytes. All accesses are little-endian. Reads of untouched memory return
//! zeroes, like zero-initialised DRAM after loader scrubbing.
//!
//! Pages are reference-counted so a `MainMemory` clone is a copy-on-write
//! fork: the clone shares every resident page with its parent and a page is
//! physically copied only on the first write through either image (the
//! fork-server trick `tarch-fleet` uses to stamp out tenant VMs from one
//! snapshot).

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Fibonacci (multiply-shift) hasher for page numbers.
///
/// Page numbers are small, near-sequential integers under the simulator's
/// identity address map; SipHash's DoS resistance buys nothing here and its
/// cost shows up on every simulated memory access. One multiply spreads
/// consecutive keys across the table's high bits (which hashbrown's control
/// bytes consume) just as well.
#[derive(Debug, Default, Clone, Copy)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("page-number keys hash via write_u64");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // 2^64 / phi, the classic Fibonacci-hashing multiplier.
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type Page = [u8; PAGE_SIZE as usize];
type PageIndex = HashMap<u64, u32, BuildHasherDefault<PageHasher>>;

/// Sentinel page number for "no MRU memo"; no reachable address maps to
/// it (it would need `addr >= 2^76`).
const MRU_NONE: u64 = u64::MAX;

/// Sparse little-endian physical memory.
///
/// Pages live in a `Vec` (stable slots; the memory only ever grows) with
/// a hash directory from page number to slot. The slot of the most
/// recently touched page is memoized in a [`Cell`] so the overwhelmingly
/// common same-page access — sequential data, stack traffic — skips the
/// directory probe entirely, on the read path too.
///
/// Each slot holds an [`Arc`]'d page, making `Clone` a copy-on-write
/// fork: the clone shares every page, and [`Arc::make_mut`] in the write
/// path copies a page the first time either image dirties it. The MRU
/// memo caches the *slot*, never a page pointer, so the memoized fast
/// path still funnels through the sharing check.
///
/// # Examples
///
/// ```
/// use tarch_mem::MainMemory;
/// let mut mem = MainMemory::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u8(0x1_0000), 0); // untouched memory reads zero
///
/// let mut fork = mem.clone();          // O(resident pages) refcount bumps
/// fork.write_u64(0x1000, 7);           // copies just that one page
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(fork.cow_copies(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct MainMemory {
    index: PageIndex,
    pages: Vec<Arc<Page>>,
    mru: Cell<(u64, u32)>,
    cow_copies: u64,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> MainMemory {
        MainMemory {
            index: PageIndex::default(),
            pages: Vec::new(),
            mru: Cell::new((MRU_NONE, 0)),
            cow_copies: 0,
        }
    }

    /// Number of distinct pages touched so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Pages physically copied by writes to pages shared with a clone
    /// (host-side CoW metric; not an architectural counter).
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies
    }

    /// Pages still shared with at least one other `MainMemory` image.
    pub fn shared_pages(&self) -> usize {
        self.pages.iter().filter(|p| Arc::strong_count(p) > 1).count()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&Page> {
        let page_no = addr >> PAGE_SHIFT;
        let (mru_no, mru_slot) = self.mru.get();
        if page_no == mru_no {
            return Some(&self.pages[mru_slot as usize]);
        }
        let slot = *self.index.get(&page_no)?;
        self.mru.set((page_no, slot));
        Some(&self.pages[slot as usize])
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut Page {
        let page_no = addr >> PAGE_SHIFT;
        let (mru_no, mru_slot) = self.mru.get();
        let slot = if page_no == mru_no {
            mru_slot
        } else {
            match self.index.get(&page_no) {
                Some(&slot) => {
                    self.mru.set((page_no, slot));
                    slot
                }
                None => {
                    let slot = u32::try_from(self.pages.len()).expect("fewer than 2^32 pages");
                    self.pages.push(Arc::new([0; PAGE_SIZE as usize]));
                    self.index.insert(page_no, slot);
                    self.mru.set((page_no, slot));
                    slot
                }
            }
        };
        let page = &mut self.pages[slot as usize];
        if Arc::strong_count(page) > 1 {
            self.cow_copies += 1;
        }
        Arc::make_mut(page)
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & (PAGE_SIZE - 1)) as usize] = value;
    }

    #[inline]
    fn read_le(&self, addr: u64, n: usize) -> u64 {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + n <= PAGE_SIZE as usize {
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..n].copy_from_slice(&p[off..off + n]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
            }
            v
        }
    }

    #[inline]
    fn write_le(&mut self, addr: u64, value: u64, n: usize) {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + n <= PAGE_SIZE as usize {
            let bytes = value.to_le_bytes();
            self.page_mut(addr)[off..off + n].copy_from_slice(&bytes[..n]);
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Const-width in-page read: the compiler sees a fixed `N`, so the
    /// copy lowers to one unaligned load instead of a `memcpy` call
    /// (which the dynamic-length [`Self::read_le`] pays on every access).
    #[inline]
    fn read_fixed<const N: usize>(&self, addr: u64) -> u64 {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - N {
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..N].copy_from_slice(&p[off..off + N]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            self.read_le(addr, N)
        }
    }

    /// Const-width in-page write; see [`Self::read_fixed`].
    #[inline]
    fn write_fixed<const N: usize>(&mut self, addr: u64, value: u64) {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - N {
            let bytes = value.to_le_bytes();
            self.page_mut(addr)[off..off + N].copy_from_slice(&bytes[..N]);
        } else {
            self.write_le(addr, value, N);
        }
    }

    /// Reads a little-endian 16-bit value (may straddle pages).
    #[inline]
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_fixed::<2>(addr) as u16
    }

    /// Reads a little-endian 32-bit value (may straddle pages).
    ///
    /// Word reads are the instruction-fetch path, so the in-page case
    /// (every aligned fetch) goes straight to the page bytes without the
    /// generic byte-composition machinery.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            match self.page(addr) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            self.read_le(addr, 4) as u32
        }
    }

    /// Reads a little-endian 64-bit value (may straddle pages).
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_fixed::<8>(addr)
    }

    /// Writes a little-endian 16-bit value.
    #[inline]
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_fixed::<2>(addr, value as u64);
    }

    /// Writes a little-endian 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_fixed::<4>(addr, value as u64);
    }

    /// Writes a little-endian 64-bit value.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_fixed::<8>(addr, value);
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            self.page_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_testkit::Rng;

    #[test]
    fn rw_all_widths() {
        let mut m = MainMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xcdef);
        m.write_u32(30, 0x1234_5678);
        m.write_u64(40, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xcdef);
        assert_eq!(m.read_u32(30), 0x1234_5678);
        assert_eq!(m.read_u64(40), 0x1122_3344_5566_7788);
    }

    #[test]
    fn little_endian_byte_order() {
        let mut m = MainMemory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = PAGE_SIZE - 3;
        m.write_u64(addr, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(addr), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_spanning_pages() {
        let mut m = MainMemory::new();
        let data: Vec<u8> = (0..100).collect();
        let addr = 2 * PAGE_SIZE - 50;
        m.write_bytes(addr, &data);
        assert_eq!(m.read_bytes(addr, 100), data);
    }

    #[test]
    fn randomized_u64_roundtrip() {
        let mut rng = Rng::new(0x9e01);
        for _ in 0..512 {
            let addr = rng.range_u64(0, 1_000_000);
            let value = rng.u64();
            let mut m = MainMemory::new();
            m.write_u64(addr, value);
            assert_eq!(m.read_u64(addr), value, "addr {addr:#x}");
        }
    }

    #[test]
    fn clone_shares_pages_until_first_write() {
        let mut m = MainMemory::new();
        m.write_u64(0, 1);
        m.write_u64(PAGE_SIZE, 2);
        m.write_u64(2 * PAGE_SIZE, 3);
        let fork = m.clone();
        assert_eq!(m.shared_pages(), 3);
        assert_eq!(fork.shared_pages(), 3);
        assert_eq!(fork.cow_copies(), 0);

        let mut fork = fork;
        fork.write_u8(PAGE_SIZE + 8, 0xaa);
        assert_eq!(fork.cow_copies(), 1);
        assert_eq!(fork.shared_pages(), 2);
        assert_eq!(m.shared_pages(), 2);
        // Reads never copy.
        assert_eq!(fork.read_u64(2 * PAGE_SIZE), 3);
        assert_eq!(fork.cow_copies(), 1);
    }

    #[test]
    fn clone_images_diverge_independently() {
        let mut m = MainMemory::new();
        m.write_u64(100, 0x1111);
        let mut fork = m.clone();
        fork.write_u64(100, 0x2222);
        m.write_u64(100, 0x3333);
        assert_eq!(fork.read_u64(100), 0x2222);
        assert_eq!(m.read_u64(100), 0x3333);
        // The fork's write copied the page, leaving the parent sole
        // owner — its own write then lands in place, no second copy.
        assert_eq!(fork.cow_copies(), 1);
        assert_eq!(m.cow_copies(), 0);
    }

    #[test]
    fn mru_memo_does_not_bypass_cow() {
        let mut m = MainMemory::new();
        // Prime the MRU memo on the page, then fork: the memoized write
        // path must still notice the page became shared.
        m.write_u64(0x4000, 7);
        let fork = m.clone();
        m.write_u64(0x4000, 8);
        assert_eq!(m.cow_copies(), 1);
        assert_eq!(fork.read_u64(0x4000), 7);
        assert_eq!(m.read_u64(0x4000), 8);
    }

    #[test]
    fn dropping_the_parent_unshares_the_fork() {
        let mut m = MainMemory::new();
        m.write_u64(0, 42);
        let mut fork = m.clone();
        drop(m);
        assert_eq!(fork.shared_pages(), 0);
        fork.write_u64(0, 43);
        assert_eq!(fork.cow_copies(), 0, "sole owner writes in place");
    }

    #[test]
    fn randomized_byte_composition() {
        let mut rng = Rng::new(0x9e02);
        for _ in 0..512 {
            let addr = rng.range_u64(0, 100_000);
            let value = rng.u64();
            let mut m = MainMemory::new();
            m.write_u64(addr, value);
            for i in 0..8u64 {
                assert_eq!(m.read_u8(addr + i), (value >> (8 * i)) as u8, "addr {addr:#x}");
            }
        }
    }
}
