//! Fully-associative TLB timing model.
//!
//! The paper's core has 8-entry fully-associative I- and D-TLBs (Table 6).
//! The simulator uses an identity virtual→physical mapping, so the TLB only
//! contributes hit/miss timing, which is what it models here.

use crate::phys::PAGE_SHIFT;

/// Statistics for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookup misses (page walks).
    pub misses: u64,
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use tarch_mem::Tlb;
/// let mut tlb = Tlb::new(8);
/// assert!(!tlb.access(0x1000)); // cold miss
/// assert!(tlb.access(0x1fff)); // same page
/// ```
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last use)
    capacity: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb { entries: Vec::with_capacity(capacity), capacity, tick: 0, stats: TlbStats::default() }
    }

    /// Looks up the page containing `addr`, filling on miss. Returns whether
    /// the lookup hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.tick;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.tick));
        false
    }

    /// Running statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(2);
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn stats_and_flush() {
        let mut t = Tlb::new(4);
        t.access(0);
        t.access(0);
        assert_eq!(t.stats(), TlbStats { accesses: 2, misses: 1 });
        t.flush();
        assert!(!t.access(0));
    }
}
