//! Fully-associative TLB timing model.
//!
//! The paper's core has 8-entry fully-associative I- and D-TLBs (Table 6).
//! The simulator uses an identity virtual→physical mapping, so the TLB only
//! contributes hit/miss timing, which is what it models here.

use crate::phys::PAGE_SHIFT;

/// Statistics for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookup misses (page walks).
    pub misses: u64,
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use tarch_mem::Tlb;
/// let mut tlb = Tlb::new(8);
/// assert!(!tlb.access(0x1000)); // cold miss
/// assert!(tlb.access(0x1fff)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last use)
    capacity: usize,
    tick: u64,
    stats: TlbStats,
    fast_path: bool,
    // MRU memo: the page number and entry index of the most recent hit.
    // Re-validated against the stored entry on every use (`swap_remove`
    // on the miss path reshuffles indices), so a stale memo degrades to
    // the scan path instead of producing a false hit.
    mru_page: u64,
    mru_idx: usize,
}

/// Sentinel for "no MRU memo": no real page number reaches this value
/// (pages are `addr >> PAGE_SHIFT`).
const MRU_NONE: u64 = u64::MAX;

impl Tlb {
    /// Creates an empty TLB with the given number of entries and the MRU
    /// fast path enabled.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        Tlb::with_fast_path(capacity, true)
    }

    /// Creates an empty TLB, choosing whether repeated same-page lookups
    /// take the memoized MRU path or always scan the entries. Both paths
    /// produce bit-identical hit/miss/LRU/statistics behaviour; the
    /// toggle exists so equivalence tests can diff them.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_fast_path(capacity: usize, fast_path: bool) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: TlbStats::default(),
            fast_path,
            mru_page: MRU_NONE,
            mru_idx: 0,
        }
    }

    /// Looks up the page containing `addr`, filling on miss. Returns whether
    /// the lookup hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> PAGE_SHIFT;
        // MRU fast path: a repeat lookup in the most recently hit page
        // (sequential fetch stays in a 4 KB page for 1024 instructions)
        // skips the scan. The memoized index is checked to still hold the
        // page, so the memo can never claim a hit the scan would miss —
        // the updates are exactly the scan path's hit updates.
        if self.fast_path && page == self.mru_page {
            if let Some(entry) = self.entries.get_mut(self.mru_idx) {
                if entry.0 == page {
                    self.tick += 1;
                    self.stats.accesses += 1;
                    entry.1 = self.tick;
                    return true;
                }
            }
        }
        self.tick += 1;
        self.stats.accesses += 1;
        if let Some((i, entry)) =
            self.entries.iter_mut().enumerate().find(|(_, (p, _))| *p == page)
        {
            entry.1 = self.tick;
            self.mru_page = page;
            self.mru_idx = i;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.tick));
        self.mru_page = page;
        self.mru_idx = self.entries.len() - 1;
        false
    }

    /// Applies `count` repeat hits to the page containing `addr` in one
    /// batch: bit-identical to calling [`Tlb::access`]`(addr)` `count`
    /// times, *given the caller's guarantee* that `addr`'s page was the
    /// most recent access and nothing touched the TLB since. Each such
    /// access would hit and refresh the same entry's recency, so one
    /// batched tick/statistics/last-use update lands on exactly the same
    /// state. Used by the block execution engine to charge straight-line
    /// fetch runs within one page.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident (the caller's contract was
    /// violated).
    pub fn repeat_hits(&mut self, addr: u64, count: u64) {
        if count == 0 {
            return;
        }
        let page = addr >> PAGE_SHIFT;
        self.tick += count;
        self.stats.accesses += count;
        let idx = if self.fast_path
            && page == self.mru_page
            && self.entries.get(self.mru_idx).is_some_and(|(p, _)| *p == page)
        {
            self.mru_idx
        } else {
            self.entries
                .iter()
                .position(|(p, _)| *p == page)
                .expect("repeat_hits caller guarantees the page is resident")
        };
        self.entries[idx].1 = self.tick;
        if self.fast_path {
            self.mru_page = page;
            self.mru_idx = idx;
        }
    }

    /// Number of currently resident entries (structure occupancy;
    /// sampled by the trace layer's windowed metric snapshots).
    pub fn occupancy(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Running statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.mru_page = MRU_NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(2);
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(2);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    /// `repeat_hits(addr, n)` must leave the TLB in exactly the state of
    /// `n` single hits — including subsequent LRU decisions.
    #[test]
    fn repeat_hits_equals_n_single_accesses() {
        for fast in [false, true] {
            let mut batched = Tlb::with_fast_path(2, fast);
            let mut single = Tlb::with_fast_path(2, fast);
            for t in [&mut batched, &mut single] {
                t.access(0x0000); // page 0
                t.access(0x1000); // page 1
            }
            batched.repeat_hits(0x0040, 3);
            for _ in 0..3 {
                single.access(0x0040);
            }
            assert_eq!(batched.stats(), single.stats());
            // Page 1 must now be LRU in both: the next fill evicts it.
            assert_eq!(batched.access(0x2000), single.access(0x2000), "fast_path={fast}");
            assert!(batched.access(0x0000), "batched hits must have refreshed page 0");
            assert!(!batched.access(0x1000), "page 1 must have been evicted");
        }
    }

    #[test]
    fn stats_and_flush() {
        let mut t = Tlb::new(4);
        t.access(0);
        t.access(0);
        assert_eq!(t.stats(), TlbStats { accesses: 2, misses: 1 });
        t.flush();
        assert!(!t.access(0));
    }
}
