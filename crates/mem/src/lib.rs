//! # tarch-mem — memory hierarchy models
//!
//! The memory-system substrate of the Typed Architectures reproduction:
//!
//! * [`MainMemory`] — sparse little-endian physical memory backing the
//!   simulated machine's code, data, VM stacks and heaps;
//! * [`Cache`] — set-associative L1 timing model (paper Table 6: 16 KB,
//!   4-way, 64 B lines, LRU, write-back);
//! * [`Tlb`] — 8-entry fully-associative TLB timing model;
//! * [`DramModel`] — open-page DDR3-1066 latency model with per-bank row
//!   buffers.
//!
//! These are *timing* models layered over a functional-first simulator: the
//! caches and TLBs carry no data, only the state needed to reproduce the
//! paper's miss-rate and latency behaviour.
//!
//! # Examples
//!
//! ```
//! use tarch_mem::{Cache, CacheConfig, DramConfig, DramModel, MainMemory};
//!
//! let mut mem = MainMemory::new();
//! mem.write_u64(0x2000, 42);
//!
//! let mut l1 = Cache::new(CacheConfig::paper_l1());
//! let mut dram = DramModel::new(DramConfig::paper());
//! let access = l1.access(0x2000, false);
//! let latency = if access.hit { 1 } else { 1 + dram.access(0x2000) };
//! assert!(latency > 1); // cold miss went to DRAM
//! assert_eq!(mem.read_u64(0x2000), 42);
//! ```

mod cache;
mod dram;
mod phys;
mod tlb;

pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
pub use dram::{DramConfig, DramModel, DramStats};
pub use phys::{MainMemory, PAGE_SHIFT, PAGE_SIZE};
pub use tlb::{Tlb, TlbStats};
