//! DDR3 main-memory timing model.
//!
//! Reproduces the paper's memory system (Table 6): 1 GB DDR3-1066, one
//! rank, tCL/tRCD/tRP = 7/7/7. The model tracks per-bank open rows and
//! converts DRAM-clock timings into core cycles at the paper's 50 MHz
//! (synthesized FPGA) core clock, plus a fixed uncore/bus round-trip.
//!
//! Only latency is modelled (no bandwidth contention): the paper's core is
//! single-issue in-order with blocking caches, so at most one miss is
//! outstanding at a time.

/// DRAM timing and geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Column access strobe latency, DRAM cycles.
    pub t_cl: u32,
    /// RAS-to-CAS delay, DRAM cycles.
    pub t_rcd: u32,
    /// Row precharge, DRAM cycles.
    pub t_rp: u32,
    /// DRAM IO clock in MHz (DDR3-1066 ⇒ 533 MHz bus clock).
    pub dram_mhz: f64,
    /// Core clock in MHz (the paper's FPGA core runs at 50 MHz).
    pub core_mhz: f64,
    /// Fixed uncore/bus round-trip added to every access, in core cycles.
    pub uncore_core_cycles: u32,
    /// Number of banks.
    pub banks: u32,
    /// Row size in bytes.
    pub row_bytes: u64,
}

impl DramConfig {
    /// The paper's configuration (Table 6) with a Rocket-class uncore.
    pub fn paper() -> DramConfig {
        DramConfig {
            t_cl: 7,
            t_rcd: 7,
            t_rp: 7,
            dram_mhz: 533.0,
            core_mhz: 50.0,
            uncore_core_cycles: 14,
            banks: 8,
            row_bytes: 8 * 1024,
        }
    }

    fn dram_to_core(&self, dram_cycles: u32) -> u64 {
        // Latency in core cycles, rounded up.
        let ns = dram_cycles as f64 * 1000.0 / self.dram_mhz;
        (ns * self.core_mhz / 1000.0).ceil() as u64
    }

    /// Latency of a row-buffer hit in core cycles (uncore + CAS).
    pub fn row_hit_core_cycles(&self) -> u64 {
        self.uncore_core_cycles as u64 + self.dram_to_core(self.t_cl)
    }

    /// Latency of a row-buffer conflict in core cycles
    /// (uncore + precharge + activate + CAS).
    pub fn row_miss_core_cycles(&self) -> u64 {
        self.uncore_core_cycles as u64 + self.dram_to_core(self.t_rp + self.t_rcd + self.t_cl)
    }

    /// Latency of an access to an idle (closed) bank: activate + CAS.
    pub fn row_closed_core_cycles(&self) -> u64 {
        self.uncore_core_cycles as u64 + self.dram_to_core(self.t_rcd + self.t_cl)
    }
}

/// Statistics for the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total accesses (cache-line fills and writebacks).
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer conflicts (precharge needed).
    pub row_conflicts: u64,
    /// Accesses to banks with no open row.
    pub row_closed: u64,
    /// Total latency paid, in core cycles.
    pub total_core_cycles: u64,
}

/// Open-page DDR3 latency model with per-bank row buffers.
///
/// # Examples
///
/// ```
/// use tarch_mem::{DramConfig, DramModel};
/// let mut dram = DramModel::new(DramConfig::paper());
/// let first = dram.access(0x4000);          // activates a row
/// let second = dram.access(0x4040);         // row-buffer hit: cheaper
/// assert!(second < first);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl DramModel {
    /// Creates a DRAM model with all banks closed.
    pub fn new(config: DramConfig) -> DramModel {
        DramModel { config, open_rows: vec![None; config.banks as usize], stats: DramStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Performs one access and returns its latency in core cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.stats.accesses += 1;
        let row = addr / self.config.row_bytes;
        // Interleave consecutive rows across banks.
        let bank = (row % self.config.banks as u64) as usize;
        let latency = match self.open_rows[bank] {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.row_hit_core_cycles()
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.config.row_miss_core_cycles()
            }
            None => {
                self.stats.row_closed += 1;
                self.config.row_closed_core_cycles()
            }
        };
        self.open_rows[bank] = Some(row);
        self.stats.total_core_cycles += latency;
        latency
    }

    /// Running statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering() {
        let c = DramConfig::paper();
        assert!(c.row_hit_core_cycles() < c.row_closed_core_cycles());
        // At a slow core clock the precharge may round into the same core
        // cycle as the activate, so this is non-strict.
        assert!(c.row_closed_core_cycles() <= c.row_miss_core_cycles());
        // At 50 MHz core vs 533 MHz DRAM the DRAM part is small; the uncore
        // dominates. Sanity-bound the total.
        assert!(c.row_miss_core_cycles() <= 20);
        assert!(c.row_hit_core_cycles() > c.uncore_core_cycles as u64);
    }

    #[test]
    fn row_buffer_tracking() {
        let mut d = DramModel::new(DramConfig::paper());
        d.access(0); // closed bank
        d.access(64); // same row: hit
        let row_bytes = d.config().row_bytes;
        let banks = d.config().banks as u64;
        d.access(row_bytes * banks); // same bank, different row: conflict
        let s = d.stats();
        assert_eq!(s.row_closed, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut d = DramModel::new(DramConfig::paper());
        let row_bytes = d.config().row_bytes;
        d.access(0); // bank 0
        d.access(row_bytes); // bank 1: still "closed", not a conflict
        assert_eq!(d.stats().row_conflicts, 0);
        assert_eq!(d.stats().row_closed, 2);
    }

    #[test]
    fn total_cycles_accumulate() {
        let mut d = DramModel::new(DramConfig::paper());
        let a = d.access(0);
        let b = d.access(0);
        assert_eq!(d.stats().total_core_cycles, a + b);
    }
}
