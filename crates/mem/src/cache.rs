//! Set-associative cache timing model.
//!
//! Models hit/miss behaviour and write-back traffic of the paper's L1
//! caches (Table 6: 16 KB, 4-way, 64 B blocks, LRU, 1-cycle hit). The cache
//! carries no data — the simulator is functional-first — only tags and
//! replacement state, which is what determines the measured miss rates.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1 configuration: 16 KB, 4-way, 64 B lines.
    pub fn paper_l1() -> CacheConfig {
        CacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 64 }
    }

    /// Number of sets.
    ///
    /// Computed with shifts; [`Cache::new`] asserts the power-of-two
    /// geometry this relies on.
    pub fn sets(&self) -> u64 {
        self.size_bytes >> (self.ways.trailing_zeros() + self.line_bytes.trailing_zeros())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line written back on a miss fill.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_use: u64,
}

/// Running hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use tarch_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::paper_l1());
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// assert!(c.access(0x1038, false).hit);  // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    set_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    fast_path: bool,
    // MRU memo: the line address (addr >> set_shift) and line-array index
    // of the most recently touched line. `MRU_NONE` when unset. The index
    // is re-validated against the stored line on every use, so a stale
    // memo (the line was evicted since) degrades to the scan path instead
    // of producing a false hit.
    mru_line: u64,
    mru_idx: usize,
}

/// Sentinel for "no MRU memo": no real line address reaches this value
/// (line addresses are `addr >> set_shift` with `set_shift >= 1`).
const MRU_NONE: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache with the MRU fast path enabled.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not power-of-two sized.
    pub fn new(config: CacheConfig) -> Cache {
        Cache::with_fast_path(config, true)
    }

    /// Creates an empty cache, choosing whether repeated same-line
    /// accesses take the memoized MRU path or always scan the set. Both
    /// paths produce bit-identical hit/miss/LRU/statistics behaviour; the
    /// toggle exists so equivalence tests can diff them.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not power-of-two sized.
    pub fn with_fast_path(config: CacheConfig, fast_path: bool) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "cache line size must be a power of two, got {} bytes",
            config.line_bytes
        );
        assert!(
            config.ways.is_power_of_two(),
            "cache associativity must be a power of two, got {} ways",
            config.ways
        );
        let sets = config.sets();
        assert!(
            sets.is_power_of_two() && sets > 0,
            "cache set count must be a nonzero power of two, got {sets} \
             ({} bytes / {} ways / {} bytes per line)",
            config.size_bytes,
            config.ways,
            config.line_bytes
        );
        let set_shift = config.line_bytes.trailing_zeros();
        Cache {
            config,
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            stats: CacheStats::default(),
            tick: 0,
            set_shift,
            set_mask: sets - 1,
            tag_shift: set_shift + sets.trailing_zeros(),
            fast_path,
            mru_line: MRU_NONE,
            mru_idx: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines (keeps statistics).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
        self.mru_line = MRU_NONE;
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let set = ((addr >> self.set_shift) & self.set_mask) as usize;
        let tag = addr >> self.tag_shift;
        (set * self.config.ways as usize, tag)
    }

    /// Performs one access; allocates on miss and reports any dirty
    /// eviction.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        // MRU fast path: a repeat access to the most recently touched
        // line (sequential fetch hits the same 64 B line 16 times) skips
        // the way scan. The line address encodes both set and tag, and
        // the stored line is checked to still hold that tag, so the memo
        // can never claim a hit the scan would miss — the state updates
        // below are exactly the scan path's hit updates.
        if self.fast_path && addr >> self.set_shift == self.mru_line {
            let line = &mut self.lines[self.mru_idx];
            if line.valid && line.tag == addr >> self.tag_shift {
                self.tick += 1;
                self.stats.accesses += 1;
                line.last_use = self.tick;
                line.dirty |= is_write;
                return CacheAccess { hit: true, writeback: None };
            }
        }

        self.tick += 1;
        self.stats.accesses += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;

        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.mru_line = addr >> self.set_shift;
                self.mru_idx = i;
                return CacheAccess { hit: true, writeback: None };
            }
        }

        self.stats.misses += 1;
        // Choose an invalid way, else the least recently used.
        let victim = (base..base + ways)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid { (1, l.last_use) } else { (0, 0) }
            })
            .expect("cache has at least one way");
        let line = &mut self.lines[victim];
        let writeback = if line.valid && line.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the evicted line's address.
            let set = (victim / ways) as u64;
            Some((line.tag << self.tag_shift) | (set << self.set_shift))
        } else {
            None
        };
        *line = Line { valid: true, dirty: is_write, tag, last_use: self.tick };
        self.mru_line = addr >> self.set_shift;
        self.mru_idx = victim;
        CacheAccess { hit: false, writeback }
    }

    /// Applies `count` repeat read hits to the line containing `addr` in
    /// one batch: bit-identical to calling [`Cache::access`]`(addr,
    /// false)` `count` times, *given the caller's guarantee* that `addr`'s
    /// line was the most recent access and nothing touched the cache
    /// since. Each such access would hit and refresh the same line's
    /// recency, so one batched tick/statistics/`last_use` update lands on
    /// exactly the same state. Used by the block execution engine to
    /// charge straight-line fetch runs within one cache line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (the caller's contract was
    /// violated).
    pub fn repeat_hits(&mut self, addr: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.tick += count;
        self.stats.accesses += count;
        let line_addr = addr >> self.set_shift;
        let tag = addr >> self.tag_shift;
        let idx = if self.fast_path
            && line_addr == self.mru_line
            && self.lines[self.mru_idx].valid
            && self.lines[self.mru_idx].tag == tag
        {
            self.mru_idx
        } else {
            let (base, tag) = self.set_range(addr);
            (base..base + self.config.ways as usize)
                .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
                .expect("repeat_hits caller guarantees the line is resident")
        };
        self.lines[idx].last_use = self.tick;
        if self.fast_path {
            self.mru_line = line_addr;
            self.mru_idx = idx;
        }
    }

    /// Number of currently valid lines (structure occupancy; sampled by
    /// the trace layer's windowed metric snapshots).
    pub fn occupancy(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change; used by tests).
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.lines[base..base + self.config.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tarch_testkit::Rng;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn hit_after_fill_and_line_granularity() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13f, false).hit); // same line
        assert!(!c.access(0x140, false).hit); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*line = 256).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch A again → B is LRU
        c.access(0x200, false); // evicts B
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_writeback_reports_evicted_address() {
        let mut c = small();
        c.access(0x000, true); // dirty A
        c.access(0x100, false);
        let res = c.access(0x200, false); // evicts dirty A
        assert_eq!(res.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        assert_eq!(c.access(0x200, false).writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // dirty via hit
        c.access(0x100, false);
        let res = c.access(0x200, false);
        assert_eq!(res.writeback, Some(0x000));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0x40, false);
        c.flush();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40, false).hit);
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheConfig::paper_l1();
        assert_eq!(cfg.sets(), 64);
        let mut c = Cache::new(cfg);
        // 64 sets * 64B stride: addresses 64KB apart share a set.
        c.access(0, false);
        for i in 1..=4u64 {
            c.access(i * 16 * 1024, false);
        }
        assert!(!c.probe(0), "5 conflicting lines must evict the first");
    }

    /// Reference model: per-set LRU list of tags.
    #[derive(Default)]
    struct RefCache {
        sets: HashMap<u64, Vec<u64>>,
    }

    impl RefCache {
        fn access(&mut self, addr: u64, sets: u64, ways: usize, line: u64) -> bool {
            let line_addr = addr / line;
            let set = line_addr % sets;
            let tag = line_addr / sets;
            let list = self.sets.entry(set).or_default();
            if let Some(pos) = list.iter().position(|t| *t == tag) {
                list.remove(pos);
                list.push(tag);
                true
            } else {
                if list.len() == ways {
                    list.remove(0);
                }
                list.push(tag);
                false
            }
        }
    }

    /// `repeat_hits(addr, n)` must leave the cache in exactly the state
    /// of `n` single read hits — including subsequent LRU decisions.
    #[test]
    fn repeat_hits_equals_n_single_accesses() {
        for fast in [false, true] {
            let cfg = CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64 };
            let mut batched = Cache::with_fast_path(cfg, fast);
            let mut single = Cache::with_fast_path(cfg, fast);
            for c in [&mut batched, &mut single] {
                c.access(0x000, false);
                c.access(0x100, true); // dirty, same set
            }
            batched.repeat_hits(0x120, 5);
            for _ in 0..5 {
                single.access(0x120, false);
            }
            assert_eq!(batched.stats(), single.stats());
            // 0x000 must now be LRU in both: the next conflicting fill
            // evicts it, not the batched-hit line.
            assert_eq!(
                batched.access(0x200, false),
                single.access(0x200, false),
                "fast_path={fast}"
            );
            assert!(!batched.probe(0x000));
            assert!(batched.probe(0x100), "batched hits must have refreshed recency");
        }
    }

    #[test]
    fn randomized_matches_reference_lru() {
        let mut rng = Rng::new(0xcac4e);
        for _ in 0..128 {
            let mut c = small();
            let mut r = RefCache::default();
            for _ in 0..rng.range_usize(1, 200) {
                let addr = rng.range_u64(0, 4096);
                let got = c.access(addr, false).hit;
                let want = r.access(addr, 4, 2, 64);
                assert_eq!(got, want, "divergence at {addr:#x}");
            }
        }
    }

    #[test]
    fn randomized_stats_consistent() {
        let mut rng = Rng::new(0xcac4f);
        for _ in 0..128 {
            let mut c = small();
            let n = rng.range_usize(1, 100);
            let mut misses = 0;
            for _ in 0..n {
                if !c.access(rng.range_u64(0, 8192), false).hit {
                    misses += 1;
                }
            }
            assert_eq!(c.stats().accesses, n as u64);
            assert_eq!(c.stats().misses, misses);
        }
    }
}
