//! End-to-end tests of the parallel runner wired to the real engines:
//! determinism across worker counts, cache round-trips, and artifact
//! reload fidelity.

use tarch_bench::harness::{Matrix, MatrixOptions};
use tarch_bench::workloads::{self, Scale};
use tarch_runner::BenchArtifact;

fn mini_workloads() -> Vec<workloads::Workload> {
    ["fibo", "n-sieve"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect()
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("tarch-bench-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 4-worker run must produce byte-identical results to a serial run:
/// same outcomes in the same order, equal artifact fingerprints.
#[test]
fn parallel_run_matches_serial_byte_for_byte() {
    let ws = mini_workloads();
    let serial = Matrix::run_with(
        &ws,
        Scale::Test,
        &MatrixOptions { workers: 1, profiled: true, ..MatrixOptions::default() },
    )
    .unwrap();
    let parallel = Matrix::run_with(
        &ws,
        Scale::Test,
        &MatrixOptions { workers: 4, profiled: true, ..MatrixOptions::default() },
    )
    .unwrap();

    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a.spec.key, b.spec.key, "job order must be deterministic");
        // `sim_nanos` is wall-clock measurement metadata, not simulated
        // state — mask it before demanding byte-identical results.
        let mut b_result = b.result.clone();
        b_result.sim_nanos = a.result.sim_nanos;
        assert_eq!(a.result, b_result, "cell {} differs", a.spec.label());
    }
    assert_eq!(
        serial.artifact().fingerprint(),
        parallel.artifact().fingerprint(),
        "artifacts must be identical modulo timestamps"
    );
    assert_eq!(serial.stats.workers, 1);
    assert_eq!(parallel.stats.workers, 4);
}

/// Second run against a warm cache: every job is a hit and the artifact
/// fingerprint is unchanged.
#[test]
fn warm_cache_serves_every_job_with_identical_results() {
    let ws = mini_workloads();
    let dir = temp_cache("warm");
    let opts = MatrixOptions {
        workers: 2,
        cache_dir: Some(dir.clone()),
        profiled: true,
        ..MatrixOptions::default()
    };

    let cold = Matrix::run_with(&ws, Scale::Test, &opts).unwrap();
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(cold.stats.cache_misses, cold.stats.jobs);

    let warm = Matrix::run_with(&ws, Scale::Test, &opts).unwrap();
    assert_eq!(warm.stats.cache_misses, 0, "second run must be 100% hits");
    assert_eq!(warm.stats.cache_hits, warm.stats.jobs);
    assert_eq!(
        cold.artifact().fingerprint(),
        warm.artifact().fingerprint(),
        "cached results must reproduce the figure-relevant output exactly"
    );
    // Figures rendered from the cached matrix match the simulated ones.
    assert_eq!(
        tarch_bench::figures::fig5(&cold.matrix).unwrap(),
        tarch_bench::figures::fig5(&warm.matrix).unwrap()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Different scales must occupy different cache slots (the key covers
/// the scaled source text).
#[test]
fn cache_keys_distinguish_scales() {
    let ws = vec![workloads::by_name("fibo").unwrap()];
    let dir = temp_cache("scales");
    let opts = MatrixOptions {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..MatrixOptions::default()
    };
    let t = Matrix::run_with(&ws, Scale::Test, &opts).unwrap();
    assert_eq!(t.stats.cache_misses, t.stats.jobs);
    let d = Matrix::run_with(&ws, Scale::Default, &opts).unwrap();
    assert_eq!(
        d.stats.cache_misses, d.stats.jobs,
        "a different scale must not hit the test-scale cache entries"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write a `BENCH_*.json`, reload it, and verify the figure renderers
/// produce identical text from the reloaded matrix.
#[test]
fn artifact_reload_reproduces_figures() {
    let ws = mini_workloads();
    let run = Matrix::run_with(
        &ws,
        Scale::Test,
        &MatrixOptions { workers: 2, profiled: true, ..MatrixOptions::default() },
    )
    .unwrap();
    let artifact = run.artifact();
    let path = std::env::temp_dir()
        .join(format!("tarch-bench-it-{}-artifact.json", std::process::id()));
    artifact.write(&path).unwrap();

    let reloaded = BenchArtifact::read(&path).unwrap();
    assert_eq!(reloaded.outcomes.len(), run.outcomes.len());
    let m2 = Matrix::from_artifact(&reloaded).unwrap();

    for f in [
        tarch_bench::figures::fig5,
        tarch_bench::figures::fig6,
        tarch_bench::figures::fig7,
        tarch_bench::figures::fig8,
        tarch_bench::figures::fig9,
        tarch_bench::figures::table8,
    ] {
        assert_eq!(f(&run.matrix).unwrap(), f(&m2).unwrap());
    }

    let _ = std::fs::remove_file(&path);
}
