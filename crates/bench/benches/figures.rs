//! One Criterion bench group per evaluation figure/table: each group runs
//! the simulations that regenerate the corresponding result at test scale,
//! so `cargo bench` exercises every experiment end-to-end. For the actual
//! paper-shaped numbers use the `repro` binary (`repro all`), which runs
//! at the default (larger) scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tarch_bench::harness::{run_cell, EngineKind};
use tarch_bench::workloads::{by_name, Scale};
use tarch_core::IsaLevel;

fn cell(name: &str, engine: EngineKind, level: IsaLevel) -> u64 {
    let w = by_name(name).expect("workload");
    let r = run_cell(&w, engine, level, Scale::Test, false).expect("run");
    r.counters.cycles
}

/// Figure 5 (speedups): baseline vs typed cycles on a register-VM and a
/// stack-VM workload.
fn fig5_speedups(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_speedup");
    g.sample_size(10);
    for level in IsaLevel::ALL {
        g.bench_function(format!("lua_fibo_{level}"), |b| {
            b.iter(|| black_box(cell("fibo", EngineKind::Lua, level)))
        });
        g.bench_function(format!("js_fibo_{level}"), |b| {
            b.iter(|| black_box(cell("fibo", EngineKind::Js, level)))
        });
    }
    g.finish();
}

/// Figure 6 (instruction reduction): the table-heavy sieve.
fn fig6_instructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_instruction_reduction");
    g.sample_size(10);
    for level in [IsaLevel::Baseline, IsaLevel::Typed] {
        g.bench_function(format!("lua_nsieve_{level}"), |b| {
            b.iter(|| black_box(cell("n-sieve", EngineKind::Lua, level)))
        });
    }
    g.finish();
}

/// Figures 7/8 (branch and I-cache MPKI): the branchy fannkuch kernel.
fn fig78_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8_frontend_pressure");
    g.sample_size(10);
    for level in [IsaLevel::Baseline, IsaLevel::Typed] {
        g.bench_function(format!("lua_fannkuch_{level}"), |b| {
            b.iter(|| black_box(cell("fannkuch-redux", EngineKind::Lua, level)))
        });
    }
    g.finish();
}

/// Figure 9 (type hit/miss): profiled typed runs on hit-heavy and
/// miss-heavy workloads.
fn fig9_type_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_type_rates");
    g.sample_size(10);
    for name in ["fibo", "k-nucleotide"] {
        g.bench_function(format!("lua_{name}_typed_profiled"), |b| {
            let w = by_name(name).unwrap();
            b.iter(|| {
                let r = run_cell(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, true)
                    .expect("run");
                black_box((r.counters.type_hits, r.counters.type_misses))
            })
        });
    }
    g.finish();
}

/// Figure 2 (bytecode mix / instructions per bytecode): host-side counted
/// run plus a profiled simulated run.
fn fig2_bytecodes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_bytecode_profiles");
    g.sample_size(10);
    g.bench_function("fig2a_host_counted_fannkuch", |b| {
        let src = by_name("fannkuch-redux").unwrap().source(Scale::Test);
        let module = luart::compile(&miniscript::parse(&src).unwrap()).unwrap();
        b.iter(|| black_box(luart::host_run_counted(&module, u64::MAX).unwrap().1.len()))
    });
    g.bench_function("fig2b_profiled_add_mix", |b| {
        let w = by_name("fibo").unwrap();
        b.iter(|| {
            let r = run_cell(&w, EngineKind::Lua, IsaLevel::Baseline, Scale::Test, true)
                .expect("run");
            black_box(r.bytecodes)
        })
    });
    g.finish();
}

/// Table 8 (area/power/EDP): the analytical model.
fn table8_energy(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_energy_model");
    g.bench_function("breakdown_and_edp", |b| {
        b.iter(|| {
            let hw = tarch_energy::TypedHardware::paper_40nm();
            let br = tarch_energy::breakdown(&hw);
            black_box(tarch_energy::edp_improvement(&br, 1_000_000, 900_000))
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig5_speedups,
    fig6_instructions,
    fig78_frontend,
    fig9_type_rates,
    fig2_bytecodes,
    table8_energy
);
criterion_main!(figures);
