//! Microbenchmarks of the simulator substrates: how fast is the host-side
//! model itself (cache, TLB, predictor, TRT, tag datapath, codec)?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tarch_core::{BranchConfig, BranchPredictor, SprState, TaggedValue, TypeRuleTable};
use tarch_isa::{Instruction, TrtClass, TrtRule};
use tarch_mem::{Cache, CacheConfig, DramConfig, DramModel, Tlb};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_hit_stream", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1());
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false).hit))
    });
    c.bench_function("cache_miss_stream", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            black_box(cache.access(black_box(addr), false).hit)
        })
    });
}

fn bench_tlb_dram(c: &mut Criterion) {
    c.bench_function("tlb_hit", |b| {
        let mut tlb = Tlb::new(8);
        tlb.access(0x1000);
        b.iter(|| black_box(tlb.access(black_box(0x1234))))
    });
    c.bench_function("dram_row_hit", |b| {
        let mut dram = DramModel::new(DramConfig::paper());
        dram.access(0x4000);
        b.iter(|| black_box(dram.access(black_box(0x4040))))
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("gshare_predict_update", |b| {
        let mut p = BranchPredictor::new(BranchConfig::paper());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.predict_branch(0x1000, i % 3 != 0, 0x2000))
        })
    });
}

fn bench_trt(c: &mut Criterion) {
    c.bench_function("trt_lookup_hit", |b| {
        let mut trt = TypeRuleTable::new(8);
        for rule in luart::layout::trt_rules() {
            trt.push(rule);
        }
        b.iter(|| black_box(trt.lookup(TrtClass::Xadd, black_box(0x13), 0x13)))
    });
    c.bench_function("trt_lookup_miss", |b| {
        let mut trt = TypeRuleTable::new(8);
        trt.push(TrtRule::new(TrtClass::Xadd, 1, 1, 1));
        b.iter(|| black_box(trt.lookup(TrtClass::Xmul, black_box(9), 9)))
    });
}

fn bench_tagio(c: &mut Criterion) {
    c.bench_function("tag_extract_lua", |b| {
        let spr = SprState::lua();
        b.iter(|| black_box(spr.extract(black_box(42), black_box(0x13))))
    });
    c.bench_function("tag_extract_nanbox", |b| {
        let spr = SprState::spidermonkey();
        let boxed = jsrt::layout::box_int(12345);
        b.iter(|| black_box(spr.extract(black_box(boxed), 0)))
    });
    c.bench_function("tag_insert_nanbox", |b| {
        let spr = SprState::spidermonkey();
        let v = TaggedValue { v: 12345, t: 1, f: false };
        b.iter(|| black_box(spr.insert(black_box(v), 0)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let forms = tarch_isa::samples::all_forms();
    let words: Vec<u32> = forms.iter().map(|i| i.encode().unwrap()).collect();
    c.bench_function("isa_encode_all_forms", |b| {
        b.iter(|| {
            for i in &forms {
                black_box(i.encode().unwrap());
            }
        })
    });
    c.bench_function("isa_decode_all_forms", |b| {
        b.iter(|| {
            for w in &words {
                black_box(Instruction::decode(*w).unwrap());
            }
        })
    });
}

criterion_group!(
    components,
    bench_cache,
    bench_tlb_dram,
    bench_bpred,
    bench_trt,
    bench_tagio,
    bench_codec
);
criterion_main!(components);
