//! The paper's 11 benchmarks (Table 7), written in MiniScript.
//!
//! Each program is written once and runs on the reference interpreter and
//! on both engines at every ISA level. The paper's inputs (Table 7) are
//! available as [`Scale::Full`]; [`Scale::Default`] uses scaled-down
//! inputs sized for simulator wall-clock, and [`Scale::Test`] uses tiny
//! inputs for the test suite. Scaling inputs changes absolute counts, not
//! the bytecode *mix* or type behaviour the figures depend on.

pub use tarch_runner::Scale;

/// One benchmark of Table 7.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name (Table 7 spelling).
    pub name: &'static str,
    /// Table 7 description.
    pub description: &'static str,
    /// The paper's input parameter.
    pub paper_input: &'static str,
    source: fn(Scale) -> String,
}

impl Workload {
    /// MiniScript source at the given scale.
    pub fn source(&self, scale: Scale) -> String {
        (self.source)(scale)
    }
}

/// All 11 workloads, in Table 7 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "ackermann",
            description: "Use of the Ackermann function to provide a benchmark",
            paper_input: "7",
            source: ackermann,
        },
        Workload {
            name: "binary-trees",
            description: "Allocate and deallocate many binary trees",
            paper_input: "12",
            source: binary_trees,
        },
        Workload {
            name: "fannkuch-redux",
            description: "Indexed-access to tiny integer-sequence",
            paper_input: "9",
            source: fannkuch,
        },
        Workload {
            name: "fibo",
            description: "Calculate fibonacci number",
            paper_input: "32",
            source: fibo,
        },
        Workload {
            name: "k-nucleotide",
            description: "Hash table update and k-nucleotide strings",
            paper_input: "250,000",
            source: knucleotide,
        },
        Workload {
            name: "mandelbrot",
            description: "Generate Mandelbrot set portable bitmap file",
            paper_input: "250",
            source: mandelbrot,
        },
        Workload {
            name: "n-body",
            description: "Double-precision N-body simulation",
            paper_input: "500,000",
            source: nbody,
        },
        Workload {
            name: "n-sieve",
            description: "Count the primes from 2 to M (Sieve of Eratosthenes)",
            paper_input: "7",
            source: nsieve,
        },
        Workload {
            name: "pidigits",
            description: "Streaming arbitrary-precision arithmetic",
            paper_input: "500",
            source: pidigits,
        },
        Workload {
            name: "random",
            description: "Generate random number",
            paper_input: "300,000",
            source: random,
        },
        Workload {
            name: "spectral-norm",
            description: "Eigenvalue using the power method",
            paper_input: "500",
            source: spectral_norm,
        },
    ]
}

/// Finds a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

fn ackermann(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 3,
        Scale::Default => 4,
        Scale::Full => 7,
    };
    format!(
        "
        function ack(m, n)
            if m == 0 then return n + 1 end
            if n == 0 then return ack(m - 1, 1) end
            return ack(m - 1, ack(m, n - 1))
        end
        print(ack(3, {n}))
        "
    )
}

fn binary_trees(scale: Scale) -> String {
    let max_depth = match scale {
        Scale::Test => 4,
        Scale::Default => 7,
        Scale::Full => 12,
    };
    // Nodes are 3-element arrays: {item, left, right}; leaves use 0 as the
    // null child (integer sentinel keeps element reads monomorphic).
    format!(
        "
        function bottom_up(item, depth)
            if depth > 0 then
                local i2 = item + item
                local node = {{item, 0, 0}}
                node[2] = bottom_up(i2 - 1, depth - 1)
                node[3] = bottom_up(i2, depth - 1)
                return node
            end
            return {{item, 0, 0}}
        end
        function check(node)
            local left = node[2]
            if left == 0 then return node[1] end
            return node[1] + check(left) - check(node[3])
        end
        local max_depth = {max_depth}
        local stretch = max_depth + 1
        print(\"stretch tree of depth \" .. stretch .. \"\\t check: \" .. check(bottom_up(0, stretch)))
        local long_lived = bottom_up(0, max_depth)
        local depth = 4
        while depth <= max_depth do
            local iterations = 1
            local shift = max_depth - depth
            local j = 0
            while j < shift do
                iterations = iterations * 2
                j = j + 1
            end
            local chk = 0
            for i = 1, iterations do
                chk = chk + check(bottom_up(i, depth)) + check(bottom_up(-i, depth))
            end
            print(iterations * 2 .. \"\\t trees of depth \" .. depth .. \"\\t check: \" .. chk)
            depth = depth + 2
        end
        print(\"long lived tree of depth \" .. max_depth .. \"\\t check: \" .. check(long_lived))
        "
    )
}

fn fannkuch(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 5,
        Scale::Default => 7,
        Scale::Full => 9,
    };
    format!(
        "
        local n = {n}
        local p = {{}}
        local q = {{}}
        local s = {{}}
        for i = 1, n do p[i] = i q[i] = i s[i] = i end
        local maxflips = 0
        local checksum = 0
        local sign = 1
        local done = false
        while not done do
            local q1 = p[1]
            if q1 ~= 1 then
                for i = 2, n do q[i] = p[i] end
                local flips = 1
                while true do
                    local qq = q[q1]
                    if qq == 1 then break end
                    q[q1] = q1
                    if q1 >= 4 then
                        local i = 2
                        local j = q1 - 1
                        while i < j do
                            local t = q[i]
                            q[i] = q[j]
                            q[j] = t
                            i = i + 1
                            j = j - 1
                        end
                    end
                    q1 = qq
                    flips = flips + 1
                end
                if flips > maxflips then maxflips = flips end
                checksum = checksum + sign * flips
            end
            -- next permutation (with sign)
            if sign == 1 then
                local t = p[2]
                p[2] = p[1]
                p[1] = t
                sign = -1
            else
                local t = p[2]
                p[2] = p[3]
                p[3] = t
                sign = 1
                local broke = false
                local i = 3
                while i <= n and not broke do
                    local sx = s[i]
                    if sx ~= 1 then
                        s[i] = sx - 1
                        broke = true
                    else
                        if i == n then
                            done = true
                            broke = true
                        else
                            s[i] = i
                            local t1 = p[1]
                            for j = 1, i do p[j] = p[j + 1] end
                            p[i + 1] = t1
                        end
                    end
                    i = i + 1
                end
            end
        end
        print(checksum)
        print(\"Pfannkuchen(\" .. n .. \") = \" .. maxflips)
        "
    )
}

fn fibo(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 12,
        Scale::Default => 21,
        Scale::Full => 32,
    };
    format!(
        "
        function fib(n)
            if n < 2 then return n end
            return fib(n - 1) + fib(n - 2)
        end
        print(fib({n}))
        "
    )
}

fn knucleotide(scale: Scale) -> String {
    let len = match scale {
        Scale::Test => 120,
        Scale::Default => 1500,
        Scale::Full => 250_000,
    };
    // Deterministic pseudo-DNA (LCG), then 1- and 2-nucleotide frequency
    // counting in a string-keyed table — the paper's hash-heavy workload.
    format!(
        "
        local acgt = {{\"a\", \"c\", \"g\", \"t\"}}
        local seed = 42
        seq = {{}}   -- global: shared with report()
        for i = 1, {len} do
            seed = (seed * 3877 + 29573) % 139968
            seq[i] = acgt[1 + seed % 4]
        end
        function report(k)
            local counts = {{}}
            local n = #seq
            local total = n - k + 1
            for i = 1, total do
                local kmer = seq[i]
                local j = 1
                while j < k do
                    kmer = kmer .. seq[i + j]
                    j = j + 1
                end
                local c = counts[kmer]
                if c == nil then counts[kmer] = 1 else counts[kmer] = c + 1 end
            end
            -- Report in a fixed key order for determinism.
            local syms = {{\"a\", \"c\", \"g\", \"t\"}}
            if k == 1 then
                for i = 1, 4 do
                    local c = counts[syms[i]]
                    if c == nil then c = 0 end
                    print(syms[i] .. \" \" .. floor(c * 100000 / total))
                end
            else
                for i = 1, 4 do
                    for j = 1, 4 do
                        local key = syms[i] .. syms[j]
                        local c = counts[key]
                        if c == nil then c = 0 end
                        print(key .. \" \" .. floor(c * 100000 / total))
                    end
                end
            end
        end
        report(1)
        report(2)
        "
    )
}

fn mandelbrot(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 12,
        Scale::Default => 32,
        Scale::Full => 250,
    };
    format!(
        "
        local n = {n}
        local inside = 0
        for yi = 0, n - 1 do
            local ci = 2.0 * yi / n - 1.0
            for xi = 0, n - 1 do
                local cr = 2.0 * xi / n - 1.5
                local zr = 0.0
                local zi = 0.0
                local iter = 0
                local escaped = false
                while iter < 50 and not escaped do
                    local zr2 = zr * zr
                    local zi2 = zi * zi
                    if zr2 + zi2 > 4.0 then
                        escaped = true
                    else
                        zi = 2.0 * zr * zi + ci
                        zr = zr2 - zi2 + cr
                        iter = iter + 1
                    end
                end
                if not escaped then inside = inside + 1 end
            end
        end
        print(\"P4\")
        print(n .. \" \" .. n)
        print(inside)
        "
    )
}

fn nbody(scale: Scale) -> String {
    let steps = match scale {
        Scale::Test => 40,
        Scale::Default => 300,
        Scale::Full => 500_000,
    };
    // Bodies are string-keyed tables, like the benchmarks-game Lua
    // version: the paper notes these string-key lookups force the table
    // slow path (Section 7.1).
    format!(
        "
        PI = 3.141592653589793
        SOLAR_MASS = 4.0 * PI * PI
        DAYS_PER_YEAR = 365.24
        function body(x, y, z, vx, vy, vz, mass)
            local b = {{}}
            b.x = x b.y = y b.z = z
            b.vx = vx b.vy = vy b.vz = vz
            b.mass = mass
            return b
        end
        bodies = {{}}
        bodies[1] = body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS)
        bodies[2] = body(4.84143144246472090, -1.16032004402742839, -0.103622044471123109,
            0.00166007664274403694 * DAYS_PER_YEAR, 0.00769901118419740425 * DAYS_PER_YEAR,
            -0.0000690460016972063023 * DAYS_PER_YEAR, 0.000954791938424326609 * SOLAR_MASS)
        bodies[3] = body(8.34336671824457987, 4.12479856412430479, -0.403523417114321381,
            -0.00276742510726862411 * DAYS_PER_YEAR, 0.00499852801234917238 * DAYS_PER_YEAR,
            0.0000230417297573763929 * DAYS_PER_YEAR, 0.000285885980666130812 * SOLAR_MASS)
        bodies[4] = body(12.8943695621391310, -15.1111514016986312, -0.223307578892655734,
            0.00296460137564761618 * DAYS_PER_YEAR, 0.00237847173959480950 * DAYS_PER_YEAR,
            -0.0000296589568540237556 * DAYS_PER_YEAR, 0.0000436624404335156298 * SOLAR_MASS)
        bodies[5] = body(15.3796971148509165, -25.9193146099879641, 0.179258772950371181,
            0.00268067772490389322 * DAYS_PER_YEAR, 0.00162824170038242295 * DAYS_PER_YEAR,
            -0.0000951592254519715870 * DAYS_PER_YEAR, 0.0000515138902046611451 * SOLAR_MASS)
        n = #bodies
        -- offset momentum
        local px = 0.0
        local py = 0.0
        local pz = 0.0
        for i = 1, n do
            local b = bodies[i]
            px = px + b.vx * b.mass
            py = py + b.vy * b.mass
            pz = pz + b.vz * b.mass
        end
        bodies[1].vx = -px / SOLAR_MASS
        bodies[1].vy = -py / SOLAR_MASS
        bodies[1].vz = -pz / SOLAR_MASS
        function energy()
            local e = 0.0
            for i = 1, n do
                local b = bodies[i]
                e = e + 0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz)
                for j = i + 1, n do
                    local b2 = bodies[j]
                    local dx = b.x - b2.x
                    local dy = b.y - b2.y
                    local dz = b.z - b2.z
                    e = e - b.mass * b2.mass / sqrt(dx * dx + dy * dy + dz * dz)
                end
            end
            return e
        end
        function advance(dt)
            for i = 1, n do
                local b = bodies[i]
                for j = i + 1, n do
                    local b2 = bodies[j]
                    local dx = b.x - b2.x
                    local dy = b.y - b2.y
                    local dz = b.z - b2.z
                    local d2 = dx * dx + dy * dy + dz * dz
                    local mag = dt / (d2 * sqrt(d2))
                    local bm = b2.mass * mag
                    b.vx = b.vx - dx * bm
                    b.vy = b.vy - dy * bm
                    b.vz = b.vz - dz * bm
                    bm = b.mass * mag
                    b2.vx = b2.vx + dx * bm
                    b2.vy = b2.vy + dy * bm
                    b2.vz = b2.vz + dz * bm
                end
            end
            for i = 1, n do
                local b = bodies[i]
                b.x = b.x + dt * b.vx
                b.y = b.y + dt * b.vy
                b.z = b.z + dt * b.vz
            end
        end
        local e0 = energy()
        print(floor(e0 * 1000000000))
        for step = 1, {steps} do advance(0.01) end
        local e1 = energy()
        print(floor(e1 * 1000000000))
        "
    )
}

fn nsieve(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 0,
        Scale::Default => 1,
        Scale::Full => 7,
    };
    // Three sieves at m, m/2, m/4 like the benchmarks-game original.
    format!(
        "
        function nsieve(m)
            local flags = {{}}
            for i = 2, m do flags[i] = true end
            local count = 0
            for i = 2, m do
                if flags[i] then
                    count = count + 1
                    local k = i + i
                    while k <= m do
                        flags[k] = false
                        k = k + i
                    end
                end
            end
            return count
        end
        local n = {n}
        for i = 0, 2 do
            local p = n - i
            if p < 0 then p = 0 end
            local m = 10000
            local j = 0
            while j < p do
                m = m * 2
                j = j + 1
            end
            print(\"Primes up to \" .. m .. \" \" .. nsieve(m))
        end
        "
    )
}

fn pidigits(scale: Scale) -> String {
    let digits = match scale {
        Scale::Test => 12,
        Scale::Default => 40,
        Scale::Full => 500,
    };
    // Rabinowitz–Wagon spigot over an array of small integers: streaming
    // "arbitrary-precision" arithmetic built from tables, like the
    // benchmark's role in the paper.
    format!(
        "
        local ndigits = {digits}
        local len = ndigits * 10 // 3 + 2
        local a = {{}}
        for i = 1, len do a[i] = 2 end
        local out = \"\"
        local printed = 0
        local nines = 0
        local predigit = 0
        local started = false
        for d = 1, ndigits + 2 do
            local q = 0
            for i = len, 1, -1 do
                local x = 10 * a[i] + q * i
                a[i] = x % (2 * i - 1)
                q = x // (2 * i - 1)
            end
            a[1] = q % 10
            q = q // 10
            if q == 9 then
                nines = nines + 1
            elseif q == 10 then
                out = out .. (predigit + 1)
                for k = 1, nines do out = out .. 0 end
                predigit = 0
                nines = 0
                printed = printed + 1
            else
                if started then
                    out = out .. predigit
                    printed = printed + 1
                end
                started = true
                predigit = q
                for k = 1, nines do
                    out = out .. 9
                    printed = printed + 1
                end
                nines = 0
            end
            if printed >= ndigits then break end
        end
        print(sub(out, 1, ndigits))
        "
    )
}

fn random(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 400,
        Scale::Default => 6_000,
        Scale::Full => 300_000,
    };
    format!(
        "
        IM = 139968
        IA = 3877
        IC = 29573
        seed = 42
        function gen_random(max)
            seed = (seed * IA + IC) % IM
            return max * seed / IM
        end
        local r = 0.0
        for i = 1, {n} do
            r = gen_random(100.0)
        end
        print(floor(r * 1000000000))
        "
    )
}

fn spectral_norm(scale: Scale) -> String {
    let n = match scale {
        Scale::Test => 6,
        Scale::Default => 16,
        Scale::Full => 500,
    };
    format!(
        "
        n = {n}
        function A(i, j)
            return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)
        end
        function Av(x, y)
            for i = 0, n - 1 do
                local s = 0.0
                for j = 0, n - 1 do
                    s = s + A(i, j) * x[j + 1]
                end
                y[i + 1] = s
            end
        end
        function Atv(x, y)
            for i = 0, n - 1 do
                local s = 0.0
                for j = 0, n - 1 do
                    s = s + A(j, i) * x[j + 1]
                end
                y[i + 1] = s
            end
        end
        function AtAv(x, y, t)
            Av(x, t)
            Atv(t, y)
        end
        local u = {{}}
        local v = {{}}
        local t = {{}}
        for i = 1, n do u[i] = 1.0 v[i] = 0.0 t[i] = 0.0 end
        for i = 1, 10 do
            AtAv(u, v, t)
            AtAv(v, u, t)
        end
        local vBv = 0.0
        local vv = 0.0
        for i = 1, n do
            vBv = vBv + u[i] * v[i]
            vv = vv + v[i] * v[i]
        end
        print(floor(sqrt(vBv / vv) * 1000000000))
        "
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniscript::{parse, Interp};

    #[test]
    fn eleven_workloads_matching_table7() {
        let w = all();
        assert_eq!(w.len(), 11);
        assert_eq!(w[0].name, "ackermann");
        assert_eq!(w[10].name, "spectral-norm");
        assert!(by_name("fibo").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_sources_parse_and_run_at_test_scale() {
        for w in all() {
            let src = w.source(Scale::Test);
            let chunk = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut interp = Interp::new();
            interp.run(&chunk).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(!interp.output().is_empty(), "{} printed nothing", w.name);
        }
    }

    #[test]
    fn known_outputs_at_test_scale() {
        let run = |name: &str| {
            let src = by_name(name).unwrap().source(Scale::Test);
            let chunk = parse(&src).unwrap();
            let mut i = Interp::new();
            i.run(&chunk).unwrap();
            i.output().to_string()
        };
        assert_eq!(run("fibo"), "144\n");
        assert_eq!(run("ackermann"), "61\n"); // ack(3,3)
        assert!(run("n-sieve").contains("Primes up to 10000 1229"));
        assert!(run("pidigits").starts_with("314159265358"));
        assert!(run("fannkuch-redux").contains("Pfannkuchen(5) = 7"));
    }
}
