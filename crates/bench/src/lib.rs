//! # tarch-bench — workloads and experiment harness
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`workloads`] — the 11 benchmarks of Table 7, written in MiniScript,
//!   at three input scales;
//! * [`harness`] — the workload × engine × ISA-level experiment matrix
//!   with derived metrics (speedups, instruction reduction, MPKI,
//!   geomeans);
//! * [`figures`] — one renderer per evaluation figure (2a, 2b, 5–9) and
//!   Table 8;
//! * [`paper_tables`] — printable versions of configuration Tables 1–7,
//!   generated from the actual code.
//!
//! The `repro` binary exposes all of it:
//!
//! ```text
//! cargo run -p tarch-bench --release --bin repro -- all
//! cargo run -p tarch-bench --release --bin repro -- fig5 --full
//! ```

pub mod figures;
pub mod harness;
pub mod paper_tables;
pub mod workloads;

pub use harness::{geomean, run_cell, CellResult, EngineKind, Matrix};
pub use workloads::{Scale, Workload};
