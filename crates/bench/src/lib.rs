//! # tarch-bench — workloads and experiment harness
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`workloads`] — the 11 benchmarks of Table 7, written in MiniScript,
//!   at three input scales;
//! * [`harness`] — the workload × engine × ISA-level experiment matrix
//!   with derived metrics (speedups, instruction reduction, MPKI,
//!   geomeans);
//! * [`figures`] — one renderer per evaluation figure (2a, 2b, 5–9) and
//!   Table 8;
//! * [`paper_tables`] — printable versions of configuration Tables 1–7,
//!   generated from the actual code.
//!
//! Matrix execution runs on the [`tarch_runner`] worker pool: cells run
//! in parallel (`repro -j N`), results are cached under
//! `target/tarch-cache/`, and each full run can be serialized to a
//! versioned `BENCH_<timestamp>.json` artifact that the figure renderers
//! reload (`repro --from-json`).
//!
//! The `repro` binary exposes all of it:
//!
//! ```text
//! cargo run -p tarch-bench --release --bin repro -- all
//! cargo run -p tarch-bench --release --bin repro -- fig5 --full -j 8
//! cargo run -p tarch-bench --release --bin repro -- all --from-json BENCH_1700000000.json
//! ```

pub mod figures;
pub mod harness;
pub mod paper_tables;
pub mod workloads;

pub use harness::{
    geomean, run_cell, CellResult, EngineKind, Matrix, MatrixOptions, MatrixRun,
};
pub use workloads::{Scale, Workload};
