//! Printable versions of the paper's configuration tables (1–7), generated
//! from the *actual code* wherever a table describes something this
//! repository implements — the ISA listing comes from `tarch-isa`, SPR and
//! TRT settings from the engine layouts, evaluation parameters from
//! `CoreConfig::paper()`.

use crate::workloads;
use std::fmt::Write as _;
use tarch_core::CoreConfig;
use tarch_isa::samples;

/// Table 1: IoT device platforms (verbatim reference data; context only).
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: IoT device platforms (reference data from the paper)");
    let rows = [
        ("Platform", "SAMA5D3", "Galileo Gen 2", "Arduino Yun", "LaunchPad", "ARM mbed"),
        ("Processor", "Cortex-A5", "Quark X1000", "MIPS 24K", "Cortex-M4", "Cortex-M0"),
        ("ISA", "ARMv7-A", "x86 (IA32)", "MIPS32", "ARMv7-M", "ARMv6-M"),
        ("Clock", "536MHz", "400MHz", "400MHz", "80MHz", "48MHz"),
        ("L1 Cache", "64KB", "16KB", "0-64KB", "-", "-"),
        ("Memory", "256MB DDR2", "256MB DDR3", "64MB DDR2", "32KB SRAM", "8KB SRAM"),
        ("OS", "Linux", "Yocto Linux", "OpenWrt", "TI RTOS", "mbed OS"),
        ("Price '16", "$159", "$64.99", "$74.95", "$12.99", "$10.32"),
    ];
    for r in rows {
        let _ = writeln!(out, "{:<10} {:>12} {:>14} {:>12} {:>10} {:>10}", r.0, r.1, r.2, r.3, r.4, r.5);
    }
    out
}

/// Table 2: the extended ISA, generated from the instruction definitions.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: the Typed Architecture ISA extension (from tarch-isa)");
    for instr in samples::all_forms() {
        if instr.is_typed_ext() || instr.is_checked_load_ext() {
            let kind = if instr.is_typed_ext() { "typed" } else { "checked-load" };
            let _ = writeln!(out, "  [{kind:>12}]  {instr}");
        }
    }
    out
}

/// Table 3: the modified (hot) bytecodes in both VMs.
pub fn table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: modified bytecodes (from the engine bytecode definitions)");
    let _ = writeln!(out, "\n[luart — register VM]");
    for op in luart::Op::ALL.into_iter().filter(|o| o.is_retargeted()) {
        let _ = writeln!(out, "  {op}");
    }
    let _ = writeln!(out, "\n[jsrt — stack VM]");
    for op in jsrt::Op::ALL.into_iter().filter(|o| o.is_retargeted()) {
        let _ = writeln!(out, "  {op}");
    }
    out
}

/// Table 4: special-purpose register settings, read from the engine
/// layouts.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: special-purpose register settings (from the engine layouts)");
    let lua = luart::layout::spr_settings();
    let js = jsrt::layout::spr_settings();
    let _ = writeln!(out, "{:<22} {:>14} {:>20}", "", "Lua (luart)", "SpiderMonkey (jsrt)");
    let _ = writeln!(out, "{:<22} {:>#14b} {:>#20b}", "R_offset", lua.offset, js.offset);
    let _ = writeln!(out, "{:<22} {:>14} {:>20}", "R_shift", lua.shift, js.shift);
    let _ = writeln!(out, "{:<22} {:>#14x} {:>#20x}", "R_mask", lua.mask, js.mask);
    let _ = writeln!(out, "{:<22} {:>14} {:>20}", "NaN detection", lua.nan_detect(), js.nan_detect());
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>20}",
        "overflow detection",
        lua.overflow_detect(),
        js.overflow_detect()
    );
    let _ = writeln!(
        out,
        "(bit 3 of R_offset is this implementation's overflow-detect enable; the\n paper's 3-bit field is bits 2:0)"
    );
    out
}

/// Table 5: Type Rule Table contents, read from the engine layouts.
pub fn table5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Type Rule Table settings (from the engine layouts)");
    for (name, rules) in
        [("luart", luart::layout::trt_rules()), ("jsrt", jsrt::layout::trt_rules())]
    {
        let _ = writeln!(out, "\n[{name}] ({} rules, 8-entry TRT)", rules.len());
        let _ = writeln!(out, "  {:<8} {:>8} {:>8} {:>8}", "opcode", "in1", "in2", "out");
        for r in rules {
            let _ = writeln!(
                out,
                "  {:<8} {:>#8x} {:>#8x} {:>#8x}",
                r.class.to_string(),
                r.in1,
                r.in2,
                r.out
            );
        }
    }
    out
}

/// Table 6: evaluation parameters, read from `CoreConfig::paper()`.
pub fn table6() -> String {
    let c = CoreConfig::paper();
    let mut out = String::new();
    let _ = writeln!(out, "Table 6: evaluation parameters (from CoreConfig::paper())");
    let _ = writeln!(out, "  ISA            64-bit TRV64 (RISC-V v2-class)");
    let _ = writeln!(out, "  Architecture   single-issue in-order, 50MHz model");
    let _ = writeln!(out, "  Pipeline       5 stages (timing scoreboard model)");
    let _ = writeln!(
        out,
        "  Branch pred.   {}-entry gshare ({}-bit history), {}-entry FA BTB, {}-entry RAS, {}-cycle miss",
        c.branch.gshare_entries,
        c.branch.history_bits,
        c.branch.btb_entries,
        c.branch.ras_entries,
        c.branch.miss_penalty
    );
    let _ = writeln!(
        out,
        "  L1 I-cache     {}KB, {}-way, {}B lines, LRU",
        c.icache.size_bytes / 1024,
        c.icache.ways,
        c.icache.line_bytes
    );
    let _ = writeln!(
        out,
        "  L1 D-cache     {}KB, {}-way, {}B lines, LRU",
        c.dcache.size_bytes / 1024,
        c.dcache.ways,
        c.dcache.line_bytes
    );
    let _ = writeln!(out, "  TLBs           {}-entry I-TLB, {}-entry D-TLB", c.itlb_entries, c.dtlb_entries);
    let _ = writeln!(
        out,
        "  Memory         DDR3-1066, tCL/tRCD/tRP = {}/{}/{}, {} banks",
        c.dram.t_cl, c.dram.t_rcd, c.dram.t_rp, c.dram.banks
    );
    let _ = writeln!(out, "  TRT            {} entries", c.trt_entries);
    let _ = writeln!(out, "  Workloads      luart (Lua-5.3-like), jsrt (SpiderMonkey-17-like)");
    out
}

/// Table 7: the benchmark list, from the workload registry.
pub fn table7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 7: benchmarks (from the workload registry)");
    let _ = writeln!(out, "  {:<16} {:>12}  description", "input script", "paper input");
    for w in workloads::all() {
        let _ = writeln!(out, "  {:<16} {:>12}  {}", w.name, w.paper_input, w.description);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_render() {
        assert!(table1().contains("Galileo"));
        let t2 = table2();
        assert!(t2.contains("xadd") && t2.contains("chklb") && t2.contains("tld"));
        let t3 = table3();
        assert!(t3.contains("GETTABLE") && t3.contains("GETELEM"));
        let t4 = table4();
        assert!(t4.contains("R_shift") && t4.contains("47"));
        let t5 = table5();
        assert!(t5.contains("tchk"));
        let t6 = table6();
        assert!(t6.contains("gshare") && t6.contains("16KB"));
        let t7 = table7();
        assert!(t7.contains("spectral-norm") && t7.contains("250,000"));
    }
}
