//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <subcommand> [--full | --test-scale] [--verbose]
//!
//! subcommands:
//!   table1..table8   configuration tables / hardware overhead
//!   fig1             baseline vs typed ADD handler disassembly (Figs 1c/3)
//!   fig2a fig2b      bytecode breakdown / instructions per bytecode
//!   fig5 fig6 fig7 fig8 fig9
//!   all              everything (shares one simulation matrix)
//! ```

use std::env;
use std::process::ExitCode;
use tarch_bench::figures;
use tarch_bench::harness::Matrix;
use tarch_bench::paper_tables as tables;
use tarch_bench::workloads::{self, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut verbose = false;
    let mut command = None;
    for a in &args {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--test-scale" => scale = Scale::Test,
            "--verbose" | "-v" => verbose = true,
            c if command.is_none() => command = Some(c.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(command) = command else {
        eprintln!("usage: repro <table1..table8|fig1|fig2a|fig2b|fig5..fig9|all> [--full] [--verbose]");
        return ExitCode::FAILURE;
    };

    match run(&command, scale, verbose) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn matrix(scale: Scale, verbose: bool) -> Result<Matrix, String> {
    if verbose {
        eprintln!("running the 11 x 2 x 3 simulation matrix (this is a cycle simulator)...");
    }
    Matrix::run(&workloads::all(), scale, verbose)
}

fn run(command: &str, scale: Scale, verbose: bool) -> Result<(), String> {
    match command {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" => print!("{}", tables::table3()),
        "table4" => print!("{}", tables::table4()),
        "table5" => print!("{}", tables::table5()),
        "table6" => print!("{}", tables::table6()),
        "table7" => print!("{}", tables::table7()),
        "fig1" | "fig3" => print!("{}", figures::fig1()?),
        "fig2a" => print!("{}", figures::fig2a(scale)?),
        "fig2b" => print!("{}", figures::fig2b()?),
        "fig9" => print!("{}", figures::fig9(scale)?),
        "fig5" | "fig6" | "fig7" | "fig8" | "table8" => {
            let m = matrix(scale, verbose)?;
            let s = match command {
                "fig5" => figures::fig5(&m),
                "fig6" => figures::fig6(&m),
                "fig7" => figures::fig7(&m),
                "fig8" => figures::fig8(&m),
                _ => figures::table8(&m),
            };
            print!("{s}");
        }
        "all" => {
            print!("{}", tables::table1());
            println!();
            print!("{}", tables::table2());
            println!();
            print!("{}", tables::table3());
            println!();
            print!("{}", tables::table4());
            println!();
            print!("{}", tables::table5());
            println!();
            print!("{}", tables::table6());
            println!();
            print!("{}", tables::table7());
            println!();
            print!("{}", figures::fig1()?);
            println!();
            print!("{}", figures::fig2a(scale)?);
            println!();
            print!("{}", figures::fig2b()?);
            println!();
            let m = matrix(scale, verbose)?;
            print!("{}", figures::fig5(&m));
            println!();
            print!("{}", figures::fig6(&m));
            println!();
            print!("{}", figures::fig7(&m));
            println!();
            print!("{}", figures::fig8(&m));
            println!();
            print!("{}", figures::fig9(scale)?);
            println!();
            print!("{}", figures::table8(&m));
        }
        other => return Err(format!("unknown subcommand `{other}`")),
    }
    Ok(())
}
