//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <subcommand> [options]
//!
//! subcommands:
//!   table1..table8   configuration tables / hardware overhead
//!   fig1             baseline vs typed ADD handler disassembly (Figs 1c/3)
//!   fig2a fig2b      bytecode breakdown / instructions per bytecode
//!   fig5 fig6 fig7 fig8 fig9
//!   all              everything (shares one simulation matrix)
//!   selftest         quick 2-workload parallel matrix at test scale
//!   bench            host-throughput measurement: per-cell and aggregate
//!                    simulated MIPS, always simulating (cache bypassed)
//!   trace CELL       run one cell serially with the observability layer
//!                    on and print its hot-PC attribution table; CELL is
//!                    workload/engine/level, e.g. k-nucleotide/lua/typed
//!   fleet MIX        multi-tenant serving run: stamp tenants from VM
//!                    snapshots and schedule them across shards under
//!                    per-tenant cycle budgets; MIX is a comma-separated
//!                    list of workload[/engine[/level]] entries, e.g.
//!                    fibo,ackermann/js,n-sieve/lua/baseline
//!   pgo [WORKLOADS]  two-phase profile-guided optimization: an
//!                    instrumented profile run (pair histogram + hot-PC
//!                    sampling), then an optimized run with the derived
//!                    per-workload fusion table, sample-triggered tier-2
//!                    promotion and trace-driven superblocks, then a
//!                    per-workload A/B report with a bit-identical
//!                    counter check; WORKLOADS is a comma-separated
//!                    list (default: every workload)
//!
//! options:
//!   --full | --test-scale   input scale (default: the paper's scale)
//!   -j N | --jobs N         worker threads (default: one per core)
//!   --no-cache              bypass the persistent result cache
//!   --steps N               per-job step budget (default 2e10)
//!   --workload NAME         restrict `bench` to one workload
//!   --profile-pairs         (bench) histogram of adjacent same-block
//!                           opcode pairs (the macro-op fusion evidence)
//!                           instead of throughput measurement
//!   --no-fuse               disable macro-op fusion in the simulated core
//!   --no-chain              disable basic-block chaining in the core
//!   --no-tier2              disable tier-2 template compilation of hot
//!                           blocks (the tier-1 interpreter runs everything)
//!   --tenants N             (fleet) concurrent tenant count (default 16)
//!   --shards N              (fleet) scheduler shard count (default 4)
//!   --budget N              (fleet) per-tenant cycle budget per slice
//!                           (default 50000)
//!   --seed N                (fleet) arrival-order / work-stealing seed
//!                           (default 0)
//!   --fresh                 (fleet) construct every tenant from scratch
//!                           instead of snapshot cloning (the baseline
//!                           the snapshot path is measured against)
//!   --validate              (fleet) additionally run every tenant
//!                           serially on a fresh VM and require
//!                           bit-identical per-tenant counters
//!   --sample-period N       (trace, pgo) sampling-profiler period in
//!                           simulated cycles (default 10000)
//!   --profile-out PATH      (bench --profile-pairs, pgo) write the
//!                           recorded profile as tarch-pgo/v1 JSON
//!   --profile-in PATH       (pgo) reuse a previously recorded profile
//!                           file for the optimization inputs instead of
//!                           this run's own measurements
//!   --trace-out PATH        (trace) write a Chrome trace_event JSON to
//!                           PATH (open in ui.perfetto.dev) and folded
//!                           flamegraph stacks to PATH with a .folded
//!                           extension
//!   --emit-json PATH        write the run artifact to PATH
//!   --out DIR               directory for auto-emitted artifacts
//!                           (default: bench-artifacts/)
//!   --from-json PATH        render figures from a BENCH_*.json artifact
//!                           instead of simulating
//!   --compare PATH          (bench) diff host throughput against a
//!                           baseline artifact, per cell and aggregate
//!   --min-ratio R           (bench, with --compare) exit nonzero when
//!                           aggregate MIPS < R x the baseline's
//!   --verbose | -v          progress + run statistics on stderr
//! ```
//!
//! Simulation results are cached under `target/tarch-cache/` keyed by the
//! job's content (program source + configuration); a repeated invocation
//! is served entirely from cache. `repro all` and `repro bench`
//! additionally write a timestamped `BENCH_<unix>.json` artifact into
//! `bench-artifacts/` (override the directory with `--out`, or the exact
//! path with `--emit-json`).

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tarch_bench::figures;
use tarch_bench::harness::{default_cache_dir, Matrix, MatrixOptions, MAX_STEPS};
use tarch_bench::paper_tables as tables;
use tarch_bench::workloads::{self, Scale};
use tarch_core::trace::PcProfile;
use tarch_core::{CoreConfig, FusionTable, IsaLevel, PairProfile, TraceConfig};
use tarch_runner::{BenchArtifact, EngineKind, PgoProfile, PgoSummary, PgoWorkload};

struct Opts {
    scale: Scale,
    verbose: bool,
    jobs: usize,
    no_cache: bool,
    step_budget: u64,
    workload: Option<String>,
    profile_pairs: bool,
    no_fuse: bool,
    no_chain: bool,
    no_tier2: bool,
    tenants: usize,
    shards: usize,
    budget: u64,
    seed: u64,
    fresh: bool,
    validate: bool,
    sample_period: Option<u64>,
    trace_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    profile_in: Option<PathBuf>,
    emit_json: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    from_json: Option<PathBuf>,
    compare: Option<PathBuf>,
    min_ratio: Option<f64>,
}

impl Opts {
    /// The simulated core configuration for this invocation: the paper's
    /// core with the requested fast paths toggled off. Toggles feed the
    /// job content key, so A/B runs never collide in the result cache.
    fn core(&self) -> CoreConfig {
        CoreConfig {
            fuse: !self.no_fuse,
            chain_blocks: !self.no_chain,
            tier2: !self.no_tier2,
            ..CoreConfig::paper()
        }
    }
}

const USAGE: &str = "usage: repro <table1..table8|fig1|fig2a|fig2b|fig5..fig9|all|selftest|bench\
                     |trace CELL|fleet MIX|pgo [WORKLOADS]> \
                     [--full|--test-scale] [-j N] [--no-cache] [--steps N] [--workload NAME] \
                     [--profile-pairs] [--no-fuse] [--no-chain] [--no-tier2] \
                     [--tenants N] [--shards N] [--budget N] [--seed N] [--fresh] [--validate] \
                     [--sample-period N] [--trace-out PATH] \
                     [--profile-out PATH] [--profile-in PATH] \
                     [--emit-json PATH] [--out DIR] [--from-json PATH] [--compare PATH] \
                     [--min-ratio R] [--verbose]";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut opts = Opts {
        scale: Scale::Default,
        verbose: false,
        jobs: 0,
        no_cache: false,
        step_budget: MAX_STEPS,
        workload: None,
        profile_pairs: false,
        no_fuse: false,
        no_chain: false,
        no_tier2: false,
        tenants: 16,
        shards: 4,
        budget: 50_000,
        seed: 0,
        fresh: false,
        validate: false,
        sample_period: None,
        trace_out: None,
        profile_out: None,
        profile_in: None,
        emit_json: None,
        out_dir: None,
        from_json: None,
        compare: None,
        min_ratio: None,
    };
    let mut command = None;
    let mut cell = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match a {
                "--full" => opts.scale = Scale::Full,
                "--test-scale" => opts.scale = Scale::Test,
                "--verbose" | "-v" => opts.verbose = true,
                "--no-cache" => opts.no_cache = true,
                "-j" | "--jobs" => {
                    opts.jobs = value(a)?
                        .parse()
                        .map_err(|_| format!("{a} needs a number of workers"))?;
                }
                "--steps" => {
                    opts.step_budget = value(a)?
                        .parse()
                        .map_err(|_| format!("{a} needs a step count"))?;
                }
                "--workload" => opts.workload = Some(value(a)?),
                "--profile-pairs" => opts.profile_pairs = true,
                "--no-fuse" => opts.no_fuse = true,
                "--no-chain" => opts.no_chain = true,
                "--no-tier2" => opts.no_tier2 = true,
                "--tenants" => {
                    opts.tenants = value(a)?
                        .parse()
                        .map_err(|_| format!("{a} needs a tenant count"))?;
                }
                "--shards" => {
                    opts.shards = value(a)?
                        .parse()
                        .map_err(|_| format!("{a} needs a shard count"))?;
                }
                "--budget" => {
                    opts.budget = value(a)?
                        .parse()
                        .map_err(|_| format!("{a} needs a cycle count"))?;
                }
                "--seed" => {
                    opts.seed =
                        value(a)?.parse().map_err(|_| format!("{a} needs a number"))?;
                }
                "--fresh" => opts.fresh = true,
                "--validate" => opts.validate = true,
                "--sample-period" => {
                    opts.sample_period = Some(
                        value(a)?
                            .parse()
                            .map_err(|_| format!("{a} needs a cycle count"))?,
                    );
                }
                "--trace-out" => opts.trace_out = Some(PathBuf::from(value(a)?)),
                "--profile-out" => opts.profile_out = Some(PathBuf::from(value(a)?)),
                "--profile-in" => opts.profile_in = Some(PathBuf::from(value(a)?)),
                "--emit-json" => opts.emit_json = Some(PathBuf::from(value(a)?)),
                "--out" => opts.out_dir = Some(PathBuf::from(value(a)?)),
                "--from-json" => opts.from_json = Some(PathBuf::from(value(a)?)),
                "--compare" => opts.compare = Some(PathBuf::from(value(a)?)),
                "--min-ratio" => {
                    opts.min_ratio = Some(
                        value(a)?.parse().map_err(|_| format!("{a} needs a ratio"))?,
                    );
                }
                c if command.is_none() && !c.starts_with('-') => command = Some(c.to_string()),
                c if matches!(command.as_deref(), Some("trace" | "fleet" | "pgo"))
                    && cell.is_none()
                    && !c.starts_with('-') =>
                {
                    cell = Some(c.to_string());
                }
                other => return Err(format!("unexpected argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    let Some(command) = command else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if (opts.compare.is_some() || opts.min_ratio.is_some()) && command != "bench" {
        eprintln!("error: --compare/--min-ratio only apply to `bench`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.min_ratio.is_some() && opts.compare.is_none() {
        eprintln!("error: --min-ratio needs --compare\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.profile_pairs && command != "bench" {
        eprintln!("error: --profile-pairs only applies to `bench`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.sample_period.is_some() && command != "trace" && command != "pgo" {
        eprintln!("error: --sample-period only applies to `trace` and `pgo`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.trace_out.is_some() && command != "trace" {
        eprintln!("error: --trace-out only applies to `trace`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.profile_out.is_some() && command != "pgo" && !(command == "bench" && opts.profile_pairs)
    {
        eprintln!("error: --profile-out only applies to `pgo` and `bench --profile-pairs`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.profile_in.is_some() && command != "pgo" {
        eprintln!("error: --profile-in only applies to `pgo`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if command == "trace" && cell.is_none() {
        eprintln!(
            "error: trace needs a cell, e.g. `repro trace k-nucleotide/lua/typed`\n{USAGE}"
        );
        return ExitCode::FAILURE;
    }
    if (opts.fresh || opts.validate) && command != "fleet" {
        eprintln!("error: --fresh/--validate only apply to `fleet`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if command == "fleet" && cell.is_none() {
        eprintln!("error: fleet needs a workload mix, e.g. `repro fleet fibo,ackermann/js`\n{USAGE}");
        return ExitCode::FAILURE;
    }

    match run(&command, &opts, cell.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Produces the matrix: reloaded from an artifact when `--from-json` was
/// given, otherwise simulated on the worker pool (with caching unless
/// `--no-cache`). Returns the artifact of the run when one was produced.
fn matrix(opts: &Opts, profiled: bool) -> Result<(Matrix, Option<BenchArtifact>), String> {
    if let Some(path) = &opts.from_json {
        let artifact = BenchArtifact::read(path)?;
        if opts.verbose {
            eprintln!(
                "loaded {} job(s) from {} (scale {}, created {})",
                artifact.outcomes.len(),
                path.display(),
                artifact.scale.id(),
                artifact.created_unix,
            );
        }
        let m = Matrix::from_artifact(&artifact)?;
        return Ok((m, Some(artifact)));
    }
    if opts.verbose {
        eprintln!("running the workload x engine x ISA-level simulation matrix...");
    }
    let mopts = MatrixOptions {
        workers: opts.jobs,
        cache_dir: (!opts.no_cache).then(default_cache_dir),
        step_budget: opts.step_budget,
        profiled,
        progress: opts.verbose,
        core: opts.core(),
    };
    let run = Matrix::run_with(&workloads::all(), opts.scale, &mopts)?;
    if opts.verbose {
        eprintln!("{}", run.stats.summary());
    }
    let artifact = run.artifact();
    Ok((run.matrix, Some(artifact)))
}

fn emit(opts: &Opts, command: &str, artifact: Option<&BenchArtifact>) -> Result<(), String> {
    let Some(artifact) = artifact else { return Ok(()) };
    // Explicit --emit-json always wins; `all`, `bench`, `fleet` and
    // `pgo` also auto-emit a timestamped artifact next to the working
    // directory unless the matrix itself came from an artifact.
    let path = match (&opts.emit_json, command) {
        (Some(p), _) => Some(p.clone()),
        (None, "all" | "bench" | "fleet" | "pgo") if opts.from_json.is_none() => {
            let dir =
                opts.out_dir.clone().unwrap_or_else(|| PathBuf::from("bench-artifacts"));
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("create {}: {e}", dir.display()))?;
            Some(dir.join(artifact.default_filename()))
        }
        _ => None,
    };
    if let Some(path) = path {
        artifact.write(&path)?;
        eprintln!("wrote run artifact {}", path.display());
    }
    Ok(())
}

fn run(command: &str, opts: &Opts, cell: Option<&str>) -> Result<(), String> {
    match command {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" => print!("{}", tables::table3()),
        "table4" => print!("{}", tables::table4()),
        "table5" => print!("{}", tables::table5()),
        "table6" => print!("{}", tables::table6()),
        "table7" => print!("{}", tables::table7()),
        "fig1" | "fig3" => print!("{}", figures::fig1()?),
        "fig2a" => print!("{}", figures::fig2a(opts.scale)?),
        "fig2b" => print!("{}", figures::fig2b()?),
        "fig9" => {
            let (m, artifact) = matrix(opts, true)?;
            print!("{}", figures::fig9(&m)?);
            emit(opts, command, artifact.as_ref())?;
        }
        "fig5" | "fig6" | "fig7" | "fig8" | "table8" => {
            let (m, artifact) = matrix(opts, false)?;
            let s = match command {
                "fig5" => figures::fig5(&m)?,
                "fig6" => figures::fig6(&m)?,
                "fig7" => figures::fig7(&m)?,
                "fig8" => figures::fig8(&m)?,
                _ => figures::table8(&m)?,
            };
            print!("{s}");
            emit(opts, command, artifact.as_ref())?;
        }
        "all" => {
            print!("{}", tables::table1());
            println!();
            print!("{}", tables::table2());
            println!();
            print!("{}", tables::table3());
            println!();
            print!("{}", tables::table4());
            println!();
            print!("{}", tables::table5());
            println!();
            print!("{}", tables::table6());
            println!();
            print!("{}", tables::table7());
            println!();
            print!("{}", figures::fig1()?);
            println!();
            print!("{}", figures::fig2a(opts.scale)?);
            println!();
            print!("{}", figures::fig2b()?);
            println!();
            let (m, artifact) = matrix(opts, true)?;
            print!("{}", figures::fig5(&m)?);
            println!();
            print!("{}", figures::fig6(&m)?);
            println!();
            print!("{}", figures::fig7(&m)?);
            println!();
            print!("{}", figures::fig8(&m)?);
            println!();
            print!("{}", figures::fig9(&m)?);
            println!();
            print!("{}", figures::table8(&m)?);
            emit(opts, command, artifact.as_ref())?;
        }
        "selftest" => return selftest(opts),
        "bench" => return bench(opts),
        "trace" => return trace_cell(opts, cell.expect("checked in main")),
        "fleet" => return fleet(opts, cell.expect("checked in main")),
        "pgo" => return pgo(opts, cell),
        other => return Err(format!("unknown subcommand `{other}`")),
    }
    Ok(())
}

/// Host-throughput measurement: runs the matrix with the cache bypassed
/// (measurement must simulate, not replay) and reports simulated
/// instructions per host second for every cell plus the aggregate that
/// lands in the artifact's `host_mips` field.
fn bench(opts: &Opts) -> Result<(), String> {
    let ws = match &opts.workload {
        Some(name) => {
            vec![workloads::by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?]
        }
        None => workloads::all(),
    };
    if opts.profile_pairs {
        return profile_pairs(opts, &ws);
    }
    let mopts = MatrixOptions {
        workers: opts.jobs,
        cache_dir: None,
        step_budget: opts.step_budget,
        profiled: false,
        progress: opts.verbose,
        core: opts.core(),
    };
    let run = Matrix::run_with(&ws, opts.scale, &mopts)?;
    println!(
        "{:<16} {:<6} {:<13} {:>14} {:>10} {:>8}",
        "workload", "engine", "level", "instructions", "wall ms", "MIPS"
    );
    for o in &run.outcomes {
        println!(
            "{:<16} {:<6} {:<13} {:>14} {:>10.1} {:>8.1}",
            o.spec.workload,
            o.spec.engine.id(),
            o.spec.level.name(),
            o.result.counters.instructions,
            o.wall_nanos as f64 / 1e6,
            o.steps_per_sec() / 1e6,
        );
    }
    let artifact = run.artifact();
    println!(
        "aggregate: {:.1} MIPS over {} cells ({})",
        artifact.host_mips,
        run.outcomes.len(),
        run.stats.summary(),
    );
    emit(opts, "bench", Some(&artifact))?;
    match &opts.compare {
        Some(path) => compare_against(path, &artifact, opts.min_ratio),
        None => Ok(()),
    }
}

/// Opcode-pair evidence run (`repro bench --profile-pairs`): executes the
/// requested matrix *serially, in process, unfused* with the core's
/// adjacent-pair profile enabled, aggregates every cell's profile and
/// prints the histogram the macro-op fusion set is justified from.
/// Serial because the profile lives inside each `Cpu`; throughput is not
/// the point of this mode. With `--profile-out` the per-workload
/// histograms are additionally written as a `tarch-pgo/v1` profile file
/// (pair records only — no hot-pc sampling in this mode), which
/// `repro pgo --profile-in` loads back.
fn profile_pairs(opts: &Opts, ws: &[workloads::Workload]) -> Result<(), String> {
    let core = opts.core();
    let mut total = PairProfile::new();
    let mut recorded = PgoProfile { sample_period: 0, workloads: Vec::new() };
    let mut cells = 0usize;
    for w in ws {
        let src = w.source(opts.scale);
        let mut per_workload = PairProfile::new();
        for engine in EngineKind::ALL {
            for level in IsaLevel::ALL {
                let label = format!("{}/{}/{}", w.name, engine.id(), level.name());
                if opts.verbose {
                    eprintln!("profiling {label}...");
                }
                let profile = match engine {
                    EngineKind::Lua => {
                        let mut vm = luart::LuaVm::from_source(&src, level, core)
                            .map_err(|e| format!("{label}: {e}"))?;
                        vm.cpu_mut().enable_pair_profile();
                        vm.run(opts.step_budget).map_err(|e| format!("{label}: {e}"))?;
                        vm.cpu().pair_profile().cloned()
                    }
                    EngineKind::Js => {
                        let mut vm = jsrt::JsVm::from_source(&src, level, core)
                            .map_err(|e| format!("{label}: {e}"))?;
                        vm.cpu_mut().enable_pair_profile();
                        vm.run(opts.step_budget).map_err(|e| format!("{label}: {e}"))?;
                        vm.cpu().pair_profile().cloned()
                    }
                };
                if let Some(p) = profile {
                    per_workload.merge(&p);
                }
                cells += 1;
            }
        }
        total.merge(&per_workload);
        recorded.workloads.push(tarch_runner::pgo::WorkloadProfile {
            workload: w.name.to_string(),
            pairs: pair_records(&per_workload),
            cells: Vec::new(),
        });
    }
    eprintln!("profiled {cells} cell(s) at scale {}", opts.scale.id());
    print!("{}", tarch_runner::pairs::render_histogram(&total, 30));
    if let Some(path) = &opts.profile_out {
        recorded.write(path)?;
        eprintln!("wrote pair profile {}", path.display());
    }
    Ok(())
}

/// A `PairProfile`'s sorted rows as owned profile-file records.
fn pair_records(p: &PairProfile) -> Vec<(String, String, u64)> {
    p.sorted().into_iter().map(|(a, b, n)| (a.to_string(), b.to_string(), n)).collect()
}

/// What one in-process cell execution measured (either PGO phase).
struct CellRun {
    /// Host wall-clock nanoseconds inside `vm.run`.
    nanos: u64,
    /// Architectural counters at the end of the run — the bit-identity
    /// check compares these across the two phases.
    counters: tarch_core::PerfCounters,
    /// Adjacent-pair histogram (profile phase only; empty otherwise).
    pairs: PairProfile,
    /// Sampling-profiler `(pc, samples)` records (profile phase only).
    hot: Vec<(u64, u64)>,
}

/// Runs one cell serially, in process, for `repro pgo`. `hot` is `None`
/// for the instrumented profile phase (pair profiling on, tracer per the
/// core config) and `Some(hot_pcs)` for the optimized phase (the PGO hot
/// set is loaded into the core before execution).
fn pgo_cell(
    src: &str,
    engine: EngineKind,
    level: IsaLevel,
    core: CoreConfig,
    step_budget: u64,
    hot: Option<&std::collections::BTreeSet<u64>>,
    label: &str,
) -> Result<CellRun, String> {
    macro_rules! run_vm {
        ($vm:expr) => {{
            let mut vm = $vm.map_err(|e| format!("{label}: {e}"))?;
            match hot {
                Some(hot) => vm.cpu_mut().set_pgo_hot_pcs(hot.iter().copied()),
                None => vm.cpu_mut().enable_pair_profile(),
            }
            let start = std::time::Instant::now();
            vm.run(step_budget).map_err(|e| format!("{label}: {e}"))?;
            let nanos = start.elapsed().as_nanos() as u64;
            let cpu = vm.cpu();
            CellRun {
                nanos,
                counters: cpu.counters().clone(),
                pairs: cpu.pair_profile().cloned().unwrap_or_default(),
                hot: cpu
                    .tracer()
                    .map(|t| t.pc_profile().records().collect())
                    .unwrap_or_default(),
            }
        }};
    }
    Ok(match engine {
        EngineKind::Lua => run_vm!(luart::LuaVm::from_source(src, level, core)),
        EngineKind::Js => run_vm!(jsrt::JsVm::from_source(src, level, core)),
    })
}

/// `repro pgo [WORKLOADS]`: the two-phase profile-guided optimization
/// pipeline. Phase 1 runs every cell of each workload *instrumented* —
/// adjacent-pair profiling plus the sampling profiler, which also means
/// unfused and tier-1-only — and records a `tarch-pgo/v1` profile.
/// Phase 2 re-runs the same cells with the profile fed back in: the
/// workload's measured pair histogram selects its fusion table,
/// per-cell hot-pc sets drive sample-triggered tier-2 promotion, and
/// hot chain-link paths compose into superblocks. The report is the
/// per-workload A/B; every cell's architectural counters must match the
/// instrumented run bit for bit or the command fails. Cells run
/// in-process and never touch the result cache (hot sets live outside
/// the cache key).
fn pgo(opts: &Opts, list: Option<&str>) -> Result<(), String> {
    let ws: Vec<workloads::Workload> = match list {
        Some(list) => list
            .split(',')
            .map(|n| {
                workloads::by_name(n.trim()).ok_or_else(|| format!("unknown workload `{n}`"))
            })
            .collect::<Result<_, _>>()?,
        None => workloads::all(),
    };
    let mut tc = TraceConfig::new();
    if let Some(p) = opts.sample_period {
        tc.sample_period = p.max(1);
    }
    let loaded = match &opts.profile_in {
        Some(path) => {
            let p = PgoProfile::read(path)?;
            eprintln!("reusing profile {} ({} workload(s))", path.display(), p.workloads.len());
            Some(p)
        }
        None => None,
    };
    let base = opts.core();
    let profile_core = CoreConfig { trace: Some(tc), ..base };

    let mut recorded = PgoProfile { sample_period: tc.sample_period, workloads: Vec::new() };
    let mut rows: Vec<PgoWorkload> = Vec::new();
    let (mut prof_instr, mut prof_nanos) = (0u64, 0u64);
    let (mut opt_instr, mut opt_nanos) = (0u64, 0u64);
    for w in &ws {
        let src = w.source(opts.scale);

        // Phase 1: instrumented profile run over every cell.
        let mut pairs = PairProfile::new();
        let mut cells = Vec::new();
        let mut phase1 = Vec::new();
        for engine in EngineKind::ALL {
            for level in IsaLevel::ALL {
                let label = format!("{}/{}/{}", w.name, engine.id(), level.name());
                if opts.verbose {
                    eprintln!("pgo profile {label}...");
                }
                let run =
                    pgo_cell(&src, engine, level, profile_core, opts.step_budget, None, &label)?;
                pairs.merge(&run.pairs);
                cells.push(tarch_runner::pgo::CellProfile {
                    engine,
                    level,
                    hot: run.hot.clone(),
                });
                phase1.push((engine, level, run));
            }
        }
        recorded.workloads.push(tarch_runner::pgo::WorkloadProfile {
            workload: w.name.to_string(),
            pairs: pair_records(&pairs),
            cells: cells.clone(),
        });

        // Optimization inputs: this run's measurements, unless a loaded
        // profile has a block for the workload (pair-only files keep
        // this run's hot-pc records).
        let block = recorded.workloads.last().expect("just pushed");
        let (use_pairs, use_cells) = match loaded.as_ref().and_then(|p| p.workload(w.name)) {
            Some(ext) => (
                &ext.pairs,
                if ext.cells.is_empty() { &block.cells } else { &ext.cells },
            ),
            None => (&block.pairs, &block.cells),
        };
        let fusion = FusionTable::from_pair_counts(
            use_pairs.iter().map(|(a, b, n)| (a.as_str(), b.as_str(), *n)),
        );
        let opt_core = CoreConfig { fusion_table: fusion, ..base };

        // Phase 2: optimized run over the same cells, counters checked
        // bit-for-bit against phase 1.
        let mut counters_identical = true;
        let mut hot_pcs = 0u64;
        let (mut w_prof_instr, mut w_prof_nanos) = (0u64, 0u64);
        let (mut w_opt_instr, mut w_opt_nanos) = (0u64, 0u64);
        for (engine, level, p1) in &phase1 {
            let label = format!("{}/{}/{}", w.name, engine.id(), level.name());
            if opts.verbose {
                eprintln!("pgo optimized {label}...");
            }
            let hot = use_cells
                .iter()
                .find(|c| c.engine == *engine && c.level == *level)
                .map(|c| PcProfile::from_records(c.hot.iter().copied()).hot_set())
                .unwrap_or_default();
            hot_pcs += hot.len() as u64;
            let p2 =
                pgo_cell(&src, *engine, *level, opt_core, opts.step_budget, Some(&hot), &label)?;
            if p2.counters != p1.counters {
                counters_identical = false;
                eprintln!("pgo: COUNTER MISMATCH in {label} (optimized vs profile phase)");
            }
            w_prof_instr += p1.counters.instructions;
            w_prof_nanos += p1.nanos;
            w_opt_instr += p2.counters.instructions;
            w_opt_nanos += p2.nanos;
        }
        prof_instr += w_prof_instr;
        prof_nanos += w_prof_nanos;
        opt_instr += w_opt_instr;
        opt_nanos += w_opt_nanos;
        rows.push(PgoWorkload {
            workload: w.name.to_string(),
            profile_mips: mips(w_prof_instr, w_prof_nanos),
            optimized_mips: mips(w_opt_instr, w_opt_nanos),
            fusion_bits: u64::from(fusion.bits()),
            hot_pcs,
            counters_identical,
        });
    }

    let summary = PgoSummary {
        profile_mips: mips(prof_instr, prof_nanos),
        optimized_mips: mips(opt_instr, opt_nanos),
        workloads: rows,
    };
    println!(
        "pgo A/B at scale {} (profile phase: instrumented, unfused, tier-1; optimized phase: \
         per-workload fusion table + sample-triggered tier-2 + superblocks):",
        opts.scale.id()
    );
    println!(
        "{:<16} {:>12} {:>14} {:>8} {:>8} {:>8} {:>10}",
        "workload", "profile MIPS", "optimized MIPS", "speedup", "fusion", "hot pcs", "counters"
    );
    for r in &summary.workloads {
        println!(
            "{:<16} {:>12.1} {:>14.1} {:>7.2}x {:>#8x} {:>8} {:>10}",
            r.workload,
            r.profile_mips,
            r.optimized_mips,
            if r.profile_mips > 0.0 { r.optimized_mips / r.profile_mips } else { 0.0 },
            r.fusion_bits,
            r.hot_pcs,
            if r.counters_identical { "identical" } else { "MISMATCH" },
        );
    }
    println!(
        "aggregate: {:.1} -> {:.1} MIPS ({:.2}x), {}/{} workload(s) improved",
        summary.profile_mips,
        summary.optimized_mips,
        if summary.profile_mips > 0.0 { summary.optimized_mips / summary.profile_mips } else { 0.0 },
        summary.improved(),
        summary.workloads.len(),
    );

    if let Some(path) = &opts.profile_out {
        recorded.write(path)?;
        eprintln!("wrote profile {}", path.display());
    }
    let failed: Vec<String> = summary
        .workloads
        .iter()
        .filter(|r| !r.counters_identical)
        .map(|r| r.workload.clone())
        .collect();
    let mut artifact = BenchArtifact::new(opts.scale, opts.step_budget, Vec::new());
    artifact.pgo = Some(summary);
    emit(opts, "pgo", Some(&artifact))?;
    if !failed.is_empty() {
        return Err(format!(
            "pgo broke counter bit-identity on: {} (the optimized engine must be \
             architecturally invisible)",
            failed.join(", ")
        ));
    }
    Ok(())
}

/// Simulated instructions per host microsecond; zero without wall time.
fn mips(instructions: u64, nanos: u64) -> f64 {
    if nanos == 0 { 0.0 } else { instructions as f64 * 1e3 / nanos as f64 }
}

/// `repro trace CELL`: runs one cell *serially, in process* with the
/// tarch-trace observability layer enabled and renders the result — the
/// hot-PC attribution table on stdout, and (with `--trace-out`) a Chrome
/// trace_event JSON plus flamegraph-folded stacks on disk. Serial for the
/// same reason as [`profile_pairs`]: the tracer lives inside the `Cpu`.
fn trace_cell(opts: &Opts, cell: &str) -> Result<(), String> {
    let parts: Vec<&str> = cell.split('/').collect();
    let [wname, engine, level] = parts[..] else {
        return Err(format!(
            "trace needs workload/engine/level, e.g. k-nucleotide/lua/typed (got `{cell}`)"
        ));
    };
    let w = workloads::by_name(wname).ok_or_else(|| format!("unknown workload `{wname}`"))?;
    let engine =
        EngineKind::parse(engine).ok_or_else(|| format!("unknown engine `{engine}` (lua|js)"))?;
    let level = IsaLevel::parse(level).ok_or_else(|| {
        format!("unknown ISA level `{level}` (baseline|checked-load|typed)")
    })?;
    let mut tc = TraceConfig::new();
    if let Some(p) = opts.sample_period {
        tc.sample_period = p.max(1);
    }
    let core = CoreConfig { trace: Some(tc), ..opts.core() };
    let src = w.source(opts.scale);
    let label = format!("{}/{}/{}", w.name, engine.id(), level.name());
    if opts.verbose {
        eprintln!("tracing {label} (sample period {} cycles)...", tc.sample_period);
    }
    match engine {
        EngineKind::Lua => {
            let mut vm = luart::LuaVm::from_source(&src, level, core)
                .map_err(|e| format!("{label}: {e}"))?;
            vm.run(opts.step_budget).map_err(|e| format!("{label}: {e}"))?;
            let symbols = vm.image().program.symbols.clone();
            render_trace(vm.cpu_mut(), &symbols, &label, opts.trace_out.as_deref())
        }
        EngineKind::Js => {
            let mut vm = jsrt::JsVm::from_source(&src, level, core)
                .map_err(|e| format!("{label}: {e}"))?;
            vm.run(opts.step_budget).map_err(|e| format!("{label}: {e}"))?;
            let symbols = vm.image().program.symbols.clone();
            render_trace(vm.cpu_mut(), &symbols, &label, opts.trace_out.as_deref())
        }
    }
}

/// Flushes the finished cell's tracer and renders/writes its artifacts.
fn render_trace(
    cpu: &mut tarch_core::Cpu,
    symbols: &std::collections::BTreeMap<String, u64>,
    label: &str,
    out: Option<&Path>,
) -> Result<(), String> {
    use tarch_core::trace::{chrome, report};
    let summary = cpu
        .finish_trace()
        .ok_or_else(|| format!("{label}: tracing was not enabled on the core"))?;
    let syms = report::SymbolTable::new(symbols.iter().map(|(n, a)| (n.clone(), *a)));
    println!("trace of {label}:");
    print!("{}", report::hot_pc_table(&summary, &syms));
    if !summary.hot_blocks.is_empty() {
        println!();
        print!("{}", report::hot_block_table(&summary, &syms));
    }
    println!("{} metric window(s) captured", summary.windows.len());
    if let Some(path) = out {
        let tracer = cpu.tracer().expect("tracer present after finish_trace");
        let json = chrome::chrome_trace(tracer);
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        let folded = path.with_extension("folded");
        std::fs::write(&folded, report::folded_stacks(&summary, &syms))
            .map_err(|e| format!("write {}: {e}", folded.display()))?;
        eprintln!(
            "wrote Chrome trace {} (load in ui.perfetto.dev) and folded stacks {}",
            path.display(),
            folded.display(),
        );
    }
    Ok(())
}

/// `repro fleet MIX`: the multi-tenant serving benchmark. Builds one VM
/// template per mix entry, stamps `--tenants` tenants (snapshot clones
/// by default, fresh construction with `--fresh`), schedules them over
/// `--shards` shards under per-slice `--budget` cycle quanta, and
/// reports per-shard throughput plus deterministic completion-latency
/// percentiles. The run artifact carries the summary in its `fleet`
/// block.
fn fleet(opts: &Opts, mix: &str) -> Result<(), String> {
    let entries = tarch_fleet::parse_mix(mix).map_err(|e| e.to_string())?;
    let specs: Vec<tarch_fleet::TemplateSpec> = entries
        .iter()
        .map(|e| {
            let w = workloads::by_name(&e.workload)
                .ok_or_else(|| format!("unknown workload `{}`", e.workload))?;
            Ok(tarch_fleet::TemplateSpec {
                label: format!("{}/{}/{}", e.workload, e.engine.id(), e.level.name()),
                source: w.source(opts.scale),
                engine: e.engine,
                level: e.level,
            })
        })
        .collect::<Result<_, String>>()?;
    let cfg = tarch_fleet::FleetConfig {
        tenants: opts.tenants,
        shards: opts.shards,
        budget: opts.budget,
        seed: opts.seed,
        workers: opts.jobs,
        snapshot_clone: !opts.fresh,
        step_budget: opts.step_budget,
        core: opts.core(),
    };
    if opts.verbose {
        eprintln!(
            "serving {} tenant(s) over {} template(s) on {} shard(s), {}-cycle slices ({})...",
            cfg.tenants,
            specs.len(),
            cfg.shards,
            cfg.budget,
            if cfg.snapshot_clone { "snapshot clones" } else { "fresh construction" },
        );
    }
    let report = tarch_fleet::run_fleet(&specs, &cfg).map_err(|e| e.to_string())?;
    let s = &report.summary;

    println!(
        "fleet: {} tenants / {} shards / {}-cycle slices / seed {} ({})",
        s.tenants,
        s.shards,
        s.budget,
        s.seed,
        if s.snapshot_clone { "snapshot clones" } else { "fresh construction" },
    );
    println!(
        "setup {:.2} ms ({:.1} us/tenant), run {:.2} ms, {} round(s), {} steal(s)",
        s.setup_nanos as f64 / 1e6,
        s.setup_nanos as f64 / 1e3 / s.tenants as f64,
        s.run_nanos as f64 / 1e6,
        report.rounds,
        report.steals,
    );
    println!(
        "{:<6} {:>8} {:>14} {:>14} {:>10} {:>8}",
        "shard", "tenants", "instructions", "virt cycles", "wall ms", "MIPS"
    );
    for row in &s.shard_rows {
        println!(
            "{:<6} {:>8} {:>14} {:>14} {:>10.1} {:>8.1}",
            row.shard,
            row.tenants_completed,
            row.instructions,
            row.virtual_cycles,
            row.wall_nanos as f64 / 1e6,
            row.mips(),
        );
    }
    println!(
        "latency (virtual cycles): p50 {}  p95 {}  p99 {}",
        s.latency.p50, s.latency.p95, s.latency.p99
    );
    println!("aggregate: {:.1} MIPS across shards", s.total_mips());

    if opts.validate {
        if opts.verbose {
            eprintln!("validating against the serial reference execution...");
        }
        tarch_fleet::validate_against_serial(&report, &specs, &cfg).map_err(|e| e.to_string())?;
        println!(
            "validation ok: {} tenants bit-identical to serial fresh-VM execution",
            s.tenants
        );
    }

    let mut artifact = BenchArtifact::new(opts.scale, opts.step_budget, Vec::new());
    artifact.fleet = Some(report.summary.clone());
    emit(opts, "fleet", Some(&artifact))
}

/// Renders the per-cell and aggregate host-throughput diff of `current`
/// against the baseline artifact at `path`, and applies the `--min-ratio`
/// regression gate when one was requested.
fn compare_against(
    path: &Path,
    current: &BenchArtifact,
    min_ratio: Option<f64>,
) -> Result<(), String> {
    let baseline = BenchArtifact::read(path)?;
    let cmp = tarch_runner::compare(&baseline, current);
    println!("\ncomparison against {}:", path.display());
    println!(
        "{:<16} {:<6} {:<13} {:>10} {:>10} {:>7}",
        "workload", "engine", "level", "base MIPS", "cur MIPS", "ratio"
    );
    for c in &cmp.cells {
        println!(
            "{:<16} {:<6} {:<13} {:>10.1} {:>10.1} {:>6.2}x",
            c.workload,
            c.engine,
            c.level,
            c.base_mips,
            c.cur_mips,
            c.ratio(),
        );
    }
    for name in &cmp.only_base {
        println!("only in baseline: {name}");
    }
    for name in &cmp.only_current {
        println!("only in current run: {name}");
    }
    println!(
        "aggregate: {:.1} -> {:.1} MIPS ({:.2}x)",
        cmp.base_aggregate,
        cmp.cur_aggregate,
        cmp.aggregate_ratio(),
    );
    if let Some(min) = min_ratio {
        if !cmp.passes(min) {
            return Err(format!(
                "host throughput regression: aggregate {:.1} MIPS is below {min} x baseline \
                 {:.1} MIPS (ratio {:.2})",
                cmp.cur_aggregate,
                cmp.base_aggregate,
                cmp.aggregate_ratio(),
            ));
        }
        println!("throughput gate: ratio {:.2} >= {min} (ok)", cmp.aggregate_ratio());
    }
    Ok(())
}

/// Quick end-to-end check of the parallel pipeline: a 2-workload matrix
/// at test scale, profiled, on multiple workers, rendered through the
/// figure code. Used by CI; finishes in seconds.
fn selftest(opts: &Opts) -> Result<(), String> {
    let ws: Vec<_> = ["fibo", "n-sieve"]
        .iter()
        .map(|n| workloads::by_name(n).expect("known workload"))
        .collect();
    let workers = if opts.jobs == 0 { 4 } else { opts.jobs };
    let mopts = MatrixOptions {
        workers,
        // Always simulate: the selftest must exercise the engines, not
        // the cache.
        cache_dir: None,
        step_budget: opts.step_budget,
        profiled: true,
        progress: opts.verbose,
        core: opts.core(),
    };
    let run = Matrix::run_with(&ws, Scale::Test, &mopts)?;
    let expected = ws.len() * 2 * 3 + ws.len() * 2;
    if run.outcomes.len() != expected {
        return Err(format!(
            "selftest: expected {expected} outcomes, got {}",
            run.outcomes.len()
        ));
    }
    let f5 = figures::fig5(&run.matrix)?;
    let f9 = figures::fig9(&run.matrix)?;
    if !f5.contains("geomean") || !f9.contains("hits/bc") {
        return Err("selftest: figure output malformed".to_string());
    }
    eprintln!("{}", run.stats.summary());
    println!(
        "selftest ok: {} jobs on {} workers, figures render",
        run.outcomes.len(),
        workers
    );
    Ok(())
}
