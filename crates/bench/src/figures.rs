//! Renderers: one function per paper figure/table, producing the same
//! rows/series the paper reports.
//!
//! Every matrix-driven renderer is fallible: a partial matrix (e.g. a
//! truncated or hand-filtered `BENCH_*.json` artifact) produces a clean
//! error naming the missing cell instead of a panic.

use crate::harness::{geomean, CellResult, EngineKind, Matrix, MAX_STEPS};
use crate::workloads::{self, Scale};
use std::fmt::Write as _;
use tarch_core::{CoreConfig, IsaLevel};

/// Fallible cell lookup with a figure-quality error message.
fn require<'m>(
    m: &'m Matrix,
    workload: &str,
    engine: EngineKind,
    level: IsaLevel,
) -> Result<&'m CellResult, String> {
    m.try_cell(workload, engine, level).ok_or_else(|| {
        format!(
            "matrix is missing cell {workload}/{engine:?}/{level} \
             (incomplete run or truncated artifact)"
        )
    })
}

/// Figure 5: overall speedups (baseline / Checked Load / Typed), per
/// engine, with geomean.
///
/// # Errors
///
/// Returns a descriptive string if the matrix lacks a needed cell.
pub fn fig5(m: &Matrix) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5: overall speedups over baseline (higher is better)");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(out, "{:<16} {:>12} {:>12}", "benchmark", "checked-load", "typed");
        let mut cls = Vec::new();
        let mut tys = Vec::new();
        for w in m.workloads() {
            let base = require(m, &w, engine, IsaLevel::Baseline)?.counters.cycles as f64;
            let cl = base / require(m, &w, engine, IsaLevel::CheckedLoad)?.counters.cycles as f64;
            let ty = base / require(m, &w, engine, IsaLevel::Typed)?.counters.cycles as f64;
            cls.push(cl);
            tys.push(ty);
            let _ = writeln!(out, "{w:<16} {:>11.1}% {:>11.1}%", (cl - 1.0) * 100.0, (ty - 1.0) * 100.0);
        }
        let cl = geomean(cls.into_iter());
        let ty = geomean(tys.into_iter());
        let _ = writeln!(out, "{:<16} {:>11.1}% {:>11.1}%", "geomean", (cl - 1.0) * 100.0, (ty - 1.0) * 100.0);
    }
    Ok(out)
}

/// Figure 6: reduction of dynamic instruction count (higher is better).
///
/// # Errors
///
/// Returns a descriptive string if the matrix lacks a needed cell.
pub fn fig6(m: &Matrix) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6: reduction of dynamic instruction count vs baseline");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(out, "{:<16} {:>12} {:>12}", "benchmark", "checked-load", "typed");
        let mut cls = Vec::new();
        let mut tys = Vec::new();
        for w in m.workloads() {
            let base = require(m, &w, engine, IsaLevel::Baseline)?.counters.instructions as f64;
            let cl =
                1.0 - require(m, &w, engine, IsaLevel::CheckedLoad)?.counters.instructions as f64 / base;
            let ty =
                1.0 - require(m, &w, engine, IsaLevel::Typed)?.counters.instructions as f64 / base;
            cls.push(1.0 - cl);
            tys.push(1.0 - ty);
            let _ = writeln!(out, "{w:<16} {:>11.1}% {:>11.1}%", cl * 100.0, ty * 100.0);
        }
        let cl = 1.0 - geomean(cls.into_iter());
        let ty = 1.0 - geomean(tys.into_iter());
        let _ = writeln!(out, "{:<16} {:>11.1}% {:>11.1}%", "geomean", cl * 100.0, ty * 100.0);
    }
    Ok(out)
}

/// Figure 7: branch miss rates in MPKI (lower is better).
///
/// # Errors
///
/// Returns a descriptive string if the matrix lacks a needed cell.
pub fn fig7(m: &Matrix) -> Result<String, String> {
    per_level_metric(
        m,
        "Figure 7: branch miss rates in misses per kilo-instruction (lower is better)",
        |c| c.branch_mpki(),
    )
}

/// Figure 8: instruction-cache miss rates in MPKI (lower is better).
///
/// # Errors
///
/// Returns a descriptive string if the matrix lacks a needed cell.
pub fn fig8(m: &Matrix) -> Result<String, String> {
    per_level_metric(
        m,
        "Figure 8: I-cache miss rates in misses per kilo-instruction (lower is better)",
        |c| c.counters.icache_mpki(),
    )
}

fn per_level_metric(
    m: &Matrix,
    title: &str,
    f: impl Fn(&CellResult) -> f64,
) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>13} {:>10}",
            "benchmark", "baseline", "checked-load", "typed"
        );
        for w in m.workloads() {
            let mut vals = Vec::with_capacity(IsaLevel::ALL.len());
            for l in IsaLevel::ALL {
                vals.push(f(require(m, &w, engine, l)?));
            }
            let _ = writeln!(
                out,
                "{w:<16} {:>10.2} {:>13.2} {:>10.2}",
                vals[0], vals[1], vals[2]
            );
        }
    }
    Ok(out)
}

/// Figure 9: type hit/miss rates normalized to dynamic bytecode count
/// (Typed configuration; overflow-triggered misses reported separately, as
/// the paper excludes them from this figure).
///
/// Reads the matrix's *profiled* Typed cells, so the matrix must have been
/// run with profiling enabled (`MatrixOptions::profiled`, which `repro`
/// sets for `fig9` and `all`).
///
/// # Errors
///
/// Returns a descriptive string when profiled cells are absent.
pub fn fig9(m: &Matrix) -> Result<String, String> {
    if !m.has_profiled() {
        return Err(
            "matrix has no profiled cells; run with profiling enabled \
             (repro does this automatically for `fig9` and `all`)"
                .to_string(),
        );
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: type hits/misses per dynamic bytecode (typed configuration)"
    );
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>12}",
            "benchmark", "checks/bc", "hits/bc", "misses/bc", "overflows/bc"
        );
        for w in m.workloads() {
            let cell = m.profiled_cell(&w, engine).ok_or_else(|| {
                format!("matrix is missing profiled cell {w}/{engine:?}")
            })?;
            let bc = cell.bytecodes.unwrap_or(1).max(1) as f64;
            let c = cell.counters;
            let _ = writeln!(
                out,
                "{w:<16} {:>10.3} {:>10.3} {:>10.3} {:>12.4}",
                c.type_checks as f64 / bc,
                c.type_hits as f64 / bc,
                c.type_misses as f64 / bc,
                c.overflow_misses as f64 / bc,
            );
        }
    }
    Ok(out)
}

/// Figure 2(a): breakdown of dynamic bytecodes for the Lua-like engine.
///
/// # Errors
///
/// Returns a descriptive string on engine failure.
pub fn fig2a(scale: Scale) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2(a): dynamic bytecode breakdown (Lua-like engine)");
    let _ = writeln!(out, "{:<16} {:>10}  top bytecodes", "benchmark", "dyn bc");
    for w in workloads::all() {
        let src = w.source(scale);
        let chunk = miniscript::parse(&src).map_err(|e| format!("{}: {e}", w.name))?;
        let module = luart::compile(&chunk).map_err(|e| format!("{}: {e}", w.name))?;
        let (_, counts) = luart::host_run_counted(&module, MAX_STEPS)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        let mut line = String::new();
        for (op, n) in counts.iter().take(6) {
            let _ = write!(line, "{op} {:.1}%  ", *n as f64 * 100.0 / total as f64);
        }
        let _ = writeln!(out, "{:<16} {total:>10}  {line}", w.name);
    }
    Ok(out)
}

/// Figure 2(b): native instructions per bytecode for the five hot
/// bytecodes, per operand type pair (measured with type-pair
/// microworkloads on the baseline engine).
///
/// # Errors
///
/// Returns a descriptive string on engine failure.
pub fn fig2b() -> Result<String, String> {
    let cases: [(&str, &str); 5] = [
        ("ADD/SUB/MUL (Int,Int)", "local s = 0 for i = 1, 400 do s = s + i s = s - 1 s = s * 1 end print(s)"),
        ("ADD/SUB/MUL (Flt,Flt)", "local s = 0.5 for i = 1, 400 do s = s + 0.5 s = s - 0.25 s = s * 1.0 end print(s)"),
        ("ADD (Int,Flt) mixed", "local s = 0.5 for i = 1, 400 do s = s + 1 end print(s)"),
        ("GETTABLE/SETTABLE (Tbl,Int)", "local t = {1} local s = 0 for i = 1, 400 do t[1] = i s = s + t[1] end print(s)"),
        ("GETTABLE/SETTABLE (Tbl,Str)", "local t = {} t.k = 0 local s = 0 for i = 1, 400 do t.k = i s = s + t.k end print(s)"),
    ];
    let hot =
        [luart::Op::Add, luart::Op::Sub, luart::Op::Mul, luart::Op::GetTable, luart::Op::SetTable];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2(b): native instructions per hot bytecode, by operand type pair"
    );
    let _ = writeln!(out, "(baseline Lua-like engine; helper-charged instructions included)");
    let _ = writeln!(
        out,
        "\n{:<30} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "type pair", "ADD", "SUB", "MUL", "GETTABLE", "SETTABLE"
    );
    for (label, src) in cases {
        let mut vm =
            luart::LuaVm::from_source(src, IsaLevel::Baseline, CoreConfig::paper())
                .map_err(|e| format!("{label}: {e}"))?;
        let r = vm.run_profiled(MAX_STEPS).map_err(|e| format!("{label}: {e}"))?;
        let profile = r.profile.expect("profiled");
        let mut cols = String::new();
        for op in hot {
            let v = profile.instr_per_bytecode(op);
            if v == 0.0 {
                let _ = write!(cols, "{:>9}", "-");
            } else {
                let _ = write!(cols, "{v:>9.1}");
            }
        }
        let _ = writeln!(out, "{label:<30} {cols}");
    }
    Ok(out)
}

/// Figure 1/3: the bytecode ADD handler, disassembled, baseline vs typed
/// (compare the paper's Figure 1(c) and Figure 3).
///
/// # Errors
///
/// Returns a descriptive string on build failure.
pub fn fig1() -> Result<String, String> {
    let chunk = miniscript::parse("print(1 + 2)").map_err(|e| e.to_string())?;
    let module = luart::compile(&chunk).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for level in [IsaLevel::Baseline, IsaLevel::Typed] {
        let image = luart::build_image(&module, level).map_err(|e| e.to_string())?;
        let entries = &image.handler_entries;
        let add_pos = entries.iter().position(|(op, _)| *op == luart::Op::Add).unwrap();
        let start = entries[add_pos].1;
        let end = entries.get(add_pos + 1).map(|(_, pc)| *pc).unwrap_or(start + 4 * 64);
        let _ = writeln!(out, "\n=== bytecode ADD handler, {level} ===");
        for (pc, instr) in image.program.disassemble() {
            if pc >= start && pc < end {
                let _ = writeln!(out, "  {pc:#08x}: {instr}");
            }
        }
    }
    Ok(out)
}

/// Table 8: hardware overhead breakdown plus measured EDP improvements.
///
/// # Errors
///
/// Returns a descriptive string if the matrix lacks a needed cell.
pub fn table8(m: &Matrix) -> Result<String, String> {
    let hw = tarch_energy::TypedHardware::paper_40nm();
    let b = tarch_energy::breakdown(&hw);
    let mut out = String::new();
    let _ = writeln!(out, "Table 8: hardware overhead breakdown (analytical model)");
    let _ = writeln!(out, "{b}");
    let _ = writeln!(
        out,
        "area overhead: {:+.1}%   power overhead: {:+.1}%",
        b.area_overhead() * 100.0,
        b.power_overhead() * 100.0
    );
    for engine in EngineKind::ALL {
        let mut bases = Vec::new();
        let mut typeds = Vec::new();
        for w in m.workloads() {
            bases.push(require(m, &w, engine, IsaLevel::Baseline)?.counters.cycles as f64);
            typeds.push(require(m, &w, engine, IsaLevel::Typed)?.counters.cycles as f64);
        }
        let base = geomean(bases.into_iter());
        let typed = geomean(typeds.into_iter());
        let imp = tarch_energy::edp_improvement(&b, base.round() as u64, typed.round() as u64);
        let _ = writeln!(out, "EDP improvement ({engine}): {:.1}%", imp * 100.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Matrix, MatrixOptions};

    fn tiny_matrix(profiled: bool) -> Matrix {
        let ws: Vec<_> = ["fibo", "n-sieve"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let opts = MatrixOptions { profiled, ..MatrixOptions::default() };
        Matrix::run_with(&ws, Scale::Test, &opts).unwrap().matrix
    }

    #[test]
    fn figures_render() {
        let m = tiny_matrix(false);
        let f5 = fig5(&m).unwrap();
        assert!(f5.contains("geomean"));
        assert!(f5.contains("fibo"));
        let f6 = fig6(&m).unwrap();
        assert!(f6.contains("typed"));
        let f7 = fig7(&m).unwrap();
        assert!(f7.contains("baseline"));
        let f8 = fig8(&m).unwrap();
        assert!(f8.contains("I-cache"));
        let t8 = table8(&m).unwrap();
        assert!(t8.contains("EDP improvement"));
    }

    #[test]
    fn fig9_reads_profiled_cells() {
        let m = tiny_matrix(true);
        let f9 = fig9(&m).unwrap();
        assert!(f9.contains("hits/bc"));
        assert!(f9.contains("fibo"));
    }

    #[test]
    fn partial_matrix_is_an_error_not_a_panic() {
        use crate::harness::job_spec;
        use tarch_runner::JobOutcome;
        // A matrix whose Typed column is missing must produce a clean
        // error from the figure renderers, not a panic.
        let w = workloads::by_name("fibo").unwrap();
        let mut outcomes = Vec::new();
        for level in [IsaLevel::Baseline, IsaLevel::CheckedLoad] {
            for engine in EngineKind::ALL {
                let spec = job_spec(&w, engine, level, Scale::Test, false);
                let result = crate::harness::exec_job(&spec, MAX_STEPS).unwrap();
                outcomes.push(JobOutcome { spec, result, cached: false, wall_nanos: 0 });
            }
        }
        let partial = Matrix::from_outcomes(&outcomes).unwrap();
        let err = fig5(&partial).unwrap_err();
        assert!(err.contains("missing cell"), "{err}");
        assert!(err.contains("typed"), "{err}");
        assert!(fig7(&partial).is_err());
        assert!(table8(&partial).is_err());
        // fig9 without profiled cells must be a clean error too.
        let full = tiny_matrix(false);
        let err = fig9(&full).unwrap_err();
        assert!(err.contains("profiled"), "{err}");
    }

    #[test]
    fn fig1_disassembles_both_variants() {
        let s = fig1().unwrap();
        assert!(s.contains("baseline"));
        assert!(s.contains("typed"));
        assert!(s.contains("xadd"));
        assert!(s.contains("tld"));
    }

    #[test]
    fn fig2b_measures_hot_ops() {
        let s = fig2b().unwrap();
        assert!(s.contains("GETTABLE"));
        assert!(s.contains("(Int,Int)"));
    }
}
