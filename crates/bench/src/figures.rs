//! Renderers: one function per paper figure/table, producing the same
//! rows/series the paper reports.

use crate::harness::{geomean, run_cell, CellResult, EngineKind, Matrix, MAX_STEPS};
use crate::workloads::{self, Scale};
use std::fmt::Write as _;
use tarch_core::{CoreConfig, IsaLevel};

/// Figure 5: overall speedups (baseline / Checked Load / Typed), per
/// engine, with geomean.
pub fn fig5(m: &Matrix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5: overall speedups over baseline (higher is better)");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(out, "{:<16} {:>12} {:>12}", "benchmark", "checked-load", "typed");
        for w in m.workloads() {
            let cl = m.speedup(&w, engine, IsaLevel::CheckedLoad);
            let ty = m.speedup(&w, engine, IsaLevel::Typed);
            let _ = writeln!(out, "{w:<16} {:>11.1}% {:>11.1}%", (cl - 1.0) * 100.0, (ty - 1.0) * 100.0);
        }
        let cl = m.geomean_speedup(engine, IsaLevel::CheckedLoad);
        let ty = m.geomean_speedup(engine, IsaLevel::Typed);
        let _ = writeln!(out, "{:<16} {:>11.1}% {:>11.1}%", "geomean", (cl - 1.0) * 100.0, (ty - 1.0) * 100.0);
    }
    out
}

/// Figure 6: reduction of dynamic instruction count (higher is better).
pub fn fig6(m: &Matrix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6: reduction of dynamic instruction count vs baseline");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(out, "{:<16} {:>12} {:>12}", "benchmark", "checked-load", "typed");
        let mut cls = Vec::new();
        let mut tys = Vec::new();
        for w in m.workloads() {
            let cl = m.instr_reduction(&w, engine, IsaLevel::CheckedLoad);
            let ty = m.instr_reduction(&w, engine, IsaLevel::Typed);
            cls.push(1.0 - cl);
            tys.push(1.0 - ty);
            let _ = writeln!(out, "{w:<16} {:>11.1}% {:>11.1}%", cl * 100.0, ty * 100.0);
        }
        let cl = 1.0 - geomean(cls.into_iter());
        let ty = 1.0 - geomean(tys.into_iter());
        let _ = writeln!(out, "{:<16} {:>11.1}% {:>11.1}%", "geomean", cl * 100.0, ty * 100.0);
    }
    out
}

/// Figure 7: branch miss rates in MPKI (lower is better).
pub fn fig7(m: &Matrix) -> String {
    per_level_metric(
        m,
        "Figure 7: branch miss rates in misses per kilo-instruction (lower is better)",
        |c| c.branch_mpki(),
    )
}

/// Figure 8: instruction-cache miss rates in MPKI (lower is better).
pub fn fig8(m: &Matrix) -> String {
    per_level_metric(
        m,
        "Figure 8: I-cache miss rates in misses per kilo-instruction (lower is better)",
        |c| c.counters.icache_mpki(),
    )
}

fn per_level_metric(m: &Matrix, title: &str, f: impl Fn(&CellResult) -> f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>13} {:>10}",
            "benchmark", "baseline", "checked-load", "typed"
        );
        for w in m.workloads() {
            let vals: Vec<f64> =
                IsaLevel::ALL.iter().map(|l| f(m.cell(&w, engine, *l))).collect();
            let _ = writeln!(
                out,
                "{w:<16} {:>10.2} {:>13.2} {:>10.2}",
                vals[0], vals[1], vals[2]
            );
        }
    }
    out
}

/// Figure 9: type hit/miss rates normalized to dynamic bytecode count
/// (Typed configuration; overflow-triggered misses reported separately, as
/// the paper excludes them from this figure).
///
/// Uses profiled runs, so it re-executes the Typed configuration.
///
/// # Errors
///
/// Returns a descriptive string on engine failure.
pub fn fig9(scale: Scale) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: type hits/misses per dynamic bytecode (typed configuration)"
    );
    for engine in EngineKind::ALL {
        let _ = writeln!(out, "\n[{engine}]");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>12}",
            "benchmark", "checks/bc", "hits/bc", "misses/bc", "overflows/bc"
        );
        for w in workloads::all() {
            let cell = run_cell(&w, engine, IsaLevel::Typed, scale, true)?;
            let bc = cell.bytecodes.unwrap_or(1).max(1) as f64;
            let c = cell.counters;
            let _ = writeln!(
                out,
                "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>12.4}",
                w.name,
                c.type_checks as f64 / bc,
                c.type_hits as f64 / bc,
                c.type_misses as f64 / bc,
                c.overflow_misses as f64 / bc,
            );
        }
    }
    Ok(out)
}

/// Figure 2(a): breakdown of dynamic bytecodes for the Lua-like engine.
///
/// # Errors
///
/// Returns a descriptive string on engine failure.
pub fn fig2a(scale: Scale) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2(a): dynamic bytecode breakdown (Lua-like engine)");
    let _ = writeln!(out, "{:<16} {:>10}  top bytecodes", "benchmark", "dyn bc");
    for w in workloads::all() {
        let src = w.source(scale);
        let chunk = miniscript::parse(&src).map_err(|e| format!("{}: {e}", w.name))?;
        let module = luart::compile(&chunk).map_err(|e| format!("{}: {e}", w.name))?;
        let (_, counts) = luart::host_run_counted(&module, MAX_STEPS)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        let mut line = String::new();
        for (op, n) in counts.iter().take(6) {
            let _ = write!(line, "{op} {:.1}%  ", *n as f64 * 100.0 / total as f64);
        }
        let _ = writeln!(out, "{:<16} {total:>10}  {line}", w.name);
    }
    Ok(out)
}

/// Figure 2(b): native instructions per bytecode for the five hot
/// bytecodes, per operand type pair (measured with type-pair
/// microworkloads on the baseline engine).
///
/// # Errors
///
/// Returns a descriptive string on engine failure.
pub fn fig2b() -> Result<String, String> {
    let cases: [(&str, &str); 5] = [
        ("ADD/SUB/MUL (Int,Int)", "local s = 0 for i = 1, 400 do s = s + i s = s - 1 s = s * 1 end print(s)"),
        ("ADD/SUB/MUL (Flt,Flt)", "local s = 0.5 for i = 1, 400 do s = s + 0.5 s = s - 0.25 s = s * 1.0 end print(s)"),
        ("ADD (Int,Flt) mixed", "local s = 0.5 for i = 1, 400 do s = s + 1 end print(s)"),
        ("GETTABLE/SETTABLE (Tbl,Int)", "local t = {1} local s = 0 for i = 1, 400 do t[1] = i s = s + t[1] end print(s)"),
        ("GETTABLE/SETTABLE (Tbl,Str)", "local t = {} t.k = 0 local s = 0 for i = 1, 400 do t.k = i s = s + t.k end print(s)"),
    ];
    let hot =
        [luart::Op::Add, luart::Op::Sub, luart::Op::Mul, luart::Op::GetTable, luart::Op::SetTable];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2(b): native instructions per hot bytecode, by operand type pair"
    );
    let _ = writeln!(out, "(baseline Lua-like engine; helper-charged instructions included)");
    let _ = writeln!(
        out,
        "\n{:<30} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "type pair", "ADD", "SUB", "MUL", "GETTABLE", "SETTABLE"
    );
    for (label, src) in cases {
        let mut vm =
            luart::LuaVm::from_source(src, IsaLevel::Baseline, CoreConfig::paper())
                .map_err(|e| format!("{label}: {e}"))?;
        let r = vm.run_profiled(MAX_STEPS).map_err(|e| format!("{label}: {e}"))?;
        let profile = r.profile.expect("profiled");
        let mut cols = String::new();
        for op in hot {
            let v = profile.instr_per_bytecode(op);
            if v == 0.0 {
                let _ = write!(cols, "{:>9}", "-");
            } else {
                let _ = write!(cols, "{v:>9.1}");
            }
        }
        let _ = writeln!(out, "{label:<30} {cols}");
    }
    Ok(out)
}

/// Figure 1/3: the bytecode ADD handler, disassembled, baseline vs typed
/// (compare the paper's Figure 1(c) and Figure 3).
///
/// # Errors
///
/// Returns a descriptive string on build failure.
pub fn fig1() -> Result<String, String> {
    let chunk = miniscript::parse("print(1 + 2)").map_err(|e| e.to_string())?;
    let module = luart::compile(&chunk).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for level in [IsaLevel::Baseline, IsaLevel::Typed] {
        let image = luart::build_image(&module, level).map_err(|e| e.to_string())?;
        let entries = &image.handler_entries;
        let add_pos = entries.iter().position(|(op, _)| *op == luart::Op::Add).unwrap();
        let start = entries[add_pos].1;
        let end = entries.get(add_pos + 1).map(|(_, pc)| *pc).unwrap_or(start + 4 * 64);
        let _ = writeln!(out, "\n=== bytecode ADD handler, {level} ===");
        for (pc, instr) in image.program.disassemble() {
            if pc >= start && pc < end {
                let _ = writeln!(out, "  {pc:#08x}: {instr}");
            }
        }
    }
    Ok(out)
}

/// Table 8: hardware overhead breakdown plus measured EDP improvements.
pub fn table8(m: &Matrix) -> String {
    let hw = tarch_energy::TypedHardware::paper_40nm();
    let b = tarch_energy::breakdown(&hw);
    let mut out = String::new();
    let _ = writeln!(out, "Table 8: hardware overhead breakdown (analytical model)");
    let _ = writeln!(out, "{b}");
    let _ = writeln!(
        out,
        "area overhead: {:+.1}%   power overhead: {:+.1}%",
        b.area_overhead() * 100.0,
        b.power_overhead() * 100.0
    );
    for engine in EngineKind::ALL {
        let base = m.geomean_cycles(engine, IsaLevel::Baseline);
        let typed = m.geomean_cycles(engine, IsaLevel::Typed);
        let imp = tarch_energy::edp_improvement(&b, base.round() as u64, typed.round() as u64);
        let _ = writeln!(out, "EDP improvement ({engine}): {:.1}%", imp * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Matrix;

    fn tiny_matrix() -> Matrix {
        let ws: Vec<_> = ["fibo", "n-sieve"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        Matrix::run(&ws, Scale::Test, false).unwrap()
    }

    #[test]
    fn figures_render() {
        let m = tiny_matrix();
        let f5 = fig5(&m);
        assert!(f5.contains("geomean"));
        assert!(f5.contains("fibo"));
        let f6 = fig6(&m);
        assert!(f6.contains("typed"));
        let f7 = fig7(&m);
        assert!(f7.contains("baseline"));
        let f8 = fig8(&m);
        assert!(f8.contains("I-cache"));
        let t8 = table8(&m);
        assert!(t8.contains("EDP improvement"));
    }

    #[test]
    fn fig1_disassembles_both_variants() {
        let s = fig1().unwrap();
        assert!(s.contains("baseline"));
        assert!(s.contains("typed"));
        assert!(s.contains("xadd"));
        assert!(s.contains("tld"));
    }

    #[test]
    fn fig2b_measures_hot_ops() {
        let s = fig2b().unwrap();
        assert!(s.contains("GETTABLE"));
        assert!(s.contains("(Int,Int)"));
    }
}
