//! Experiment harness: runs the workload × engine × ISA-level matrix and
//! derives every quantity the paper's evaluation figures report.
//!
//! Execution is delegated to [`tarch_runner`]: the harness builds one
//! [`JobSpec`] per cell, hands the list to the parallel worker pool
//! (with optional persistent result caching under `target/tarch-cache/`)
//! and reassembles the deterministic, submission-ordered outcomes into a
//! [`Matrix`]. A matrix can equally be reloaded from a `BENCH_*.json`
//! artifact instead of simulated — see [`Matrix::from_artifact`].

use crate::workloads::{Scale, Workload};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use tarch_core::{CoreConfig, IsaLevel};
use tarch_runner::{
    run_jobs, BenchArtifact, ExecError, JobOutcome, JobSpec, RunConfig, RunStats,
};

pub use tarch_runner::{CellResult, EngineKind};

/// Default step budget per run (generous; `Scale::Full` workloads are
/// large). This is the runner's per-job timeout unit: a cell that
/// exhausts it fails with a diagnostic naming the cell and the steps
/// consumed, instead of wedging the whole run.
pub const MAX_STEPS: u64 = tarch_runner::DEFAULT_STEP_BUDGET;

/// Builds the job spec for one cell (the unit the runner schedules,
/// caches and serializes) on the paper's core configuration.
pub fn job_spec(
    w: &Workload,
    engine: EngineKind,
    level: IsaLevel,
    scale: Scale,
    profiled: bool,
) -> JobSpec {
    job_spec_with(w, engine, level, scale, profiled, &CoreConfig::paper())
}

/// [`job_spec`] with an explicit core configuration (A/B runs over the
/// execution-engine toggles, e.g. `repro bench --no-fuse`).
pub fn job_spec_with(
    w: &Workload,
    engine: EngineKind,
    level: IsaLevel,
    scale: Scale,
    profiled: bool,
    core: &CoreConfig,
) -> JobSpec {
    JobSpec::new(w.name, engine, level, scale, profiled, w.source(scale), core)
}

/// Executes one job: builds the right VM from the spec *inside the
/// calling thread* (the runner invokes this from its workers) and runs
/// it under `step_budget`.
///
/// # Errors
///
/// [`ExecError::StepBudget`] when the budget is exhausted, otherwise
/// [`ExecError::Failed`] with the engine's message.
pub fn exec_job(spec: &JobSpec, step_budget: u64) -> Result<CellResult, ExecError> {
    let core = spec.core;
    match spec.engine {
        EngineKind::Lua => {
            let mut vm = luart::LuaVm::from_source(&spec.source, spec.level, core)
                .map_err(|e| ExecError::Failed(e.to_string()))?;
            let sim_started = std::time::Instant::now();
            let r = if spec.profiled {
                vm.run_profiled(step_budget)
            } else {
                vm.run(step_budget)
            };
            let sim_nanos = sim_started.elapsed().as_nanos() as u64;
            match r {
                Ok(r) => Ok(CellResult {
                    counters: r.counters,
                    branch: r.branch,
                    output: r.output,
                    bytecodes: r.profile.as_ref().map(|p| p.total_bytecodes()),
                    sim_nanos,
                    // `None` unless the spec's core config enabled tracing.
                    trace: vm.cpu_mut().finish_trace(),
                }),
                Err(luart::EngineError::StepLimit { max_steps }) => {
                    Err(ExecError::StepBudget { steps: max_steps })
                }
                Err(e) => Err(ExecError::Failed(e.to_string())),
            }
        }
        EngineKind::Js => {
            let mut vm = jsrt::JsVm::from_source(&spec.source, spec.level, core)
                .map_err(|e| ExecError::Failed(e.to_string()))?;
            let sim_started = std::time::Instant::now();
            let r = if spec.profiled {
                vm.run_profiled(step_budget)
            } else {
                vm.run(step_budget)
            };
            let sim_nanos = sim_started.elapsed().as_nanos() as u64;
            match r {
                Ok(r) => Ok(CellResult {
                    counters: r.counters,
                    branch: r.branch,
                    output: r.output,
                    bytecodes: r.profile.as_ref().map(|p| p.total_bytecodes()),
                    sim_nanos,
                    trace: vm.cpu_mut().finish_trace(),
                }),
                Err(jsrt::EngineError::StepLimit { max_steps }) => {
                    Err(ExecError::StepBudget { steps: max_steps })
                }
                Err(e) => Err(ExecError::Failed(e.to_string())),
            }
        }
    }
}

/// Runs one workload on one engine at one ISA level (no pool, no cache;
/// kept for targeted tests and micro-measurements).
///
/// # Errors
///
/// Returns a descriptive string on any engine failure.
pub fn run_cell(
    w: &Workload,
    engine: EngineKind,
    level: IsaLevel,
    scale: Scale,
    profiled: bool,
) -> Result<CellResult, String> {
    let spec = job_spec(w, engine, level, scale, profiled);
    exec_job(&spec, MAX_STEPS).map_err(|e| match e {
        ExecError::StepBudget { steps } => format!(
            "{}: step budget exhausted after {steps} simulated instructions",
            spec.label()
        ),
        ExecError::Failed(msg) => format!("{}: {msg}", spec.label()),
    })
}

/// How [`Matrix::run_with`] executes the matrix.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Worker threads (`0` = one per core).
    pub workers: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-job step budget.
    pub step_budget: u64,
    /// Also run the Typed-level profiled cells Figure 9 needs.
    pub profiled: bool,
    /// Live progress line on stderr.
    pub progress: bool,
    /// Simulated core configuration for every cell.
    pub core: CoreConfig,
}

impl Default for MatrixOptions {
    fn default() -> MatrixOptions {
        MatrixOptions {
            workers: 0,
            cache_dir: None,
            step_budget: MAX_STEPS,
            profiled: false,
            progress: false,
            core: CoreConfig::paper(),
        }
    }
}

/// The default persistent cache location, shared by `repro` invocations.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target/tarch-cache")
}

/// A finished matrix run: the queryable matrix plus the raw outcomes
/// (for artifact emission) and pool statistics.
#[derive(Debug)]
pub struct MatrixRun {
    /// The assembled, cross-checked matrix.
    pub matrix: Matrix,
    /// Raw outcomes in submission order (what `BENCH_*.json` records).
    pub outcomes: Vec<JobOutcome>,
    /// Pool statistics (cache hits/misses, wall time, throughput).
    pub stats: RunStats,
    /// Scale the matrix ran at.
    pub scale: Scale,
    /// Step budget in force.
    pub step_budget: u64,
}

impl MatrixRun {
    /// Wraps the outcomes in a timestamped artifact.
    pub fn artifact(&self) -> BenchArtifact {
        BenchArtifact::new(self.scale, self.step_budget, self.outcomes.clone())
    }
}

/// The full experiment matrix: results keyed by `(workload, engine,
/// level)`, plus the Typed-level profiled cells when they were run.
#[derive(Debug, Default)]
pub struct Matrix {
    results: BTreeMap<(String, EngineKind, IsaLevel), CellResult>,
    profiled: BTreeMap<(String, EngineKind), CellResult>,
}

impl Matrix {
    /// Runs the whole matrix for the given workloads with default
    /// options (all cores, no cache, no profiled cells).
    ///
    /// Cross-checks that every (workload, engine) prints identical output
    /// across ISA levels.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on the first failing run or output
    /// mismatch.
    pub fn run(workloads: &[Workload], scale: Scale, verbose: bool) -> Result<Matrix, String> {
        let opts = MatrixOptions { progress: verbose, ..MatrixOptions::default() };
        Ok(Matrix::run_with(workloads, scale, &opts)?.matrix)
    }

    /// Runs the matrix on the parallel pool with explicit options.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on the first failing cell (by matrix
    /// order, deterministically), an output mismatch across ISA levels,
    /// or a cache-directory failure.
    pub fn run_with(
        workloads: &[Workload],
        scale: Scale,
        opts: &MatrixOptions,
    ) -> Result<MatrixRun, String> {
        let mut jobs = Vec::new();
        for w in workloads {
            for engine in EngineKind::ALL {
                for level in IsaLevel::ALL {
                    jobs.push(job_spec_with(w, engine, level, scale, false, &opts.core));
                }
            }
        }
        if opts.profiled {
            // Figure 9's profiled runs: Typed level only, both engines.
            for w in workloads {
                for engine in EngineKind::ALL {
                    jobs.push(job_spec_with(w, engine, IsaLevel::Typed, scale, true, &opts.core));
                }
            }
        }
        let cfg = RunConfig {
            workers: opts.workers,
            cache_dir: opts.cache_dir.clone(),
            step_budget: opts.step_budget,
            progress: opts.progress,
        };
        let report = run_jobs(jobs, &cfg, exec_job).map_err(|e| e.to_string())?;
        let matrix = Matrix::from_outcomes(&report.outcomes)?;
        Ok(MatrixRun {
            matrix,
            outcomes: report.outcomes,
            stats: report.stats,
            scale,
            step_budget: opts.step_budget,
        })
    }

    /// Assembles a matrix from job outcomes (a live run or a reloaded
    /// artifact), cross-checking output equality across ISA levels.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string if any (workload, engine) prints
    /// different output at different ISA levels.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Result<Matrix, String> {
        let mut m = Matrix::default();
        for o in outcomes {
            if o.spec.profiled {
                m.profiled
                    .insert((o.spec.workload.clone(), o.spec.engine), o.result.clone());
            } else {
                m.results.insert(
                    (o.spec.workload.clone(), o.spec.engine, o.spec.level),
                    o.result.clone(),
                );
            }
        }
        // Output must agree across ISA levels (same program, same input).
        for w in m.workloads() {
            for engine in EngineKind::ALL {
                let mut reference: Option<(&str, IsaLevel)> = None;
                for level in IsaLevel::ALL {
                    let Some(cell) = m.try_cell(&w, engine, level) else { continue };
                    match reference {
                        None => reference = Some((&cell.output, level)),
                        Some((expected, _)) => {
                            if expected != cell.output {
                                return Err(format!(
                                    "{w} / {engine:?}: output diverges at {level}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(m)
    }

    /// Rebuilds a matrix from a `BENCH_*.json` artifact, re-running the
    /// cross-level output check.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on an output mismatch (e.g. a
    /// hand-edited artifact).
    pub fn from_artifact(artifact: &BenchArtifact) -> Result<Matrix, String> {
        Matrix::from_outcomes(&artifact.outcomes)
    }

    /// Looks up a cell, panicking when absent (callers that construct
    /// the matrix themselves); figure renderers use [`Matrix::try_cell`]
    /// so a partial matrix reports a clean error instead of aborting.
    pub fn cell(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> &CellResult {
        self.try_cell(workload, engine, level)
            .unwrap_or_else(|| panic!("missing cell {workload}/{engine:?}/{level}"))
    }

    /// Fallible cell lookup.
    pub fn try_cell(
        &self,
        workload: &str,
        engine: EngineKind,
        level: IsaLevel,
    ) -> Option<&CellResult> {
        self.results.get(&(workload.to_string(), engine, level))
    }

    /// Typed-level profiled cell (Figure 9), when the run included one.
    pub fn profiled_cell(&self, workload: &str, engine: EngineKind) -> Option<&CellResult> {
        self.profiled.get(&(workload.to_string(), engine))
    }

    /// Whether the matrix carries any profiled cells.
    pub fn has_profiled(&self) -> bool {
        !self.profiled.is_empty()
    }

    /// Workload names present in the matrix, sorted.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.results.keys().map(|(w, _, _)| w.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Speedup of `level` over baseline for one cell (cycles ratio).
    pub fn speedup(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> f64 {
        self.try_speedup(workload, engine, level)
            .unwrap_or_else(|| panic!("missing cell {workload}/{engine:?}"))
    }

    /// Fallible [`Matrix::speedup`].
    pub fn try_speedup(
        &self,
        workload: &str,
        engine: EngineKind,
        level: IsaLevel,
    ) -> Option<f64> {
        let base = self.try_cell(workload, engine, IsaLevel::Baseline)?.counters.cycles;
        let this = self.try_cell(workload, engine, level)?.counters.cycles;
        Some(base as f64 / this as f64)
    }

    /// Dynamic-instruction reduction of `level` vs baseline (Figure 6).
    pub fn instr_reduction(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> f64 {
        self.try_instr_reduction(workload, engine, level)
            .unwrap_or_else(|| panic!("missing cell {workload}/{engine:?}"))
    }

    /// Fallible [`Matrix::instr_reduction`].
    pub fn try_instr_reduction(
        &self,
        workload: &str,
        engine: EngineKind,
        level: IsaLevel,
    ) -> Option<f64> {
        let base =
            self.try_cell(workload, engine, IsaLevel::Baseline)?.counters.instructions;
        let this = self.try_cell(workload, engine, level)?.counters.instructions;
        Some(1.0 - this as f64 / base as f64)
    }

    /// Geometric-mean speedup across all workloads (Figure 5's geomean).
    pub fn geomean_speedup(&self, engine: EngineKind, level: IsaLevel) -> f64 {
        geomean(self.workloads().iter().map(|w| self.speedup(w, engine, level)))
    }

    /// Geometric mean of per-benchmark cycle counts for one configuration
    /// (used by the Table 8 EDP computation).
    pub fn geomean_cycles(&self, engine: EngineKind, level: IsaLevel) -> f64 {
        geomean(
            self.workloads()
                .iter()
                .map(|w| self.cell(w, engine, level).counters.cycles as f64),
        )
    }
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Helper for display of errors (kept from the serial harness for
/// callers formatting engine failures).
pub fn format_cell_error(w: &Workload, engine: EngineKind, level: IsaLevel, e: &dyn fmt::Display) -> String {
    format!("{} / {engine:?} / {level}: {e}", w.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_cell_runs_and_counts() {
        let w = workloads::by_name("fibo").unwrap();
        let cell = run_cell(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, false).unwrap();
        assert_eq!(cell.output, "144\n");
        assert!(cell.counters.type_hits > 0);
        let profiled =
            run_cell(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, true).unwrap();
        assert!(profiled.bytecodes.unwrap() > 100);
    }

    #[test]
    fn mini_matrix_is_consistent() {
        let ws: Vec<_> = ["fibo", "n-sieve"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let m = Matrix::run(&ws, Scale::Test, false).unwrap();
        assert_eq!(m.workloads().len(), 2);
        for engine in EngineKind::ALL {
            let s = m.speedup("fibo", engine, IsaLevel::Typed);
            assert!(s > 0.8 && s < 2.0, "{engine:?} fibo speedup {s}");
        }
        // Typed must not execute more instructions than baseline on sieve
        // (table-heavy → clear win).
        let red = m.instr_reduction("n-sieve", EngineKind::Lua, IsaLevel::Typed);
        assert!(red > 0.0, "typed reduction {red}");
    }

    #[test]
    fn try_cell_reports_missing_cells_cleanly() {
        let m = Matrix::default();
        assert!(m.try_cell("fibo", EngineKind::Lua, IsaLevel::Typed).is_none());
        assert!(m.try_speedup("fibo", EngineKind::Lua, IsaLevel::Typed).is_none());
        assert!(m.try_instr_reduction("fibo", EngineKind::Lua, IsaLevel::Typed).is_none());
        assert!(m.profiled_cell("fibo", EngineKind::Lua).is_none());
    }

    #[test]
    fn step_budget_exhaustion_names_the_cell() {
        let w = workloads::by_name("fibo").unwrap();
        let spec = job_spec(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, false);
        match exec_job(&spec, 10) {
            Err(ExecError::StepBudget { steps }) => assert_eq!(steps, 10),
            other => panic!("expected StepBudget, got {other:?}"),
        }
    }

    #[test]
    fn vms_can_be_built_on_worker_threads() {
        // The pool builds VMs inside worker threads; both engines' VMs
        // must be Send so the closures that own them are too.
        fn assert_send<T: Send>() {}
        assert_send::<luart::LuaVm>();
        assert_send::<jsrt::JsVm>();
    }
}
