//! Experiment harness: runs the workload × engine × ISA-level matrix and
//! derives every quantity the paper's evaluation figures report.

use crate::workloads::{Scale, Workload};
use std::collections::BTreeMap;
use std::fmt;
use tarch_core::{BranchStats, CoreConfig, IsaLevel, PerfCounters};

/// Which scripting engine ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineKind {
    /// `luart`, the register-based Lua-like engine.
    Lua,
    /// `jsrt`, the stack-based NaN-boxing engine (SpiderMonkey stand-in).
    Js,
}

impl EngineKind {
    /// Both engines, Lua first (the paper's figure order).
    pub const ALL: [EngineKind; 2] = [EngineKind::Lua, EngineKind::Js];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Lua => "Lua",
            EngineKind::Js => "SpiderMonkey-like (JS)",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Hardware counters.
    pub counters: PerfCounters,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Printed output (checked for cross-config equality).
    pub output: String,
    /// Dynamic bytecode count (only present for profiled runs).
    pub bytecodes: Option<u64>,
}

impl CellResult {
    /// Branch misses per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.counters.per_kilo_instr(self.branch.total_misses())
    }
}

/// Step budget per run (generous; `Scale::Full` workloads are large).
pub const MAX_STEPS: u64 = 20_000_000_000;

/// Runs one workload on one engine at one ISA level.
///
/// # Errors
///
/// Returns a descriptive string on any engine failure.
pub fn run_cell(
    w: &Workload,
    engine: EngineKind,
    level: IsaLevel,
    scale: Scale,
    profiled: bool,
) -> Result<CellResult, String> {
    let src = w.source(scale);
    let core = CoreConfig::paper();
    let err = |e: &dyn fmt::Display| format!("{} / {engine:?} / {level}: {e}", w.name);
    match engine {
        EngineKind::Lua => {
            let mut vm =
                luart::LuaVm::from_source(&src, level, core).map_err(|e| err(&e))?;
            let r = if profiled {
                vm.run_profiled(MAX_STEPS).map_err(|e| err(&e))?
            } else {
                vm.run(MAX_STEPS).map_err(|e| err(&e))?
            };
            Ok(CellResult {
                counters: r.counters,
                branch: r.branch,
                output: r.output,
                bytecodes: r.profile.as_ref().map(|p| p.total_bytecodes()),
            })
        }
        EngineKind::Js => {
            let mut vm = jsrt::JsVm::from_source(&src, level, core).map_err(|e| err(&e))?;
            let r = if profiled {
                vm.run_profiled(MAX_STEPS).map_err(|e| err(&e))?
            } else {
                vm.run(MAX_STEPS).map_err(|e| err(&e))?
            };
            Ok(CellResult {
                counters: r.counters,
                branch: r.branch,
                output: r.output,
                bytecodes: r.profile.as_ref().map(|p| p.total_bytecodes()),
            })
        }
    }
}

/// The full experiment matrix: results keyed by `(workload, engine, level)`.
#[derive(Debug, Default)]
pub struct Matrix {
    results: BTreeMap<(String, EngineKind, IsaLevel), CellResult>,
}

impl Matrix {
    /// Runs the whole matrix for the given workloads.
    ///
    /// Cross-checks that every (workload, engine) prints identical output
    /// across ISA levels.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on the first failing run or output
    /// mismatch.
    pub fn run(workloads: &[Workload], scale: Scale, verbose: bool) -> Result<Matrix, String> {
        let mut m = Matrix::default();
        for w in workloads {
            for engine in EngineKind::ALL {
                let mut reference: Option<String> = None;
                for level in IsaLevel::ALL {
                    if verbose {
                        eprintln!("  running {} / {engine:?} / {level} ...", w.name);
                    }
                    let cell = run_cell(w, engine, level, scale, false)?;
                    match &reference {
                        None => reference = Some(cell.output.clone()),
                        Some(expected) => {
                            if *expected != cell.output {
                                return Err(format!(
                                    "{} / {engine:?}: output diverges at {level}",
                                    w.name
                                ));
                            }
                        }
                    }
                    m.results.insert((w.name.to_string(), engine, level), cell);
                }
            }
        }
        Ok(m)
    }

    /// Looks up a cell.
    pub fn cell(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> &CellResult {
        self.results
            .get(&(workload.to_string(), engine, level))
            .unwrap_or_else(|| panic!("missing cell {workload}/{engine:?}/{level}"))
    }

    /// Workload names present in the matrix, sorted.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.results.keys().map(|(w, _, _)| w.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Speedup of `level` over baseline for one cell (cycles ratio).
    pub fn speedup(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> f64 {
        let base = self.cell(workload, engine, IsaLevel::Baseline).counters.cycles;
        let this = self.cell(workload, engine, level).counters.cycles;
        base as f64 / this as f64
    }

    /// Dynamic-instruction reduction of `level` vs baseline (Figure 6).
    pub fn instr_reduction(&self, workload: &str, engine: EngineKind, level: IsaLevel) -> f64 {
        let base = self.cell(workload, engine, IsaLevel::Baseline).counters.instructions;
        let this = self.cell(workload, engine, level).counters.instructions;
        1.0 - this as f64 / base as f64
    }

    /// Geometric-mean speedup across all workloads (Figure 5's geomean).
    pub fn geomean_speedup(&self, engine: EngineKind, level: IsaLevel) -> f64 {
        geomean(self.workloads().iter().map(|w| self.speedup(w, engine, level)))
    }

    /// Geometric mean of per-benchmark cycle counts for one configuration
    /// (used by the Table 8 EDP computation).
    pub fn geomean_cycles(&self, engine: EngineKind, level: IsaLevel) -> f64 {
        geomean(
            self.workloads()
                .iter()
                .map(|w| self.cell(w, engine, level).counters.cycles as f64),
        )
    }
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_cell_runs_and_counts() {
        let w = workloads::by_name("fibo").unwrap();
        let cell = run_cell(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, false).unwrap();
        assert_eq!(cell.output, "144\n");
        assert!(cell.counters.type_hits > 0);
        let profiled =
            run_cell(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Test, true).unwrap();
        assert!(profiled.bytecodes.unwrap() > 100);
    }

    #[test]
    fn mini_matrix_is_consistent() {
        let ws: Vec<_> = ["fibo", "n-sieve"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let m = Matrix::run(&ws, Scale::Test, false).unwrap();
        assert_eq!(m.workloads().len(), 2);
        for engine in EngineKind::ALL {
            let s = m.speedup("fibo", engine, IsaLevel::Typed);
            assert!(s > 0.8 && s < 2.0, "{engine:?} fibo speedup {s}");
        }
        // Typed must not execute more instructions than baseline on sieve
        // (table-heavy → clear win).
        let red = m.instr_reduction("n-sieve", EngineKind::Lua, IsaLevel::Typed);
        assert!(red > 0.0, "typed reduction {red}");
    }
}
