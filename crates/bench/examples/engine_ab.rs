//! Host-performance A/B harness for the execution-engine fast paths.
//!
//! Runs the same workload under each fast-path configuration, interleaved
//! round-robin so host load drift affects all configurations equally, and
//! reports per-config MIPS. Used to attribute host speedups to individual
//! fast paths (see EXPERIMENTS.md); architectural results are identical
//! across rows by construction (tests/predecode_equiv.rs).
//!
//! Usage: engine_ab [workload] [rounds]

use std::time::Instant;
use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel};

const CONFIGS: [(&str, bool, bool, bool); 5] = [
    // (name, predecode, blocks, mem_fast_paths)
    ("naive", false, false, false),
    ("predecode", true, false, false),
    ("blocks", true, true, false),
    ("mru", true, false, true),
    ("all", true, true, true),
];

fn config(predecode: bool, blocks: bool, mem_fast_paths: bool) -> CoreConfig {
    CoreConfig { predecode, blocks, mem_fast_paths, ..CoreConfig::paper() }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "spectral-norm".into());
    let rounds: usize = args.next().map(|r| r.parse().expect("rounds")).unwrap_or(5);

    let w = workloads::by_name(&workload).expect("known workload");
    let src = w.source(Scale::Default);
    let chunk = miniscript::parse(&src).expect("parses");
    let module = luart::compile(&chunk).expect("compiles");

    let mut mips: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];
    for round in 0..rounds {
        for (i, (name, predecode, blocks, fast)) in CONFIGS.iter().enumerate() {
            let cfg = config(*predecode, *blocks, *fast);
            let mut vm = luart::LuaVm::new(&module, IsaLevel::Typed, cfg).expect("vm");
            let start = Instant::now();
            let report = vm.run(u64::MAX).expect("runs");
            let secs = start.elapsed().as_secs_f64();
            let m = report.counters.instructions as f64 / secs / 1e6;
            mips[i].push(m);
            println!("round {round} {name:10} {m:8.1} MIPS");
        }
    }
    println!("\n{:10} {:>8} {:>8}", "config", "max", "median");
    for (i, (name, ..)) in CONFIGS.iter().enumerate() {
        let mut v = mips[i].clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let max = v.last().copied().unwrap_or(0.0);
        let median = v[v.len() / 2];
        println!("{name:10} {max:8.1} {median:8.1}");
    }
}
