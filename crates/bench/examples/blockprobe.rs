//! Block-engine effectiveness stats and in-process A/B timing for one
//! workload cell — or the whole matrix.
//!
//! The default `repro bench` cells run for tens of milliseconds each, so
//! process-level wall-clock noise swamps engine-level effects on a busy
//! box. This probe runs cells repeatedly in a single process, alternating
//! fusion+chaining on and off, and reports per-config medians plus the
//! block-table statistics for the fast config (chained-transfer fraction,
//! revalidation count, average retired block length).
//!
//! Usage:
//!   `cargo run --release -p tarch-bench --example blockprobe \
//!      [workload] [lua|js] [reps]`       one cell at the Typed level
//!   `cargo run --release -p tarch-bench --example blockprobe \
//!      --all [reps]`                     every (workload, engine, level)
//!                                        cell; per-cell median ratios and
//!                                        the aggregate-MIPS ratio

use std::time::Instant;

use tarch_bench::workloads;
use tarch_core::{BlockStats, CoreConfig, IsaLevel, PerfCounters};
use tarch_runner::Scale;

fn run_cell(
    src: &str,
    engine: &str,
    level: IsaLevel,
    core: CoreConfig,
) -> (f64, PerfCounters, BlockStats) {
    if engine == "lua" {
        let mut vm = luart::LuaVm::from_source(src, level, core).expect("compiles");
        let start = Instant::now();
        vm.run(u64::MAX).expect("halts");
        let secs = start.elapsed().as_secs_f64();
        let c = *vm.cpu().counters();
        (c.instructions as f64 / secs / 1e6, c, vm.cpu().block_stats())
    } else {
        let mut vm = jsrt::JsVm::from_source(src, level, core).expect("compiles");
        let start = Instant::now();
        vm.run(u64::MAX).expect("halts");
        let secs = start.elapsed().as_secs_f64();
        let c = *vm.cpu().counters();
        (c.instructions as f64 / secs / 1e6, c, vm.cpu().block_stats())
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

fn fast() -> CoreConfig {
    CoreConfig::paper()
}

fn slow() -> CoreConfig {
    CoreConfig { fuse: false, chain_blocks: false, ..CoreConfig::paper() }
}

/// In-process A/B over every matrix cell: alternates configs within each
/// cell, takes per-cell median MIPS, and aggregates as total instructions
/// over total median time — the same definition as the artifact's
/// `host_mips`, minus the process-level noise.
fn probe_all(reps: usize) {
    let mut tot_instr = 0u64;
    let mut tot_on = 0.0f64;
    let mut tot_off = 0.0f64;
    println!("{:-38} {:>7} {:>7} {:>7}", "cell", "off", "on", "ratio");
    for w in workloads::all() {
        let src = w.source(Scale::Default);
        for engine in ["lua", "js"] {
            for level in IsaLevel::ALL {
                run_cell(&src, engine, level, fast()); // warm-up
                let mut on = Vec::new();
                let mut off = Vec::new();
                let mut instrs = 0;
                for _ in 0..reps {
                    let (m_on, c_on, _) = run_cell(&src, engine, level, fast());
                    let (m_off, c_off, _) = run_cell(&src, engine, level, slow());
                    assert_eq!(c_on, c_off, "fused/chained counters must match");
                    instrs = c_on.instructions;
                    on.push(m_on);
                    off.push(m_off);
                }
                let (m_on, m_off) = (median(&mut on), median(&mut off));
                println!(
                    "{:-28} {engine:>4} {:>5} {m_off:7.1} {m_on:7.1} {:7.3}",
                    w.name,
                    level.name(),
                    m_on / m_off
                );
                tot_instr += instrs;
                tot_on += instrs as f64 / (m_on * 1e6);
                tot_off += instrs as f64 / (m_off * 1e6);
            }
        }
    }
    println!(
        "aggregate ({tot_instr} instrs): off {:.1} MIPS, on {:.1} MIPS, ratio {:.3}x",
        tot_instr as f64 / tot_off / 1e6,
        tot_instr as f64 / tot_on / 1e6,
        tot_off / tot_on
    );
}

fn probe_one(name: &str, engine: &str, reps: usize) {
    let w = workloads::by_name(name).expect("known workload");
    let src = w.source(Scale::Default);

    // Warm-up (page faults, first-touch, frequency scaling).
    run_cell(&src, engine, IsaLevel::Typed, fast());
    run_cell(&src, engine, IsaLevel::Typed, slow());

    let mut on = Vec::new();
    let mut off = Vec::new();
    let mut kept: Option<(PerfCounters, BlockStats)> = None;
    for _ in 0..reps {
        let (m_on, c_on, stats) = run_cell(&src, engine, IsaLevel::Typed, fast());
        let (m_off, c_off, _) = run_cell(&src, engine, IsaLevel::Typed, slow());
        assert_eq!(c_on, c_off, "fused/chained counters must match plain blocks");
        kept = Some((c_on, stats));
        on.push(m_on);
        off.push(m_off);
        println!("  on {m_on:7.1} MIPS   off {m_off:7.1} MIPS");
    }
    let (counters, stats) = kept.expect("reps > 0");
    let entries = stats.hits + stats.builds + stats.chained_transfers;
    println!("{name} ({engine}): {} instrs", counters.instructions);
    println!("{stats:#?}");
    println!(
        "block entries: {entries} (avg len {:.2}), chained {:.1}%",
        counters.instructions as f64 / entries as f64,
        100.0 * stats.chained_transfers as f64 / entries as f64
    );
    let (m_on, m_off) = (median(&mut on), median(&mut off));
    println!("median: on {m_on:.1} MIPS, off {m_off:.1} MIPS, ratio {:.3}x", m_on / m_off);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next().unwrap_or_else(|| "k-nucleotide".into());
    if first == "--all" {
        let reps: usize = args.next().map_or(3, |s| s.parse().expect("reps"));
        probe_all(reps);
    } else {
        let engine = args.next().unwrap_or_else(|| "lua".into());
        let reps: usize = args.next().map_or(7, |s| s.parse().expect("reps"));
        probe_one(&first, &engine, reps);
    }
}
