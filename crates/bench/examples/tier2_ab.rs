//! Host-performance A/B harness for tier-2 template compilation.
//!
//! Runs every default-matrix cell (11 workloads x 2 engines x 3 ISA
//! levels) twice — tier 2 off and tier 2 on, everything else at the
//! shipping default — interleaved round-robin so host load drift affects
//! both arms equally. Per cell it reports the max-of-rounds simulated
//! MIPS of each arm and their ratio, verifies the architectural counters
//! are bit-identical between arms (tier 2 is a host-side fast path and
//! must be invisible), and exits nonzero if the aggregate ratio shows a
//! regression.
//!
//! Usage: tier2_ab [rounds] [--test-scale]

use std::time::Instant;
use tarch_bench::workloads::{self, Scale};
use tarch_core::{BranchStats, CoreConfig, IsaLevel, PerfCounters};
use tarch_runner::EngineKind;

fn config(tier2: bool) -> CoreConfig {
    CoreConfig { tier2, ..CoreConfig::paper() }
}

/// One cell of the matrix, with its per-arm best observed MIPS.
struct Cell {
    label: String,
    mips: [f64; 2], // [tier2 off, tier2 on]
}

fn run_cell(
    src: &str,
    engine: EngineKind,
    level: IsaLevel,
    cfg: CoreConfig,
    label: &str,
) -> (f64, PerfCounters, BranchStats) {
    let (counters, branch, secs) = match engine {
        EngineKind::Lua => {
            let mut vm = luart::LuaVm::from_source(src, level, cfg)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let start = Instant::now();
            let r = vm.run(u64::MAX).unwrap_or_else(|e| panic!("{label}: {e}"));
            (r.counters, r.branch, start.elapsed().as_secs_f64())
        }
        EngineKind::Js => {
            let mut vm = jsrt::JsVm::from_source(src, level, cfg)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let start = Instant::now();
            let r = vm.run(u64::MAX).unwrap_or_else(|e| panic!("{label}: {e}"));
            (r.counters, r.branch, start.elapsed().as_secs_f64())
        }
    };
    let mips = counters.instructions as f64 / secs / 1e6;
    (mips, counters, branch)
}

fn main() {
    let mut rounds = 3usize;
    let mut scale = Scale::Default;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--test-scale" => scale = Scale::Test,
            n => rounds = n.parse().expect("rounds"),
        }
    }

    let specs: Vec<(String, String, EngineKind, IsaLevel)> = workloads::all()
        .iter()
        .flat_map(|w| {
            let src = w.source(scale);
            EngineKind::ALL.into_iter().flat_map(move |engine| {
                let src = src.clone();
                let name = w.name.to_string();
                IsaLevel::ALL.into_iter().map(move |level| {
                    (format!("{}/{}/{}", name, engine.id(), level.name()), src.clone(), engine, level)
                })
            })
        })
        .collect();
    eprintln!("{} cells x 2 arms x {rounds} round(s) at scale {}", specs.len(), scale.id());

    let mut cells: Vec<Cell> = specs
        .iter()
        .map(|(label, ..)| Cell { label: label.clone(), mips: [0.0; 2] })
        .collect();

    for round in 0..rounds {
        eprintln!("round {round}...");
        for (i, (label, src, engine, level)) in specs.iter().enumerate() {
            let (off_mips, off_counters, off_branch) =
                run_cell(src, *engine, *level, config(false), label);
            let (on_mips, on_counters, on_branch) =
                run_cell(src, *engine, *level, config(true), label);
            assert_eq!(
                on_counters, off_counters,
                "{label}: tier-2 arm diverged architecturally"
            );
            assert_eq!(on_branch, off_branch, "{label}: branch stats diverged");
            cells[i].mips[0] = cells[i].mips[0].max(off_mips);
            cells[i].mips[1] = cells[i].mips[1].max(on_mips);
        }
    }

    println!(
        "{:<28} {:>10} {:>10} {:>7}",
        "cell", "tier1 MIPS", "tier2 MIPS", "ratio"
    );
    let mut regressions = 0usize;
    let (mut sum_off, mut sum_on) = (0.0f64, 0.0f64);
    for c in &cells {
        let ratio = c.mips[1] / c.mips[0];
        sum_off += c.mips[0];
        sum_on += c.mips[1];
        let marker = if ratio < 1.0 { "  <-- regression" } else { "" };
        if ratio < 1.0 {
            regressions += 1;
        }
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>6.2}x{marker}",
            c.label, c.mips[0], c.mips[1], ratio
        );
    }
    let n = cells.len() as f64;
    println!(
        "\naggregate (mean per-cell MIPS): {:.1} -> {:.1} ({:.2}x), {} cell(s) below 1.0x",
        sum_off / n,
        sum_on / n,
        sum_on / sum_off,
        regressions,
    );
    if sum_on <= sum_off {
        eprintln!("tier-2 aggregate regression");
        std::process::exit(1);
    }
}
