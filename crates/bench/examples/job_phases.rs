//! Breaks one bench cell's wall time into host phases: parse, compile,
//! VM build, and simulation. Diagnostic for where `host_mips` goes at
//! small scales.

use std::time::Instant;
use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "spectral-norm".into());
    let w = workloads::by_name(&workload).expect("known workload");
    let src = w.source(Scale::Default);

    for round in 0..3 {
        let t0 = Instant::now();
        let chunk = miniscript::parse(&src).expect("parses");
        let t1 = Instant::now();
        let module = luart::compile(&chunk).expect("compiles");
        let t2 = Instant::now();
        let mut vm =
            luart::LuaVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).expect("vm");
        let t3 = Instant::now();
        let report = vm.run(u64::MAX).expect("runs");
        let t4 = Instant::now();
        println!(
            "lua round {round}: parse {:6.1}ms  compile {:6.1}ms  build {:6.1}ms  sim {:6.1}ms  ({} instrs, {:.1} sim-MIPS)",
            (t1 - t0).as_secs_f64() * 1e3,
            (t2 - t1).as_secs_f64() * 1e3,
            (t3 - t2).as_secs_f64() * 1e3,
            (t4 - t3).as_secs_f64() * 1e3,
            report.counters.instructions,
            report.counters.instructions as f64 / (t4 - t3).as_secs_f64() / 1e6,
        );
    }

    for round in 0..3 {
        let t0 = Instant::now();
        let mut vm = jsrt::JsVm::from_source(&src, IsaLevel::Typed, CoreConfig::paper())
            .expect("js vm");
        let t1 = Instant::now();
        let report = vm.run(u64::MAX).expect("runs");
        let t2 = Instant::now();
        println!(
            "js  round {round}: front+build {:6.1}ms  sim {:6.1}ms  ({} instrs, {:.1} sim-MIPS)",
            (t1 - t0).as_secs_f64() * 1e3,
            (t2 - t1).as_secs_f64() * 1e3,
            report.counters.instructions,
            report.counters.instructions as f64 / (t2 - t1).as_secs_f64() / 1e6,
        );
    }
}
