//! Runs the shipping configuration in a loop; profiling target.
use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel};

fn main() {
    let rounds: usize =
        std::env::args().nth(1).and_then(|r| r.parse().ok()).unwrap_or(10);
    let w = workloads::by_name("spectral-norm").expect("known workload");
    let src = w.source(Scale::Default);
    let chunk = miniscript::parse(&src).expect("parses");
    let module = luart::compile(&chunk).expect("compiles");
    let mut total = 0u64;
    for _ in 0..rounds {
        let mut vm =
            luart::LuaVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).expect("vm");
        total += vm.run(u64::MAX).expect("runs").counters.instructions;
    }
    println!("{total} instructions");
}
