//! Compares the bench harness job path (`exec_job`, what `repro bench`
//! times) against a direct in-process VM run of the same cell,
//! interleaved. If these diverge, the bench path is paying costs the
//! direct path does not.

use std::time::Instant;
use tarch_bench::harness::{exec_job, job_spec, EngineKind};
use tarch_bench::workloads::{self, Scale};
use tarch_core::{CoreConfig, IsaLevel};

fn main() {
    let w = workloads::by_name("spectral-norm").expect("known workload");
    let src = w.source(Scale::Default);
    let chunk = miniscript::parse(&src).expect("parses");
    let module = luart::compile(&chunk).expect("compiles");
    let spec = job_spec(&w, EngineKind::Lua, IsaLevel::Typed, Scale::Default, false);

    for round in 0..5 {
        let t0 = Instant::now();
        let cell = exec_job(&spec, u64::MAX).expect("job runs");
        let harness_ms = t0.elapsed().as_secs_f64() * 1e3;
        let harness_mips = cell.counters.instructions as f64 / harness_ms / 1e3;

        let mut vm =
            luart::LuaVm::new(&module, IsaLevel::Typed, CoreConfig::paper()).expect("vm");
        let t1 = Instant::now();
        let report = vm.run(u64::MAX).expect("runs");
        let direct_ms = t1.elapsed().as_secs_f64() * 1e3;
        let direct_mips = report.counters.instructions as f64 / direct_ms / 1e3;

        println!(
            "round {round}: harness {harness_mips:6.1} MIPS ({harness_ms:6.1}ms)   direct {direct_mips:6.1} MIPS ({direct_ms:6.1}ms)"
        );
    }
}
