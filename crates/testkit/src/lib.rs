//! # tarch-testkit — deterministic randomness for tests
//!
//! A tiny, dependency-free stand-in for the parts of `proptest`/`rand`
//! the test suites used. The repository must build and test with no
//! network access, so randomized tests draw from this seeded xorshift
//! generator instead: every run explores the same sequence, failures
//! reproduce exactly, and there is nothing to download.
//!
//! The generator is xorshift64* (Vigna), which is plenty for test-input
//! shuffling; it is **not** a cryptographic PRNG.

/// Deterministic xorshift64* pseudo-random generator.
///
/// # Examples
///
/// ```
/// let mut rng = tarch_testkit::Rng::new(42);
/// let a = rng.u64();
/// let b = rng.u64();
/// assert_ne!(a, b);
/// assert_eq!(tarch_testkit::Rng::new(42).u64(), a);
/// ```
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Rng {
        // Avoid the all-zero state, where xorshift gets stuck.
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64() % (hi - lo)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add((self.u64() % (hi.wrapping_sub(lo) as u64)) as i64)
    }

    /// Uniform value in `[lo, hi)` for `i32` ranges.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform value in `[lo, hi)` for `usize` ranges.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// An arbitrary `i32` (full range).
    pub fn i32(&mut self) -> i32 {
        self.u64() as i32
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// A reference to a uniformly chosen element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).u64(), c.u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Rng::new(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.u64()).collect();
        assert!(vals.iter().any(|v| *v != vals[0]));
    }

    #[test]
    fn choice_covers_all_elements() {
        let mut rng = Rng::new(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[*rng.choice(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
