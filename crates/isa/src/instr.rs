//! TRV64 instruction definitions.
//!
//! The instruction set is a 64-bit RISC-style base (close to RV64IMFD in
//! spirit, with a clean fixed 32-bit encoding of our own, see
//! [`crate::encode`]) plus two extensions evaluated by the paper:
//!
//! * the **Typed Architecture** extension (Table 2 of the paper): tagged
//!   memory instructions `tld`/`tsd`, polymorphic ALU instructions
//!   `xadd`/`xsub`/`xmul`, configuration instructions for the tag
//!   extract/insert datapath and the Type Rule Table, and the miscellaneous
//!   `thdl`/`tchk`/`tget`/`tset`;
//! * the **Checked Load** extension (Anderson et al., HPCA'11, the paper's
//!   comparison baseline): `settype` and the fused load-compare-branch
//!   `chklb`.

use crate::{FReg, Reg};
use std::fmt;

/// Register-register integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Mulh,
    Div,
    Divu,
    Rem,
    Remu,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    /// 32-bit add, result sign-extended.
    Addw,
    Subw,
    Mulw,
    Divw,
    Remw,
    Sllw,
    Srlw,
    Sraw,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 24] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Mulw,
        AluOp::Divw,
        AluOp::Remw,
        AluOp::Sllw,
        AluOp::Srlw,
        AluOp::Sraw,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Remw => "remw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
        }
    }
}

/// Register-immediate integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// All operations, in encoding order.
    pub const ALL: [AluImmOp; 13] = [
        AluImmOp::Addi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
        AluImmOp::Addiw,
        AluImmOp::Slliw,
        AluImmOp::Srliw,
        AluImmOp::Sraiw,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }

    /// Whether the immediate is a 6-bit shift amount rather than a 15-bit
    /// signed value.
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }
}

/// Memory access width for integer loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Double,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// All conditions, in encoding order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Double-precision FP register-register operations (FP register file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    /// Square root; `rs2` is ignored.
    Fsqrt,
    Fmin,
    Fmax,
    /// Sign injection: magnitude of rs1, sign of rs2 (`fsgnj.d`).
    Fsgnj,
    /// Negated sign injection (`fsgnjn.d`); `fsgnjn rd, rs, rs` negates.
    Fsgnjn,
}

impl FpuOp {
    /// All operations, in encoding order.
    pub const ALL: [FpuOp; 9] = [
        FpuOp::Fadd,
        FpuOp::Fsub,
        FpuOp::Fmul,
        FpuOp::Fdiv,
        FpuOp::Fsqrt,
        FpuOp::Fmin,
        FpuOp::Fmax,
        FpuOp::Fsgnj,
        FpuOp::Fsgnjn,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Fadd => "fadd.d",
            FpuOp::Fsub => "fsub.d",
            FpuOp::Fmul => "fmul.d",
            FpuOp::Fdiv => "fdiv.d",
            FpuOp::Fsqrt => "fsqrt.d",
            FpuOp::Fmin => "fmin.d",
            FpuOp::Fmax => "fmax.d",
            FpuOp::Fsgnj => "fsgnj.d",
            FpuOp::Fsgnjn => "fsgnjn.d",
        }
    }
}

/// FP comparisons; result is written to an integer register (0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    Feq,
    Flt,
    Fle,
}

impl FpCmpOp {
    /// All comparisons, in encoding order.
    pub const ALL: [FpCmpOp; 3] = [FpCmpOp::Feq, FpCmpOp::Flt, FpCmpOp::Fle];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Feq => "feq.d",
            FpCmpOp::Flt => "flt.d",
            FpCmpOp::Fle => "fle.d",
        }
    }
}

/// Polymorphic (typed) ALU operations; bound to the integer or FP ALU at
/// runtime based on the operands' F/I̅ bits (Section 3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypedAluOp {
    Xadd,
    Xsub,
    Xmul,
}

impl TypedAluOp {
    /// All operations, in encoding order.
    pub const ALL: [TypedAluOp; 3] = [TypedAluOp::Xadd, TypedAluOp::Xsub, TypedAluOp::Xmul];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TypedAluOp::Xadd => "xadd",
            TypedAluOp::Xsub => "xsub",
            TypedAluOp::Xmul => "xmul",
        }
    }

    /// Opcode-class key used when looking up the Type Rule Table.
    pub fn trt_class(self) -> TrtClass {
        match self {
            TypedAluOp::Xadd => TrtClass::Xadd,
            TypedAluOp::Xsub => TrtClass::Xsub,
            TypedAluOp::Xmul => TrtClass::Xmul,
        }
    }
}

/// Opcode-class component of a Type Rule Table key.
///
/// The TRT is looked up with `(class, type_in1, type_in2)`; see
/// [`TrtRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrtClass {
    Xadd,
    Xsub,
    Xmul,
    /// Stand-alone type check (`tchk` instruction).
    Tchk,
}

impl TrtClass {
    /// All classes, in encoding order.
    pub const ALL: [TrtClass; 4] = [TrtClass::Xadd, TrtClass::Xsub, TrtClass::Xmul, TrtClass::Tchk];

    /// Numeric encoding used in packed rules.
    pub fn code(self) -> u8 {
        match self {
            TrtClass::Xadd => 0,
            TrtClass::Xsub => 1,
            TrtClass::Xmul => 2,
            TrtClass::Tchk => 3,
        }
    }

    /// Inverse of [`TrtClass::code`].
    pub fn from_code(code: u8) -> Option<TrtClass> {
        match code {
            0 => Some(TrtClass::Xadd),
            1 => Some(TrtClass::Xsub),
            2 => Some(TrtClass::Xmul),
            3 => Some(TrtClass::Tchk),
            _ => None,
        }
    }
}

impl fmt::Display for TrtClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrtClass::Xadd => "xadd",
            TrtClass::Xsub => "xsub",
            TrtClass::Xmul => "xmul",
            TrtClass::Tchk => "tchk",
        };
        f.write_str(s)
    }
}

/// One Type Rule Table entry: `(class, in1, in2) → out`.
///
/// Software pushes rules into the TRT with `set_trt Ra`, where `Ra.v` holds
/// the rule in the packed format produced by [`TrtRule::pack`]:
/// bits `[7:0]` = in1, `[15:8]` = in2, `[23:16]` = class code,
/// `[31:24]` = out.
///
/// # Examples
///
/// ```
/// use tarch_isa::{TrtClass, TrtRule};
/// let rule = TrtRule::new(TrtClass::Xadd, 0x13, 0x13, 0x13);
/// assert_eq!(TrtRule::unpack(rule.pack()), Some(rule));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrtRule {
    /// Opcode class of the rule.
    pub class: TrtClass,
    /// First source operand type tag.
    pub in1: u8,
    /// Second source operand type tag.
    pub in2: u8,
    /// Output type tag written to the destination register on a hit.
    pub out: u8,
}

impl TrtRule {
    /// Creates a rule.
    pub fn new(class: TrtClass, in1: u8, in2: u8, out: u8) -> TrtRule {
        TrtRule { class, in1, in2, out }
    }

    /// Packs the rule into the `set_trt` register format.
    pub fn pack(self) -> u64 {
        (self.in1 as u64)
            | ((self.in2 as u64) << 8)
            | ((self.class.code() as u64) << 16)
            | ((self.out as u64) << 24)
    }

    /// Unpacks a rule from the `set_trt` register format.
    ///
    /// Returns `None` if the class code is invalid.
    pub fn unpack(packed: u64) -> Option<TrtRule> {
        let class = TrtClass::from_code(((packed >> 16) & 0xff) as u8)?;
        Some(TrtRule {
            class,
            in1: (packed & 0xff) as u8,
            in2: ((packed >> 8) & 0xff) as u8,
            out: ((packed >> 24) & 0xff) as u8,
        })
    }
}

/// Special-purpose registers written by configuration instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spr {
    /// `R_offset`: tag double-word selection + NaN-detection enable +
    /// overflow-detection enable (see `tarch-core::tagio`).
    Offset,
    /// `R_mask`: 8-bit tag extraction mask.
    Mask,
    /// `R_shift`: 6-bit starting bit of the tag field.
    Shift,
    /// Push a packed [`TrtRule`] into the Type Rule Table.
    TrtPush,
    /// `R_exptype`: expected type for the Checked Load `chklb` instruction.
    ExpType,
}

impl Spr {
    /// All special-purpose register targets, in encoding order.
    pub const ALL: [Spr; 5] = [Spr::Offset, Spr::Mask, Spr::Shift, Spr::TrtPush, Spr::ExpType];

    /// Assembly mnemonic of the instruction that writes this SPR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Spr::Offset => "setoffset",
            Spr::Mask => "setmask",
            Spr::Shift => "setshift",
            Spr::TrtPush => "set_trt",
            Spr::ExpType => "settype",
        }
    }
}

/// Control and status registers readable with `csrr` (performance counters).
///
/// The paper integrates custom performance counters into the Rocket core for
/// its analysis (Section 6); these expose the same quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Csr {
    /// Elapsed cycles.
    Cycle,
    /// Retired instructions.
    Instret,
    /// Type Rule Table hits (tagged ALU + `tchk`).
    TypeHit,
    /// Type mispredictions (TRT misses + overflow-triggered).
    TypeMiss,
    /// Branch direction/target mispredictions.
    BranchMiss,
    /// L1 I-cache misses.
    ICacheMiss,
    /// L1 D-cache misses.
    DCacheMiss,
}

impl Csr {
    /// All CSRs, in encoding order.
    pub const ALL: [Csr; 7] = [
        Csr::Cycle,
        Csr::Instret,
        Csr::TypeHit,
        Csr::TypeMiss,
        Csr::BranchMiss,
        Csr::ICacheMiss,
        Csr::DCacheMiss,
    ];

    /// Assembly name.
    pub fn name(self) -> &'static str {
        match self {
            Csr::Cycle => "cycle",
            Csr::Instret => "instret",
            Csr::TypeHit => "typehit",
            Csr::TypeMiss => "typemiss",
            Csr::BranchMiss => "branchmiss",
            Csr::ICacheMiss => "icachemiss",
            Csr::DCacheMiss => "dcachemiss",
        }
    }

    /// Parses an assembly name.
    pub fn parse(name: &str) -> Option<Csr> {
        Csr::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// A single TRV64 instruction.
///
/// Variants group instructions by operand format; the inner `op` enums select
/// the concrete operation. Branch/jump `offset` fields are byte offsets
/// relative to the instruction's own PC and must be multiples of 4.
///
/// # Examples
///
/// ```
/// use tarch_isa::{AluOp, Instruction, Reg};
/// let add = Instruction::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
/// assert_eq!(add.to_string(), "add a0, a1, a2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register-register integer ALU operation.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate integer ALU operation. For shifts the immediate is
    /// a 6-bit amount; otherwise a 15-bit signed value.
    AluImm { op: AluImmOp, rd: Reg, rs1: Reg, imm: i32 },
    /// `rd ← sign_extend(imm << 12)`; `imm` is a 20-bit signed value.
    Lui { rd: Reg, imm: i32 },
    /// Integer load: `rd ← Mem[rs1 + imm]`.
    Load { width: MemWidth, signed: bool, rd: Reg, rs1: Reg, imm: i32 },
    /// Integer store: `Mem[rs1 + imm] ← rs2`.
    Store { width: MemWidth, rs2: Reg, rs1: Reg, imm: i32 },
    /// Conditional branch to `pc + offset`.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, offset: i32 },
    /// Jump and link: `rd ← pc + 4; pc ← pc + offset`.
    Jal { rd: Reg, offset: i32 },
    /// Indirect jump and link: `rd ← pc + 4; pc ← (rs1 + imm) & !1`.
    Jalr { rd: Reg, rs1: Reg, imm: i32 },
    /// FP register-register operation (baseline FP register file).
    Fpu { op: FpuOp, rd: FReg, rs1: FReg, rs2: FReg },
    /// FP comparison writing 0/1 to an integer register.
    FpCmp { op: FpCmpOp, rd: Reg, rs1: FReg, rs2: FReg },
    /// FP load: `rd ← Mem[rs1 + imm]` (8 bytes).
    FpLoad { rd: FReg, rs1: Reg, imm: i32 },
    /// FP store: `Mem[rs1 + imm] ← rs2` (8 bytes).
    FpStore { rs2: FReg, rs1: Reg, imm: i32 },
    /// `fcvt.d.l`: convert signed 64-bit integer (x-reg) to double (f-reg).
    FcvtDL { rd: FReg, rs1: Reg },
    /// `fcvt.l.d`: convert double (f-reg) to signed 64-bit integer (x-reg),
    /// rounding toward zero.
    FcvtLD { rd: Reg, rs1: FReg },
    /// `fmv.x.d`: move raw bits from an f-reg to an x-reg.
    FmvXD { rd: Reg, rs1: FReg },
    /// `fmv.d.x`: move raw bits from an x-reg to an f-reg.
    FmvDX { rd: FReg, rs1: Reg },

    // --- Typed Architecture extension (Table 2) ---
    /// Tagged load: `rd.v ← Mem[rs1+imm]`, `rd.t ← extract(...)`,
    /// `rd.f ← F/I̅` per the tag extraction datapath.
    Tld { rd: Reg, rs1: Reg, imm: i32 },
    /// Tagged store: value and re-inserted tag written to memory.
    Tsd { rs2: Reg, rs1: Reg, imm: i32 },
    /// Polymorphic ALU operation with implicit TRT type check.
    Typed { op: TypedAluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Write a special-purpose register from `rs1` (`setoffset`, `setmask`,
    /// `setshift`, `set_trt`, `settype`).
    SetSpr { spr: Spr, rs1: Reg },
    /// Flush all Type Rule Table entries.
    FlushTrt,
    /// `R_hdl ← pc + 4 + offset`: register the type-miss handler address.
    Thdl { offset: i32 },
    /// Stand-alone type check of `(rs1.t, rs2.t)` against the TRT; falls
    /// through on a hit, jumps to `R_hdl` on a miss.
    Tchk { rs1: Reg, rs2: Reg },
    /// `rd.v ← zero_extend(rs1.t)`.
    Tget { rd: Reg, rs1: Reg },
    /// `rd.t ← rs1.v[7:0]` (note operand order follows the paper:
    /// `tset Ra, Rb` writes Rb's tag from Ra's value).
    Tset { rs1: Reg, rd: Reg },

    // --- Checked Load extension (comparison baseline) ---
    /// Fused checked load byte: `rd ← zext(Mem[rs1+imm])`; if the loaded
    /// byte differs from `R_exptype`, redirect to `R_hdl`.
    Chklb { rd: Reg, rs1: Reg, imm: i32 },

    // --- System ---
    /// Read a performance-counter CSR.
    Csrr { rd: Reg, csr: Csr },
    /// Environment call into the native host (helper id in `a7`).
    Ecall,
    /// Stop simulation.
    Halt,
}

impl Instruction {
    /// Assembly mnemonic of the instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Alu { op, .. } => op.mnemonic(),
            Instruction::AluImm { op, .. } => op.mnemonic(),
            Instruction::Lui { .. } => "lui",
            Instruction::Load { width, signed, .. } => match (width, signed) {
                (MemWidth::Byte, true) => "lb",
                (MemWidth::Byte, false) => "lbu",
                (MemWidth::Half, true) => "lh",
                (MemWidth::Half, false) => "lhu",
                (MemWidth::Word, true) => "lw",
                (MemWidth::Word, false) => "lwu",
                (MemWidth::Double, _) => "ld",
            },
            Instruction::Store { width, .. } => match width {
                MemWidth::Byte => "sb",
                MemWidth::Half => "sh",
                MemWidth::Word => "sw",
                MemWidth::Double => "sd",
            },
            Instruction::Branch { cond, .. } => cond.mnemonic(),
            Instruction::Jal { .. } => "jal",
            Instruction::Jalr { .. } => "jalr",
            Instruction::Fpu { op, .. } => op.mnemonic(),
            Instruction::FpCmp { op, .. } => op.mnemonic(),
            Instruction::FpLoad { .. } => "fld",
            Instruction::FpStore { .. } => "fsd",
            Instruction::FcvtDL { .. } => "fcvt.d.l",
            Instruction::FcvtLD { .. } => "fcvt.l.d",
            Instruction::FmvXD { .. } => "fmv.x.d",
            Instruction::FmvDX { .. } => "fmv.d.x",
            Instruction::Tld { .. } => "tld",
            Instruction::Tsd { .. } => "tsd",
            Instruction::Typed { op, .. } => op.mnemonic(),
            Instruction::SetSpr { spr, .. } => spr.mnemonic(),
            Instruction::FlushTrt => "flush_trt",
            Instruction::Thdl { .. } => "thdl",
            Instruction::Tchk { .. } => "tchk",
            Instruction::Tget { .. } => "tget",
            Instruction::Tset { .. } => "tset",
            Instruction::Chklb { .. } => "chklb",
            Instruction::Csrr { .. } => "csrr",
            Instruction::Ecall => "ecall",
            Instruction::Halt => "halt",
        }
    }

    /// Whether this instruction belongs to the Typed Architecture extension.
    ///
    /// `settype` is attributed to the Checked Load extension even though it
    /// shares the `SetSpr` variant.
    pub fn is_typed_ext(&self) -> bool {
        matches!(
            self,
            Instruction::Tld { .. }
                | Instruction::Tsd { .. }
                | Instruction::Typed { .. }
                | Instruction::FlushTrt
                | Instruction::Thdl { .. }
                | Instruction::Tchk { .. }
                | Instruction::Tget { .. }
                | Instruction::Tset { .. }
        ) || matches!(
            self,
            Instruction::SetSpr { spr, .. } if *spr != Spr::ExpType
        )
    }

    /// Whether this instruction belongs to the Checked Load extension.
    pub fn is_checked_load_ext(&self) -> bool {
        matches!(self, Instruction::Chklb { .. })
            || matches!(self, Instruction::SetSpr { spr: Spr::ExpType, .. })
    }

    /// Whether this is a control-flow instruction (branch, jump, or an
    /// instruction that may redirect to `R_hdl`).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::Jal { .. }
                | Instruction::Jalr { .. }
                | Instruction::Typed { .. }
                | Instruction::Tchk { .. }
                | Instruction::Chklb { .. }
        )
    }

    /// Whether this instruction reads or writes data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::FpLoad { .. }
                | Instruction::FpStore { .. }
                | Instruction::Tld { .. }
                | Instruction::Tsd { .. }
                | Instruction::Chklb { .. }
        )
    }

    /// The integer destination register written by this instruction, if any.
    /// `x0` destinations are reported as `None` (writes to `x0` are dropped).
    pub fn int_dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Lui { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::FpCmp { rd, .. }
            | Instruction::FcvtLD { rd, .. }
            | Instruction::FmvXD { rd, .. }
            | Instruction::Tld { rd, .. }
            | Instruction::Typed { rd, .. }
            | Instruction::Tget { rd, .. }
            | Instruction::Tset { rd, .. }
            | Instruction::Chklb { rd, .. }
            | Instruction::Csrr { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Integer source registers read by this instruction.
    pub fn int_sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Instruction::Alu { rs1, rs2, .. }
            | Instruction::Branch { rs1, rs2, .. }
            | Instruction::Typed { rs1, rs2, .. }
            | Instruction::Tchk { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instruction::Store { rs1, rs2, .. } | Instruction::Tsd { rs1, rs2, .. } => {
                (Some(rs1), Some(rs2))
            }
            Instruction::AluImm { rs1, .. }
            | Instruction::Load { rs1, .. }
            | Instruction::Jalr { rs1, .. }
            | Instruction::FpLoad { rs1, .. }
            | Instruction::FpStore { rs1, .. }
            | Instruction::FcvtDL { rs1, .. }
            | Instruction::FmvDX { rs1, .. }
            | Instruction::Tld { rs1, .. }
            | Instruction::SetSpr { rs1, .. }
            | Instruction::Tget { rs1, .. }
            | Instruction::Chklb { rs1, .. } => (Some(rs1), None),
            Instruction::Tset { rs1, rd } => (Some(rs1), Some(rd)),
            _ => (None, None),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Instruction::Alu { rd, rs1, rs2, .. } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instruction::AluImm { rd, rs1, imm, .. } => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Instruction::Lui { rd, imm } => write!(f, "{m} {rd}, {imm}"),
            Instruction::Load { rd, rs1, imm, .. } => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instruction::Store { rs2, rs1, imm, .. } => write!(f, "{m} {rs2}, {imm}({rs1})"),
            Instruction::Branch { rs1, rs2, offset, .. } => {
                write!(f, "{m} {rs1}, {rs2}, {offset:+}")
            }
            Instruction::Jal { rd, offset } => write!(f, "{m} {rd}, {offset:+}"),
            Instruction::Jalr { rd, rs1, imm } => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instruction::Fpu { rd, rs1, rs2, .. } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instruction::FpCmp { rd, rs1, rs2, .. } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instruction::FpLoad { rd, rs1, imm } => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instruction::FpStore { rs2, rs1, imm } => write!(f, "{m} {rs2}, {imm}({rs1})"),
            Instruction::FcvtDL { rd, rs1 } => write!(f, "{m} {rd}, {rs1}"),
            Instruction::FcvtLD { rd, rs1 } => write!(f, "{m} {rd}, {rs1}"),
            Instruction::FmvXD { rd, rs1 } => write!(f, "{m} {rd}, {rs1}"),
            Instruction::FmvDX { rd, rs1 } => write!(f, "{m} {rd}, {rs1}"),
            Instruction::Tld { rd, rs1, imm } => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instruction::Tsd { rs2, rs1, imm } => write!(f, "{m} {rs2}, {imm}({rs1})"),
            Instruction::Typed { rd, rs1, rs2, .. } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instruction::SetSpr { rs1, .. } => write!(f, "{m} {rs1}"),
            Instruction::FlushTrt => f.write_str(m),
            Instruction::Thdl { offset } => write!(f, "{m} {offset:+}"),
            Instruction::Tchk { rs1, rs2 } => write!(f, "{m} {rs1}, {rs2}"),
            Instruction::Tget { rd, rs1 } => write!(f, "{m} {rd}, {rs1}"),
            Instruction::Tset { rs1, rd } => write!(f, "{m} {rs1}, {rd}"),
            Instruction::Chklb { rd, rs1, imm } => write!(f, "{m} {rd}, {imm}({rs1})"),
            Instruction::Csrr { rd, csr } => write!(f, "{m} {rd}, {}", csr.name()),
            Instruction::Ecall | Instruction::Halt => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trt_rule_pack_roundtrip() {
        for class in TrtClass::ALL {
            let r = TrtRule::new(class, 0x13, 0x83, 0x13);
            assert_eq!(TrtRule::unpack(r.pack()), Some(r));
        }
    }

    #[test]
    fn trt_rule_bad_class() {
        assert_eq!(TrtRule::unpack(0xff << 16), None);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, (-1i64) as u64));
        assert!(BranchCond::Geu.eval((-1i64) as u64, 0));
    }

    #[test]
    fn extension_classification() {
        let tld = Instruction::Tld { rd: Reg::A0, rs1: Reg::A1, imm: 0 };
        assert!(tld.is_typed_ext());
        assert!(!tld.is_checked_load_ext());
        let chk = Instruction::Chklb { rd: Reg::A0, rs1: Reg::A1, imm: 8 };
        assert!(chk.is_checked_load_ext());
        assert!(!chk.is_typed_ext());
        let settype = Instruction::SetSpr { spr: Spr::ExpType, rs1: Reg::A0 };
        assert!(settype.is_checked_load_ext());
        assert!(!settype.is_typed_ext());
    }

    #[test]
    fn dest_of_x0_is_none() {
        let i = Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.int_dest(), None);
    }

    #[test]
    fn display_formats() {
        let i = Instruction::Load {
            width: MemWidth::Word,
            signed: true,
            rd: Reg::A2,
            rs1: Reg::S10,
            imm: 8,
        };
        assert_eq!(i.to_string(), "lw a2, 8(s10)");
        let x = Instruction::Typed { op: TypedAluOp::Xadd, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(x.to_string(), "xadd a0, a1, a2");
    }
}
