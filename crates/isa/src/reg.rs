//! Integer/unified and floating-point register names.
//!
//! TRV64 has 32 general-purpose registers (`x0`–`x31`) and 32 floating-point
//! registers (`f0`–`f31`). `x0` is hard-wired to zero. On a Typed Architecture
//! core (see `tarch-core`) the general-purpose file is *unified*: each entry
//! additionally carries an 8-bit type tag and an F/I̅ bit, and may hold either
//! an integer or a floating-point value.
//!
//! ABI names follow the RISC-V convention (`ra`, `sp`, `t0`…`t6`,
//! `s0`…`s11`, `a0`…`a7`) so interpreter codegen reads naturally next to the
//! paper's listings.

use std::fmt;

/// A general-purpose (unified) register, `x0`–`x31`.
///
/// # Examples
///
/// ```
/// use tarch_isa::Reg;
/// assert_eq!(Reg::A0.number(), 10);
/// assert_eq!(Reg::A0.to_string(), "a0");
/// assert_eq!(Reg::new(10), Some(Reg::A0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register (`x0`).
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary registers.
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    /// Saved registers.
    pub const S0: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    /// Argument/return registers.
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    pub const A7: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// Creates a register from its number, returning `None` for numbers ≥ 32.
    pub fn new(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from a raw field value, masking to 5 bits.
    ///
    /// Used by the instruction decoder where the field is 5 bits by
    /// construction.
    #[inline]
    pub fn from_field(n: u32) -> Reg {
        Reg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    #[inline]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parses an ABI name (`"a0"`) or numeric name (`"x10"`).
    pub fn parse(name: &str) -> Option<Reg> {
        if let Some(rest) = name.strip_prefix('x') {
            return rest.parse::<u8>().ok().and_then(Reg::new);
        }
        let n = match name {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            "a0" => 10,
            "a1" => 11,
            "a2" => 12,
            "a3" => 13,
            "a4" => 14,
            "a5" => 15,
            "a6" => 16,
            "a7" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "s8" => 24,
            "s9" => 25,
            "s10" => 26,
            "s11" => 27,
            "t3" => 28,
            "t4" => 29,
            "t5" => 30,
            "t6" => 31,
            _ => return None,
        };
        Some(Reg(n))
    }

    /// The canonical ABI name of the register.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// A floating-point register, `f0`–`f31`.
///
/// Used only by the *baseline* (untyped) code paths; on a Typed Architecture
/// the unified general-purpose file holds FP values directly.
///
/// # Examples
///
/// ```
/// use tarch_isa::FReg;
/// assert_eq!(FReg::new(2), Some(FReg::F2));
/// assert_eq!(FReg::F2.to_string(), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

macro_rules! freg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl FReg {
            $(pub const $name: FReg = FReg($n);)*
        }
    };
}

freg_consts! {
    F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
    F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14, F15 = 15,
    F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21, F22 = 22, F23 = 23,
    F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28, F29 = 29, F30 = 30, F31 = 31,
}

impl FReg {
    /// Creates a register from its number, returning `None` for numbers ≥ 32.
    pub fn new(n: u8) -> Option<FReg> {
        if n < 32 {
            Some(FReg(n))
        } else {
            None
        }
    }

    /// Creates a register from a raw field value, masking to 5 bits.
    #[inline]
    pub fn from_field(n: u32) -> FReg {
        FReg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    #[inline]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Parses a name of the form `f<N>`.
    pub fn parse(name: &str) -> Option<FReg> {
        name.strip_prefix('f')
            .and_then(|rest| rest.parse::<u8>().ok())
            .and_then(FReg::new)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_all_names() {
        for n in 0..32u8 {
            let r = Reg::new(n).unwrap();
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{n}")), Some(r));
        }
    }

    #[test]
    fn reg_out_of_range() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q7"), None);
    }

    #[test]
    fn fp_alias() {
        assert_eq!(Reg::parse("fp"), Some(Reg::S0));
    }

    #[test]
    fn freg_roundtrip() {
        for n in 0..32u8 {
            let r = FReg::new(n).unwrap();
            assert_eq!(FReg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(FReg::new(32), None);
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }
}
