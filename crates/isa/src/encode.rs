//! Fixed 32-bit binary encoding of TRV64 instructions.
//!
//! The paper stresses that its extension fits a RISC-style fixed-width
//! encoding (unlike Checked Load's original x86-64 host, Section 7.1). TRV64
//! uses its own clean 32-bit layout:
//!
//! ```text
//! [31:25] major opcode (7 bits)
//! [24:20] rd           [19:15] rs1          [14:10] rs2
//! [9:0]   sub-opcode   (register-register groups: ALU, FPU, typed ALU, ...)
//! [14:0]  imm15        (I-type: signed 15-bit immediate, overlaps rs2)
//! [24:20]++[9:0] off15 (branches: signed 15-bit word offset)
//! [19:0]  imm20        (lui / jal / thdl: signed 20-bit value or word offset)
//! ```
//!
//! Branch offsets span ±64 KiB and `jal`/`thdl` offsets ±2 MiB, comfortably
//! covering the scripting-engine interpreters built on top.

use crate::instr::*;
use crate::{Csr, FReg, Reg};
use std::error::Error;
use std::fmt;

/// Error produced when an [`Instruction`] cannot be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// Offending value.
        value: i64,
        /// Field width in bits (signed unless it is a shift amount).
        bits: u32,
    },
    /// A branch or jump offset is not a multiple of 4.
    MisalignedOffset {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// Offending offset.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { mnemonic, value, bits } => {
                write!(f, "immediate {value} of `{mnemonic}` does not fit in {bits} bits")
            }
            EncodeError::MisalignedOffset { mnemonic, offset } => {
                write!(f, "offset {offset} of `{mnemonic}` is not a multiple of 4")
            }
        }
    }
}

impl Error for EncodeError {}

/// Error produced when a 32-bit word is not a valid TRV64 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

// Major opcodes.
const OP_ALU: u32 = 0x00;
const OP_ALUIMM_BASE: u32 = 0x01; // 13 consecutive opcodes
const OP_LUI: u32 = 0x0e;
const OP_LB: u32 = 0x10;
const OP_LBU: u32 = 0x11;
const OP_LH: u32 = 0x12;
const OP_LHU: u32 = 0x13;
const OP_LW: u32 = 0x14;
const OP_LWU: u32 = 0x15;
const OP_LD: u32 = 0x16;
const OP_SB: u32 = 0x18;
const OP_SH: u32 = 0x19;
const OP_SW: u32 = 0x1a;
const OP_SD: u32 = 0x1b;
const OP_BRANCH_BASE: u32 = 0x20; // 6 consecutive opcodes
const OP_JAL: u32 = 0x26;
const OP_JALR: u32 = 0x27;
const OP_FLD: u32 = 0x28;
const OP_FSD: u32 = 0x29;
const OP_FPU: u32 = 0x2a;
const OP_FPCMP: u32 = 0x2b;
const OP_FCVT_D_L: u32 = 0x2c;
const OP_FCVT_L_D: u32 = 0x2d;
const OP_FMV_X_D: u32 = 0x2e;
const OP_FMV_D_X: u32 = 0x2f;
const OP_TLD: u32 = 0x30;
const OP_TSD: u32 = 0x31;
const OP_TYPED: u32 = 0x32;
const OP_SETSPR: u32 = 0x33;
const OP_FLUSH_TRT: u32 = 0x34;
const OP_THDL: u32 = 0x35;
const OP_TCHK: u32 = 0x36;
const OP_TGET: u32 = 0x37;
const OP_TSET: u32 = 0x38;
const OP_CHKLB: u32 = 0x39;
const OP_CSRR: u32 = 0x3a;
const OP_ECALL: u32 = 0x3e;
const OP_HALT: u32 = 0x3f;

fn fits_signed(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&value)
}

fn check_imm(mnemonic: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    if fits_signed(value, bits) {
        Ok(())
    } else {
        Err(EncodeError::ImmOutOfRange { mnemonic, value, bits })
    }
}

fn check_word_offset(mnemonic: &'static str, offset: i32, bits: u32) -> Result<i64, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { mnemonic, offset });
    }
    let words = (offset / 4) as i64;
    check_imm(mnemonic, words, bits)?;
    Ok(words)
}

#[inline]
fn field(value: u32, lo: u32, bits: u32) -> u32 {
    (value & ((1 << bits) - 1)) << lo
}

#[inline]
fn extract(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

#[inline]
fn extract_signed(word: u32, lo: u32, bits: u32) -> i32 {
    let raw = extract(word, lo, bits);
    let shift = 32 - bits;
    ((raw << shift) as i32) >> shift
}

#[inline]
fn enc_major(op: u32) -> u32 {
    field(op, 25, 7)
}

#[inline]
fn enc_rd(r: Reg) -> u32 {
    field(r.number() as u32, 20, 5)
}

#[inline]
fn enc_rs1(r: Reg) -> u32 {
    field(r.number() as u32, 15, 5)
}

#[inline]
fn enc_rs2(r: Reg) -> u32 {
    field(r.number() as u32, 10, 5)
}

#[inline]
fn enc_frd(r: FReg) -> u32 {
    field(r.number() as u32, 20, 5)
}

#[inline]
fn enc_frs1(r: FReg) -> u32 {
    field(r.number() as u32, 15, 5)
}

#[inline]
fn enc_frs2(r: FReg) -> u32 {
    field(r.number() as u32, 10, 5)
}

#[inline]
fn enc_imm15(imm: i32) -> u32 {
    field(imm as u32, 0, 15)
}

#[inline]
fn enc_imm20(imm: i32) -> u32 {
    field(imm as u32, 0, 20)
}

/// Encodes a branch word-offset into the split `[24:20]++[9:0]` field.
#[inline]
fn enc_branch_off(words: i64) -> u32 {
    let w = words as u32;
    field(w >> 10, 20, 5) | field(w, 0, 10)
}

#[inline]
fn dec_branch_off(word: u32) -> i32 {
    let raw = (extract(word, 20, 5) << 10) | extract(word, 0, 10);
    let shift = 32 - 15;
    let words = ((raw << shift) as i32) >> shift;
    words * 4
}

/// Decoded shape of a major opcode: which instruction format it selects,
/// with range-based majors (ALU-immediate, branches, loads, stores)
/// pre-resolved to their variant payload.
#[derive(Debug, Clone, Copy)]
enum MajorKind {
    Invalid,
    Alu,
    AluImm(u8),
    Lui,
    Load { width: MemWidth, signed: bool },
    Store(MemWidth),
    Branch(u8),
    Jal,
    Jalr,
    FpLoad,
    FpStore,
    Fpu,
    FpCmp,
    FcvtDL,
    FcvtLD,
    FmvXD,
    FmvDX,
    Tld,
    Tsd,
    Typed,
    SetSpr,
    FlushTrt,
    Thdl,
    Tchk,
    Tget,
    Tset,
    Chklb,
    Csrr,
    Ecall,
    Halt,
}

/// Major-opcode dispatch table: decode's first step is one indexed load
/// instead of a chain of range compares. Built at compile time; the 7-bit
/// major field indexes it directly.
const MAJOR_KINDS: [MajorKind; 128] = {
    let mut t = [MajorKind::Invalid; 128];
    t[OP_ALU as usize] = MajorKind::Alu;
    let mut i = 0u32;
    while i < 13 {
        t[(OP_ALUIMM_BASE + i) as usize] = MajorKind::AluImm(i as u8);
        i += 1;
    }
    t[OP_LUI as usize] = MajorKind::Lui;
    t[OP_LB as usize] = MajorKind::Load { width: MemWidth::Byte, signed: true };
    t[OP_LBU as usize] = MajorKind::Load { width: MemWidth::Byte, signed: false };
    t[OP_LH as usize] = MajorKind::Load { width: MemWidth::Half, signed: true };
    t[OP_LHU as usize] = MajorKind::Load { width: MemWidth::Half, signed: false };
    t[OP_LW as usize] = MajorKind::Load { width: MemWidth::Word, signed: true };
    t[OP_LWU as usize] = MajorKind::Load { width: MemWidth::Word, signed: false };
    t[OP_LD as usize] = MajorKind::Load { width: MemWidth::Double, signed: true };
    t[OP_SB as usize] = MajorKind::Store(MemWidth::Byte);
    t[OP_SH as usize] = MajorKind::Store(MemWidth::Half);
    t[OP_SW as usize] = MajorKind::Store(MemWidth::Word);
    t[OP_SD as usize] = MajorKind::Store(MemWidth::Double);
    let mut i = 0u32;
    while i < 6 {
        t[(OP_BRANCH_BASE + i) as usize] = MajorKind::Branch(i as u8);
        i += 1;
    }
    t[OP_JAL as usize] = MajorKind::Jal;
    t[OP_JALR as usize] = MajorKind::Jalr;
    t[OP_FLD as usize] = MajorKind::FpLoad;
    t[OP_FSD as usize] = MajorKind::FpStore;
    t[OP_FPU as usize] = MajorKind::Fpu;
    t[OP_FPCMP as usize] = MajorKind::FpCmp;
    t[OP_FCVT_D_L as usize] = MajorKind::FcvtDL;
    t[OP_FCVT_L_D as usize] = MajorKind::FcvtLD;
    t[OP_FMV_X_D as usize] = MajorKind::FmvXD;
    t[OP_FMV_D_X as usize] = MajorKind::FmvDX;
    t[OP_TLD as usize] = MajorKind::Tld;
    t[OP_TSD as usize] = MajorKind::Tsd;
    t[OP_TYPED as usize] = MajorKind::Typed;
    t[OP_SETSPR as usize] = MajorKind::SetSpr;
    t[OP_FLUSH_TRT as usize] = MajorKind::FlushTrt;
    t[OP_THDL as usize] = MajorKind::Thdl;
    t[OP_TCHK as usize] = MajorKind::Tchk;
    t[OP_TGET as usize] = MajorKind::Tget;
    t[OP_TSET as usize] = MajorKind::Tset;
    t[OP_CHKLB as usize] = MajorKind::Chklb;
    t[OP_CSRR as usize] = MajorKind::Csrr;
    t[OP_ECALL as usize] = MajorKind::Ecall;
    t[OP_HALT as usize] = MajorKind::Halt;
    t
};

fn load_op(width: MemWidth, signed: bool) -> u32 {
    match (width, signed) {
        (MemWidth::Byte, true) => OP_LB,
        (MemWidth::Byte, false) => OP_LBU,
        (MemWidth::Half, true) => OP_LH,
        (MemWidth::Half, false) => OP_LHU,
        (MemWidth::Word, true) => OP_LW,
        (MemWidth::Word, false) => OP_LWU,
        (MemWidth::Double, _) => OP_LD,
    }
}

fn store_op(width: MemWidth) -> u32 {
    match width {
        MemWidth::Byte => OP_SB,
        MemWidth::Half => OP_SH,
        MemWidth::Word => OP_SW,
        MemWidth::Double => OP_SD,
    }
}

impl Instruction {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an immediate or offset does not fit its
    /// field or a control-flow offset is misaligned.
    ///
    /// # Examples
    ///
    /// ```
    /// use tarch_isa::{AluImmOp, Instruction, Reg};
    /// let i = Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A1, imm: 42 };
    /// let word = i.encode()?;
    /// assert_eq!(Instruction::decode(word)?, i);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let m = self.mnemonic();
        let word = match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let sub = AluOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
                enc_major(OP_ALU) | enc_rd(rd) | enc_rs1(rs1) | enc_rs2(rs2) | field(sub, 0, 10)
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                if op.is_shift() {
                    if !(0..64).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange {
                            mnemonic: m,
                            value: imm as i64,
                            bits: 6,
                        });
                    }
                } else {
                    check_imm(m, imm as i64, 15)?;
                }
                let idx = AluImmOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
                enc_major(OP_ALUIMM_BASE + idx) | enc_rd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Lui { rd, imm } => {
                check_imm(m, imm as i64, 20)?;
                enc_major(OP_LUI) | enc_rd(rd) | enc_imm20(imm)
            }
            Instruction::Load { width, signed, rd, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(load_op(width, signed)) | enc_rd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Store { width, rs2, rs1, imm } => {
                // Stores use the rd field for rs2 so the 15-bit immediate
                // field stays contiguous.
                check_imm(m, imm as i64, 15)?;
                enc_major(store_op(width)) | enc_rd(rs2) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                let words = check_word_offset(m, offset, 15)?;
                let idx = BranchCond::ALL.iter().position(|c| *c == cond).unwrap() as u32;
                enc_major(OP_BRANCH_BASE + idx)
                    | enc_rs1(rs1)
                    | enc_rs2(rs2)
                    | enc_branch_off(words)
            }
            Instruction::Jal { rd, offset } => {
                let words = check_word_offset(m, offset, 20)?;
                enc_major(OP_JAL) | enc_rd(rd) | enc_imm20(words as i32)
            }
            Instruction::Jalr { rd, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_JALR) | enc_rd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                let sub = FpuOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
                enc_major(OP_FPU) | enc_frd(rd) | enc_frs1(rs1) | enc_frs2(rs2) | field(sub, 0, 10)
            }
            Instruction::FpCmp { op, rd, rs1, rs2 } => {
                let sub = FpCmpOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
                enc_major(OP_FPCMP)
                    | enc_rd(rd)
                    | enc_frs1(rs1)
                    | enc_frs2(rs2)
                    | field(sub, 0, 10)
            }
            Instruction::FpLoad { rd, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_FLD) | enc_frd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::FpStore { rs2, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_FSD) | enc_frd(rs2) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::FcvtDL { rd, rs1 } => enc_major(OP_FCVT_D_L) | enc_frd(rd) | enc_rs1(rs1),
            Instruction::FcvtLD { rd, rs1 } => enc_major(OP_FCVT_L_D) | enc_rd(rd) | enc_frs1(rs1),
            Instruction::FmvXD { rd, rs1 } => enc_major(OP_FMV_X_D) | enc_rd(rd) | enc_frs1(rs1),
            Instruction::FmvDX { rd, rs1 } => enc_major(OP_FMV_D_X) | enc_frd(rd) | enc_rs1(rs1),
            Instruction::Tld { rd, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_TLD) | enc_rd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Tsd { rs2, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_TSD) | enc_rd(rs2) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Typed { op, rd, rs1, rs2 } => {
                let sub = TypedAluOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
                enc_major(OP_TYPED) | enc_rd(rd) | enc_rs1(rs1) | enc_rs2(rs2) | field(sub, 0, 10)
            }
            Instruction::SetSpr { spr, rs1 } => {
                let sub = Spr::ALL.iter().position(|s| *s == spr).unwrap() as u32;
                enc_major(OP_SETSPR) | enc_rs1(rs1) | field(sub, 0, 10)
            }
            Instruction::FlushTrt => enc_major(OP_FLUSH_TRT),
            Instruction::Thdl { offset } => {
                let words = check_word_offset(m, offset, 20)?;
                enc_major(OP_THDL) | enc_imm20(words as i32)
            }
            Instruction::Tchk { rs1, rs2 } => enc_major(OP_TCHK) | enc_rs1(rs1) | enc_rs2(rs2),
            Instruction::Tget { rd, rs1 } => enc_major(OP_TGET) | enc_rd(rd) | enc_rs1(rs1),
            Instruction::Tset { rs1, rd } => enc_major(OP_TSET) | enc_rd(rd) | enc_rs1(rs1),
            Instruction::Chklb { rd, rs1, imm } => {
                check_imm(m, imm as i64, 15)?;
                enc_major(OP_CHKLB) | enc_rd(rd) | enc_rs1(rs1) | enc_imm15(imm)
            }
            Instruction::Csrr { rd, csr } => {
                let sub = Csr::ALL.iter().position(|c| *c == csr).unwrap() as u32;
                enc_major(OP_CSRR) | enc_rd(rd) | field(sub, 0, 10)
            }
            Instruction::Ecall => enc_major(OP_ECALL),
            Instruction::Halt => enc_major(OP_HALT),
        };
        Ok(word)
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the major opcode or a sub-opcode field is
    /// invalid.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        // The 7-bit major field indexes MAJOR_KINDS directly (no bounds
        // check survives: the extract masks to < 128).
        let kind = MAJOR_KINDS[extract(word, 25, 7) as usize];
        let rd = Reg::from_field(extract(word, 20, 5));
        let rs1 = Reg::from_field(extract(word, 15, 5));
        let rs2 = Reg::from_field(extract(word, 10, 5));
        let frd = FReg::from_field(extract(word, 20, 5));
        let frs1 = FReg::from_field(extract(word, 15, 5));
        let frs2 = FReg::from_field(extract(word, 10, 5));
        let imm15 = extract_signed(word, 0, 15);
        let imm20 = extract_signed(word, 0, 20);
        let sub = extract(word, 0, 10) as usize;
        let bad = || DecodeError { word };

        let instr = match kind {
            MajorKind::Alu => {
                let op = *AluOp::ALL.get(sub).ok_or_else(bad)?;
                Instruction::Alu { op, rd, rs1, rs2 }
            }
            MajorKind::AluImm(idx) => {
                let aop = AluImmOp::ALL[idx as usize];
                let imm = if aop.is_shift() { extract(word, 0, 6) as i32 } else { imm15 };
                Instruction::AluImm { op: aop, rd, rs1, imm }
            }
            MajorKind::Lui => Instruction::Lui { rd, imm: imm20 },
            MajorKind::Load { width, signed } => {
                Instruction::Load { width, signed, rd, rs1, imm: imm15 }
            }
            MajorKind::Store(width) => Instruction::Store { width, rs2: rd, rs1, imm: imm15 },
            MajorKind::Branch(idx) => {
                let cond = BranchCond::ALL[idx as usize];
                Instruction::Branch { cond, rs1, rs2, offset: dec_branch_off(word) }
            }
            MajorKind::Jal => Instruction::Jal { rd, offset: imm20 * 4 },
            MajorKind::Jalr => Instruction::Jalr { rd, rs1, imm: imm15 },
            MajorKind::FpLoad => Instruction::FpLoad { rd: frd, rs1, imm: imm15 },
            MajorKind::FpStore => Instruction::FpStore { rs2: frd, rs1, imm: imm15 },
            MajorKind::Fpu => {
                let op = *FpuOp::ALL.get(sub).ok_or_else(bad)?;
                Instruction::Fpu { op, rd: frd, rs1: frs1, rs2: frs2 }
            }
            MajorKind::FpCmp => {
                let op = *FpCmpOp::ALL.get(sub).ok_or_else(bad)?;
                Instruction::FpCmp { op, rd, rs1: frs1, rs2: frs2 }
            }
            MajorKind::FcvtDL => Instruction::FcvtDL { rd: frd, rs1 },
            MajorKind::FcvtLD => Instruction::FcvtLD { rd, rs1: frs1 },
            MajorKind::FmvXD => Instruction::FmvXD { rd, rs1: frs1 },
            MajorKind::FmvDX => Instruction::FmvDX { rd: frd, rs1 },
            MajorKind::Tld => Instruction::Tld { rd, rs1, imm: imm15 },
            MajorKind::Tsd => Instruction::Tsd { rs2: rd, rs1, imm: imm15 },
            MajorKind::Typed => {
                let op = *TypedAluOp::ALL.get(sub).ok_or_else(bad)?;
                Instruction::Typed { op, rd, rs1, rs2 }
            }
            MajorKind::SetSpr => {
                let spr = *Spr::ALL.get(sub).ok_or_else(bad)?;
                Instruction::SetSpr { spr, rs1 }
            }
            MajorKind::FlushTrt => Instruction::FlushTrt,
            MajorKind::Thdl => Instruction::Thdl { offset: imm20 * 4 },
            MajorKind::Tchk => Instruction::Tchk { rs1, rs2 },
            MajorKind::Tget => Instruction::Tget { rd, rs1 },
            MajorKind::Tset => Instruction::Tset { rs1, rd },
            MajorKind::Chklb => Instruction::Chklb { rd, rs1, imm: imm15 },
            MajorKind::Csrr => {
                let csr = *Csr::ALL.get(sub).ok_or_else(bad)?;
                Instruction::Csrr { rd, csr }
            }
            MajorKind::Ecall => Instruction::Ecall,
            MajorKind::Halt => Instruction::Halt,
            MajorKind::Invalid => return Err(bad()),
        };
        Ok(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use tarch_testkit::Rng;

    #[test]
    fn roundtrip_all_sample_forms() {
        for i in samples::all_forms() {
            let word = i.encode().unwrap_or_else(|e| panic!("encode {i}: {e}"));
            let back = Instruction::decode(word).unwrap_or_else(|e| panic!("decode {i}: {e}"));
            assert_eq!(back, i, "roundtrip mismatch for {i} ({word:#010x})");
        }
    }

    #[test]
    fn imm_range_errors() {
        let i = Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1 << 14,
        };
        assert!(matches!(i.encode(), Err(EncodeError::ImmOutOfRange { .. })));
        let i = Instruction::AluImm { op: AluImmOp::Slli, rd: Reg::A0, rs1: Reg::A0, imm: 64 };
        assert!(matches!(i.encode(), Err(EncodeError::ImmOutOfRange { .. })));
        let i = Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 2,
        };
        assert!(matches!(i.encode(), Err(EncodeError::MisalignedOffset { .. })));
        let i = Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 1 << 17,
        };
        assert!(matches!(i.encode(), Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn decode_rejects_bad_opcodes() {
        assert!(Instruction::decode(0x7a << 25).is_err());
        // OP_ALU with out-of-range sub-opcode.
        assert!(Instruction::decode(999).is_err());
    }

    #[test]
    fn branch_offset_extremes() {
        for off in [-65536i32, -4, 0, 4, 65532] {
            let i = Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: off,
            };
            let back = Instruction::decode(i.encode().unwrap()).unwrap();
            assert_eq!(back, i, "offset {off}");
        }
    }

    #[test]
    fn randomized_roundtrip_arbitrary() {
        let mut rng = Rng::new(0x1541);
        for _ in 0..4096 {
            let instr = samples::random_instruction(&mut rng);
            let word = instr.encode().unwrap();
            assert_eq!(Instruction::decode(word).unwrap(), instr, "{instr}");
        }
    }

    #[test]
    fn randomized_imm15_roundtrip() {
        let mut rng = Rng::new(0x1542);
        for _ in 0..2048 {
            let i = Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::new(rng.range_u64(0, 32) as u8).unwrap(),
                rs1: Reg::new(rng.range_u64(0, 32) as u8).unwrap(),
                imm: rng.range_i32(-16384, 16384),
            };
            assert_eq!(Instruction::decode(i.encode().unwrap()).unwrap(), i);
        }
    }

    #[test]
    fn randomized_jal_offset_roundtrip() {
        let mut rng = Rng::new(0x1543);
        for _ in 0..2048 {
            let words = rng.range_i32(-(1 << 19), 1 << 19);
            let i = Instruction::Jal { rd: Reg::RA, offset: words * 4 };
            assert_eq!(Instruction::decode(i.encode().unwrap()).unwrap(), i, "words {words}");
        }
    }
}
