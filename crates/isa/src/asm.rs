//! Programmatic assembler for TRV64.
//!
//! [`ProgramBuilder`] is the backbone of the scripting-engine code
//! generators (`luart`/`jsrt`): interpreter dispatch loops and bytecode
//! handlers are emitted through it, with forward-referenced labels resolved
//! at [`ProgramBuilder::finish`] time. It also provides a data section
//! (constants, jump tables) and the usual pseudo-instructions (`li`, `la`,
//! `mv`, `j`, `call`, `ret`).

use crate::encode::EncodeError;
use crate::instr::*;
use crate::{FReg, Reg};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A code or data label; resolved to an address when the program is
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// A fully assembled program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Base address of the text section.
    pub text_base: u64,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u64,
    /// Raw data bytes.
    pub data: Vec<u8>,
    /// Entry point address.
    pub entry: u64,
    /// Named symbols (labels given a name) and their addresses.
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Number of instructions in the text section.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text section is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Address of a named symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Disassembles the text section as `(address, instruction)` pairs.
    ///
    /// Words that fail to decode are skipped (none are produced by the
    /// builder itself).
    pub fn disassemble(&self) -> Vec<(u64, Instruction)> {
        self.text
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                Instruction::decode(*w).ok().map(|ins| (self.text_base + 4 * i as u64, ins))
            })
            .collect()
    }
}

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// Label name, if one was given.
        name: String,
    },
    /// A label was bound twice.
    DuplicateBind {
        /// Label name.
        name: String,
    },
    /// An instruction could not be encoded (out-of-range immediate/offset).
    Encode {
        /// Address of the offending instruction.
        pc: u64,
        /// Underlying encoding error.
        source: EncodeError,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::DuplicateBind { name } => write!(f, "label `{name}` bound twice"),
            AsmError::Encode { pc, source } => write!(f, "at {pc:#x}: {source}"),
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Encode { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Fixup {
    Branch { idx: usize, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label },
    Jal { idx: usize, rd: Reg, label: Label },
    Thdl { idx: usize, label: Label },
    /// `lui`+`addi` pair loading an absolute label address.
    La { idx: usize, rd: Reg, label: Label },
    /// Absolute 8-byte label address stored in the data section.
    DataAbs { offset: usize, label: Label },
}

/// Incremental assembler producing a [`Program`].
///
/// # Examples
///
/// ```
/// use tarch_isa::asm::ProgramBuilder;
/// use tarch_isa::Reg;
///
/// let mut b = ProgramBuilder::new(0x1000, 0x10000);
/// let done = b.new_label("done");
/// b.li(Reg::A0, 5);
/// b.li(Reg::A1, 0);
/// let loop_top = b.here("loop");
/// b.beqz(Reg::A0, done);
/// b.add(Reg::A1, Reg::A1, Reg::A0);
/// b.addi(Reg::A0, Reg::A0, -1);
/// b.j(loop_top);
/// b.bind(done);
/// b.halt();
/// let program = b.finish()?;
/// assert!(program.len() >= 7);
/// # Ok::<(), tarch_isa::asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    text_base: u64,
    instrs: Vec<Instruction>,
    data_base: u64,
    data: Vec<u8>,
    labels: Vec<(Option<u64>, String)>,
    fixups: Vec<Fixup>,
    entry: Option<u64>,
}

impl ProgramBuilder {
    /// Creates a builder with the given text and data base addresses.
    pub fn new(text_base: u64, data_base: u64) -> ProgramBuilder {
        ProgramBuilder {
            text_base,
            instrs: Vec::new(),
            data_base,
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            entry: None,
        }
    }

    /// Current program counter (address of the next emitted instruction).
    pub fn pc(&self) -> u64 {
        self.text_base + 4 * self.instrs.len() as u64
    }

    /// Current data cursor (address of the next emitted data byte).
    pub fn data_pc(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Declares a new, unbound label. The name is kept for diagnostics and
    /// exported as a symbol once bound.
    pub fn new_label(&mut self, name: &str) -> Label {
        self.labels.push((None, name.to_string()));
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds a label to the current pc.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (catching codegen bugs early;
    /// the same condition is also reported by [`ProgramBuilder::finish`]).
    pub fn bind(&mut self, label: Label) {
        let pc = self.pc();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.0.is_none(), "label `{}` bound twice", slot.1);
        slot.0 = Some(pc);
    }

    /// Declares and immediately binds a label at the current pc.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.new_label(name);
        self.bind(l);
        l
    }

    /// Binds a label to the current *data* cursor.
    pub fn bind_data(&mut self, label: Label) {
        let addr = self.data_pc();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.0.is_none(), "label `{}` bound twice", slot.1);
        slot.0 = Some(addr);
    }

    /// Marks the current pc as the program entry point (defaults to
    /// `text_base`).
    pub fn set_entry_here(&mut self) {
        self.entry = Some(self.pc());
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instruction) {
        self.instrs.push(instr);
    }

    // --- data section -------------------------------------------------

    /// Appends raw bytes to the data section, returning their address.
    pub fn bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_pc();
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends a little-endian 8-byte value, returning its address.
    pub fn dword(&mut self, value: u64) -> u64 {
        self.bytes(&value.to_le_bytes())
    }

    /// Appends an 8-byte slot that will hold `label`'s absolute address.
    pub fn dword_label(&mut self, label: Label) -> u64 {
        let offset = self.data.len();
        let addr = self.data_pc();
        self.data.extend_from_slice(&[0u8; 8]);
        self.fixups.push(Fixup::DataAbs { offset, label });
        addr
    }

    /// Pads the data section to the given power-of-two alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_data(&mut self, align: u64) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while !self.data_pc().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    // --- control flow with labels --------------------------------------

    /// Emits a conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) {
        let idx = self.instrs.len();
        self.instrs.push(Instruction::Branch { cond, rs1, rs2, offset: 0 });
        self.fixups.push(Fixup::Branch { idx, cond, rs1, rs2, label });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }

    /// `bgt rs1, rs2, label` (signed; swaps operands of `blt`).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Lt, rs2, rs1, label);
    }

    /// `ble rs1, rs2, label` (signed; swaps operands of `bge`).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ge, rs2, rs1, label);
    }

    /// Branch if a register is zero.
    pub fn beqz(&mut self, rs1: Reg, label: Label) {
        self.beq(rs1, Reg::ZERO, label);
    }

    /// Branch if a register is non-zero.
    pub fn bnez(&mut self, rs1: Reg, label: Label) {
        self.bne(rs1, Reg::ZERO, label);
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: Label) {
        let idx = self.instrs.len();
        self.instrs.push(Instruction::Jal { rd, offset: 0 });
        self.fixups.push(Fixup::Jal { idx, rd, label });
    }

    /// Unconditional jump (`jal zero, label`).
    pub fn j(&mut self, label: Label) {
        self.jal(Reg::ZERO, label);
    }

    /// Call a subroutine (`jal ra, label`).
    pub fn call(&mut self, label: Label) {
        self.jal(Reg::RA, label);
    }

    /// Return from a subroutine (`jalr zero, 0(ra)`).
    pub fn ret(&mut self) {
        self.emit(Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, imm: 0 });
    }

    /// Indirect jump through a register (`jalr zero, 0(rs1)`).
    pub fn jr(&mut self, rs1: Reg) {
        self.emit(Instruction::Jalr { rd: Reg::ZERO, rs1, imm: 0 });
    }

    /// Indirect call through a register (`jalr ra, 0(rs1)`).
    pub fn jalr_call(&mut self, rs1: Reg) {
        self.emit(Instruction::Jalr { rd: Reg::RA, rs1, imm: 0 });
    }

    /// `thdl label`: register the type-miss handler.
    pub fn thdl(&mut self, label: Label) {
        let idx = self.instrs.len();
        self.instrs.push(Instruction::Thdl { offset: 0 });
        self.fixups.push(Fixup::Thdl { idx, label });
    }

    // --- pseudo-instructions -------------------------------------------

    /// No-op (`addi zero, zero, 0`).
    pub fn nop(&mut self) {
        self.addi(Reg::ZERO, Reg::ZERO, 0);
    }

    /// Register move (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Arithmetic negation (`sub rd, zero, rs`).
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Sub, rd, rs1: Reg::ZERO, rs2: rs });
    }

    /// Bitwise NOT (`xori rd, rs, -1`).
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::AluImm { op: AluImmOp::Xori, rd, rs1: rs, imm: -1 });
    }

    /// Set-if-zero (`sltiu rd, rs, 1`).
    pub fn seqz(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::AluImm { op: AluImmOp::Sltiu, rd, rs1: rs, imm: 1 });
    }

    /// Set-if-non-zero (`sltu rd, zero, rs`).
    pub fn snez(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Sltu, rd, rs1: Reg::ZERO, rs2: rs });
    }

    /// Loads an arbitrary 64-bit constant using the shortest
    /// `addi`/`lui+addi`/shift-or sequence (1–10 instructions).
    pub fn li(&mut self, rd: Reg, value: i64) {
        if (-16384..=16383).contains(&value) {
            self.addi_raw(rd, Reg::ZERO, value as i32);
        } else if i32::try_from(value).is_ok() || (value as i32 as i64) == value {
            let v = value as i32;
            let hi = (v.wrapping_add(0x800)) >> 12;
            let lo = v.wrapping_sub(hi << 12);
            self.emit(Instruction::Lui { rd, imm: hi });
            if lo != 0 {
                self.addi_raw(rd, rd, lo);
            }
        } else {
            // Build the upper bits recursively, then shift in 14-bit chunks.
            self.li(rd, value >> 14);
            self.emit(Instruction::AluImm { op: AluImmOp::Slli, rd, rs1: rd, imm: 14 });
            let low = (value & 0x3fff) as i32;
            if low != 0 {
                self.emit(Instruction::AluImm { op: AluImmOp::Ori, rd, rs1: rd, imm: low });
            }
        }
    }

    /// Loads a label's absolute address (always a `lui`+`addi` pair so the
    /// fixup size is fixed).
    pub fn la(&mut self, rd: Reg, label: Label) {
        let idx = self.instrs.len();
        self.instrs.push(Instruction::Lui { rd, imm: 0 });
        self.instrs.push(Instruction::AluImm { op: AluImmOp::Addi, rd, rs1: rd, imm: 0 });
        self.fixups.push(Fixup::La { idx, rd, label });
    }

    fn addi_raw(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Addi, rd, rs1, imm });
    }

    // --- common instruction shorthands ----------------------------------

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.addi_raw(rd, rs1, imm);
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Mul, rd, rs1, rs2 });
    }

    /// `div rd, rs1, rs2` (signed).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Div, rd, rs1, rs2 });
    }

    /// `rem rd, rs1, rs2` (signed).
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Rem, rd, rs1, rs2 });
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Sll, rd, rs1, rs2 });
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Srl, rd, rs1, rs2 });
    }

    /// `slt rd, rs1, rs2` (signed).
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Slt, rd, rs1, rs2 });
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Alu { op: AluOp::Sltu, rd, rs1, rs2 });
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Andi, rd, rs1, imm });
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Ori, rd, rs1, imm });
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Xori, rd, rs1, imm });
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Slli, rd, rs1, imm: shamt });
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Srli, rd, rs1, imm: shamt });
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instruction::AluImm { op: AluImmOp::Srai, rd, rs1, imm: shamt });
    }

    /// `ld rd, imm(rs1)`.
    pub fn ld(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Load { width: MemWidth::Double, signed: true, rd, rs1, imm });
    }

    /// `lw rd, imm(rs1)` (sign-extended).
    pub fn lw(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Load { width: MemWidth::Word, signed: true, rd, rs1, imm });
    }

    /// `lwu rd, imm(rs1)`.
    pub fn lwu(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Load { width: MemWidth::Word, signed: false, rd, rs1, imm });
    }

    /// `lbu rd, imm(rs1)`.
    pub fn lbu(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Load { width: MemWidth::Byte, signed: false, rd, rs1, imm });
    }

    /// `sd rs2, imm(rs1)`.
    pub fn sd(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Store { width: MemWidth::Double, rs2, rs1, imm });
    }

    /// `sw rs2, imm(rs1)`.
    pub fn sw(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Store { width: MemWidth::Word, rs2, rs1, imm });
    }

    /// `sb rs2, imm(rs1)`.
    pub fn sb(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Store { width: MemWidth::Byte, rs2, rs1, imm });
    }

    /// `fld rd, imm(rs1)`.
    pub fn fld(&mut self, rd: FReg, imm: i32, rs1: Reg) {
        self.emit(Instruction::FpLoad { rd, rs1, imm });
    }

    /// `fsd rs2, imm(rs1)`.
    pub fn fsd(&mut self, rs2: FReg, imm: i32, rs1: Reg) {
        self.emit(Instruction::FpStore { rs2, rs1, imm });
    }

    /// `tld rd, imm(rs1)` (tagged load).
    pub fn tld(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Tld { rd, rs1, imm });
    }

    /// `tsd rs2, imm(rs1)` (tagged store).
    pub fn tsd(&mut self, rs2: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Tsd { rs2, rs1, imm });
    }

    /// `xadd rd, rs1, rs2` (polymorphic add).
    pub fn xadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Typed { op: TypedAluOp::Xadd, rd, rs1, rs2 });
    }

    /// `xsub rd, rs1, rs2` (polymorphic subtract).
    pub fn xsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Typed { op: TypedAluOp::Xsub, rd, rs1, rs2 });
    }

    /// `xmul rd, rs1, rs2` (polymorphic multiply).
    pub fn xmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Typed { op: TypedAluOp::Xmul, rd, rs1, rs2 });
    }

    /// `tchk rs1, rs2` (stand-alone TRT check).
    pub fn tchk(&mut self, rs1: Reg, rs2: Reg) {
        self.emit(Instruction::Tchk { rs1, rs2 });
    }

    /// `tget rd, rs1` (read type tag).
    pub fn tget(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instruction::Tget { rd, rs1 });
    }

    /// `tset rs1, rd` (write rd's tag from rs1's value).
    pub fn tset(&mut self, rs1: Reg, rd: Reg) {
        self.emit(Instruction::Tset { rs1, rd });
    }

    /// `chklb rd, imm(rs1)` (Checked Load fused load-compare-branch).
    pub fn chklb(&mut self, rd: Reg, imm: i32, rs1: Reg) {
        self.emit(Instruction::Chklb { rd, rs1, imm });
    }

    /// `ecall` (native host call).
    pub fn ecall(&mut self) {
        self.emit(Instruction::Ecall);
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.emit(Instruction::Halt);
    }

    // --- finishing ------------------------------------------------------

    fn resolve(&self, label: Label) -> Result<u64, AsmError> {
        let (addr, name) = &self.labels[label.0 as usize];
        addr.ok_or_else(|| AsmError::UnboundLabel { name: name.clone() })
    }

    /// Resolves all fixups and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound labels or out-of-range branch offsets.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        let fixups = std::mem::take(&mut self.fixups);
        for fixup in &fixups {
            match *fixup {
                Fixup::Branch { idx, cond, rs1, rs2, label } => {
                    let target = self.resolve(label)?;
                    let pc = self.text_base + 4 * idx as u64;
                    let offset = target.wrapping_sub(pc) as i64 as i32;
                    self.instrs[idx] = Instruction::Branch { cond, rs1, rs2, offset };
                }
                Fixup::Jal { idx, rd, label } => {
                    let target = self.resolve(label)?;
                    let pc = self.text_base + 4 * idx as u64;
                    let offset = target.wrapping_sub(pc) as i64 as i32;
                    self.instrs[idx] = Instruction::Jal { rd, offset };
                }
                Fixup::Thdl { idx, label } => {
                    let target = self.resolve(label)?;
                    // thdl: R_hdl ← pc + 4 + offset
                    let pc = self.text_base + 4 * idx as u64;
                    let offset = target.wrapping_sub(pc + 4) as i64 as i32;
                    self.instrs[idx] = Instruction::Thdl { offset };
                }
                Fixup::La { idx, rd, label } => {
                    let target = self.resolve(label)? as i64;
                    let v = i32::try_from(target).expect("label address exceeds 31 bits");
                    let hi = (v.wrapping_add(0x800)) >> 12;
                    let lo = v.wrapping_sub(hi << 12);
                    self.instrs[idx] = Instruction::Lui { rd, imm: hi };
                    self.instrs[idx + 1] =
                        Instruction::AluImm { op: AluImmOp::Addi, rd, rs1: rd, imm: lo };
                }
                Fixup::DataAbs { offset, label } => {
                    let target = self.resolve(label)?;
                    self.data[offset..offset + 8].copy_from_slice(&target.to_le_bytes());
                }
            }
        }

        let mut text = Vec::with_capacity(self.instrs.len());
        for (i, instr) in self.instrs.iter().enumerate() {
            let word = instr.encode().map_err(|source| AsmError::Encode {
                pc: self.text_base + 4 * i as u64,
                source,
            })?;
            text.push(word);
        }

        let mut symbols = BTreeMap::new();
        for (addr, name) in &self.labels {
            if let (Some(addr), false) = (addr, name.is_empty()) {
                symbols.insert(name.clone(), *addr);
            }
        }

        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data: self.data,
            entry: self.entry.unwrap_or(self.text_base),
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        let fwd = b.new_label("fwd");
        let top = b.here("top");
        b.beq(Reg::A0, Reg::A1, fwd); // at 0x1000, target 0x100c → +12
        b.j(top); // at 0x1004, target 0x1000 → -4
        b.nop();
        b.bind(fwd);
        b.halt();
        let p = b.finish().unwrap();
        let dis = p.disassemble();
        assert_eq!(
            dis[0].1,
            Instruction::Branch { cond: BranchCond::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: 12 }
        );
        assert_eq!(dis[1].1, Instruction::Jal { rd: Reg::ZERO, offset: -4 });
        assert_eq!(p.symbol("fwd"), Some(0x100c));
        assert_eq!(p.symbol("top"), Some(0x1000));
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new(0, 0x8000);
        let l = b.new_label("nowhere");
        b.j(l);
        assert_eq!(b.finish().unwrap_err(), AsmError::UnboundLabel { name: "nowhere".into() });
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_bind_panics() {
        let mut b = ProgramBuilder::new(0, 0x8000);
        let l = b.new_label("x");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn li_sequences() {
        // Each (value, max_len) pair; correctness of the produced value is
        // verified end-to-end by the core executor tests.
        for (value, max_len) in
            [(0i64, 1), (100, 1), (-1, 1), (16384, 2), (0x12345678, 2), (-0x80000000, 2)]
        {
            let mut b = ProgramBuilder::new(0, 0x8000);
            b.li(Reg::A0, value);
            assert!(b.len() <= max_len, "li {value} took {} instructions", b.len());
            b.finish().unwrap();
        }
        let mut b = ProgramBuilder::new(0, 0x8000);
        b.li(Reg::A0, 0x7ff8_0000_0000_0000u64 as i64); // NaN-box pattern
        assert!(b.len() <= 10);
        b.finish().unwrap();
    }

    #[test]
    fn la_and_data_labels() {
        let mut b = ProgramBuilder::new(0x1000, 0x20000);
        let table = b.new_label("table");
        let handler = b.new_label("handler");
        b.la(Reg::S3, table);
        b.halt();
        b.bind(handler);
        b.halt();
        b.align_data(8);
        b.bind_data(table);
        b.dword_label(handler);
        b.dword(42);
        let p = b.finish().unwrap();
        assert_eq!(p.symbol("table"), Some(0x20000));
        let handler_addr = p.symbol("handler").unwrap();
        assert_eq!(&p.data[0..8], &handler_addr.to_le_bytes());
        // la expands to lui+addi computing 0x20000.
        let dis = p.disassemble();
        assert_eq!(dis[0].1, Instruction::Lui { rd: Reg::S3, imm: 0x20 });
        assert_eq!(
            dis[1].1,
            Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::S3, rs1: Reg::S3, imm: 0 }
        );
    }

    #[test]
    fn thdl_offset_is_relative_to_next_pc() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        let slow = b.new_label("slow");
        b.thdl(slow); // at 0x1000; R_hdl = 0x1004 + offset
        b.halt();
        b.bind(slow); // 0x1008
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.disassemble()[0].1, Instruction::Thdl { offset: 4 });
    }

    #[test]
    fn entry_point() {
        let mut b = ProgramBuilder::new(0x1000, 0x8000);
        b.nop();
        b.set_entry_here();
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.entry, 0x1004);
    }
}
