//! Representative instruction samples used by tests throughout the
//! workspace (encode/decode round-trips, disassembler checks, core
//! semantics coverage).

use crate::instr::*;
use crate::{Csr, FReg, Reg};

/// Returns at least one instance of every instruction form, covering every
/// inner `op` enum value.
///
/// # Examples
///
/// ```
/// let forms = tarch_isa::samples::all_forms();
/// assert!(forms.iter().any(|i| i.mnemonic() == "xadd"));
/// ```
pub fn all_forms() -> Vec<Instruction> {
    let mut v = Vec::new();
    for op in AluOp::ALL {
        v.push(Instruction::Alu { op, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 });
    }
    for op in AluImmOp::ALL {
        let imm = if op.is_shift() { 13 } else { -42 };
        v.push(Instruction::AluImm { op, rd: Reg::T0, rs1: Reg::S1, imm });
    }
    v.push(Instruction::Lui { rd: Reg::A5, imm: -12345 });
    for (width, signed) in [
        (MemWidth::Byte, true),
        (MemWidth::Byte, false),
        (MemWidth::Half, true),
        (MemWidth::Half, false),
        (MemWidth::Word, true),
        (MemWidth::Word, false),
        (MemWidth::Double, true),
    ] {
        v.push(Instruction::Load { width, signed, rd: Reg::A2, rs1: Reg::S10, imm: 8 });
    }
    for width in [MemWidth::Byte, MemWidth::Half, MemWidth::Word, MemWidth::Double] {
        v.push(Instruction::Store { width, rs2: Reg::A4, rs1: Reg::S11, imm: -16 });
    }
    for cond in BranchCond::ALL {
        v.push(Instruction::Branch { cond, rs1: Reg::A2, rs2: Reg::A4, offset: -64 });
    }
    v.push(Instruction::Jal { rd: Reg::RA, offset: 4096 });
    v.push(Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T3, imm: 0 });
    for op in FpuOp::ALL {
        v.push(Instruction::Fpu { op, rd: FReg::F2, rs1: FReg::F5, rs2: FReg::F2 });
    }
    for op in FpCmpOp::ALL {
        v.push(Instruction::FpCmp { op, rd: Reg::A0, rs1: FReg::F1, rs2: FReg::F2 });
    }
    v.push(Instruction::FpLoad { rd: FReg::F2, rs1: Reg::S10, imm: 0 });
    v.push(Instruction::FpStore { rs2: FReg::F5, rs1: Reg::S2, imm: 0 });
    v.push(Instruction::FcvtDL { rd: FReg::F3, rs1: Reg::A1 });
    v.push(Instruction::FcvtLD { rd: Reg::A1, rs1: FReg::F3 });
    v.push(Instruction::FmvXD { rd: Reg::A6, rs1: FReg::F7 });
    v.push(Instruction::FmvDX { rd: FReg::F7, rs1: Reg::A6 });
    v.push(Instruction::Tld { rd: Reg::A0, rs1: Reg::S10, imm: 0 });
    v.push(Instruction::Tsd { rs2: Reg::A0, rs1: Reg::S4, imm: 0 });
    for op in TypedAluOp::ALL {
        v.push(Instruction::Typed { op, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A0 });
    }
    for spr in Spr::ALL {
        v.push(Instruction::SetSpr { spr, rs1: Reg::A3 });
    }
    v.push(Instruction::FlushTrt);
    v.push(Instruction::Thdl { offset: 256 });
    v.push(Instruction::Tchk { rs1: Reg::A1, rs2: Reg::A2 });
    v.push(Instruction::Tget { rd: Reg::A0, rs1: Reg::A1 });
    v.push(Instruction::Tset { rs1: Reg::A0, rd: Reg::A1 });
    v.push(Instruction::Chklb { rd: Reg::A2, rs1: Reg::S10, imm: 8 });
    for csr in Csr::ALL {
        v.push(Instruction::Csrr { rd: Reg::A0, csr });
    }
    v.push(Instruction::Ecall);
    v.push(Instruction::Halt);
    v
}

/// A uniformly random well-formed instruction (encodable by construction),
/// for deterministic randomized round-trip tests.
#[cfg(test)]
pub(crate) fn random_instruction(rng: &mut tarch_testkit::Rng) -> Instruction {
    let reg = |rng: &mut tarch_testkit::Rng| Reg::new(rng.range_u64(0, 32) as u8).unwrap();
    let freg = |rng: &mut tarch_testkit::Rng| FReg::new(rng.range_u64(0, 32) as u8).unwrap();
    let imm15 = |rng: &mut tarch_testkit::Rng| rng.range_i32(-16384, 16384);

    match rng.range_u64(0, 10) {
        0 => Instruction::Alu {
            op: *rng.choice(&AluOp::ALL),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        1 => {
            let op = *rng.choice(&AluImmOp::ALL);
            let imm = imm15(rng);
            let imm = if op.is_shift() { imm.rem_euclid(64) } else { imm };
            Instruction::AluImm { op, rd: reg(rng), rs1: reg(rng), imm }
        }
        2 => Instruction::Lui { rd: reg(rng), imm: rng.range_i32(-(1 << 19), 1 << 19) },
        3 => Instruction::Branch {
            cond: *rng.choice(&BranchCond::ALL),
            rs1: reg(rng),
            rs2: reg(rng),
            offset: imm15(rng) * 4,
        },
        4 => Instruction::Tld { rd: reg(rng), rs1: reg(rng), imm: imm15(rng) },
        5 => Instruction::Tsd { rs2: reg(rng), rs1: reg(rng), imm: imm15(rng) },
        6 => Instruction::Typed {
            op: *rng.choice(&TypedAluOp::ALL),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        7 => Instruction::Chklb { rd: reg(rng), rs1: reg(rng), imm: imm15(rng) },
        8 => Instruction::Fpu {
            op: *rng.choice(&FpuOp::ALL),
            rd: freg(rng),
            rs1: freg(rng),
            rs2: freg(rng),
        },
        _ => Instruction::SetSpr { spr: *rng.choice(&Spr::ALL), rs1: reg(rng) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_forms_covers_every_mnemonic_uniquely() {
        let forms = all_forms();
        let mnemonics: HashSet<_> = forms.iter().map(|i| i.mnemonic()).collect();
        // 24 ALU + 13 ALU-imm + lui + 7 loads + 4 stores + 6 branches + jal +
        // jalr + 9 FPU + 3 FP cmp + fld + fsd + 4 cvt/mv + tld + tsd + 3 typed
        // + 5 set* + flush_trt + thdl + tchk + tget + tset + chklb + csrr +
        // ecall + halt
        assert_eq!(mnemonics.len(), 24 + 13 + 1 + 7 + 4 + 6 + 2 + 9 + 3 + 2 + 4 + 2 + 3 + 5 + 5 + 1 + 3);
    }
}
