//! Text-form assembler for TRV64.
//!
//! Accepts a small, GNU-as-flavoured dialect sufficient for examples and
//! tests (the scripting engines generate code through
//! [`crate::asm::ProgramBuilder`] directly):
//!
//! ```text
//! .text
//! main:
//!     li   a0, 10          # pseudo-instructions are supported
//!     call fib
//!     halt
//! fib:
//!     ...
//! .data
//! table:
//!     .dword 1, 2, 3
//! msg:
//!     .ascii "hi"
//! ```
//!
//! Comments start with `#` or `;`. Supported directives: `.text`, `.data`,
//! `.entry <label>`, `.align <n>`, `.dword v, ...`, `.byte v, ...`,
//! `.ascii "..."`, `.dword_label <label>`.

use crate::asm::{AsmError, Label, Program, ProgramBuilder};
use crate::instr::*;
use crate::{Csr, FReg, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by the text assembler, with a 1-based source line.
#[derive(Debug)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

impl From<AsmError> for ParseAsmError {
    fn from(e: AsmError) -> ParseAsmError {
        ParseAsmError { line: 0, message: e.to_string() }
    }
}

/// Assembles TRV64 text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] on syntax errors, unknown mnemonics or
/// registers, and on any assembly error (unbound labels, out-of-range
/// offsets).
///
/// # Examples
///
/// ```
/// let src = "
///     li a0, 2
///     li a1, 3
///     add a0, a0, a1
///     halt
/// ";
/// let program = tarch_isa::text::assemble(src, 0x1000, 0x20000)?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), tarch_isa::text::ParseAsmError>(())
/// ```
pub fn assemble(source: &str, text_base: u64, data_base: u64) -> Result<Program, ParseAsmError> {
    let mut asm = TextAssembler::new(text_base, data_base);
    for (i, raw_line) in source.lines().enumerate() {
        asm.line(i + 1, raw_line)?;
    }
    asm.finish()
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

struct TextAssembler {
    b: ProgramBuilder,
    labels: HashMap<String, Label>,
    section: Section,
    entry: Option<String>,
}

impl TextAssembler {
    fn new(text_base: u64, data_base: u64) -> TextAssembler {
        TextAssembler {
            b: ProgramBuilder::new(text_base, data_base),
            labels: HashMap::new(),
            section: Section::Text,
            entry: None,
        }
    }

    fn label(&mut self, name: &str) -> Label {
        if let Some(l) = self.labels.get(name) {
            *l
        } else {
            let l = self.b.new_label(name);
            self.labels.insert(name.to_string(), l);
            l
        }
    }

    fn line(&mut self, lineno: usize, raw: &str) -> Result<(), ParseAsmError> {
        let err = |message: String| ParseAsmError { line: lineno, message };
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut rest = line;
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let l = self.label(name);
            match self.section {
                Section::Text => self.b.bind(l),
                Section::Data => self.b.bind_data(l),
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }
        if let Some(directive) = rest.strip_prefix('.') {
            return self.directive(lineno, directive);
        }
        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let operands: Vec<&str> =
            if operands.is_empty() { Vec::new() } else { operands.split(',').map(str::trim).collect() };
        self.instruction(mnemonic, &operands).map_err(err)
    }

    fn directive(&mut self, lineno: usize, directive: &str) -> Result<(), ParseAsmError> {
        let err = |message: String| ParseAsmError { line: lineno, message };
        let (name, args) = match directive.split_once(char::is_whitespace) {
            Some((n, a)) => (n, a.trim()),
            None => (directive, ""),
        };
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "entry" => self.entry = Some(args.to_string()),
            "align" => {
                let n = parse_imm(args).map_err(err)?;
                self.b.align_data(n as u64);
            }
            "dword" => {
                for part in args.split(',') {
                    let v = parse_imm(part.trim()).map_err(err)?;
                    self.b.dword(v as u64);
                }
            }
            "byte" => {
                for part in args.split(',') {
                    let v = parse_imm(part.trim()).map_err(err)?;
                    self.b.bytes(&[v as u8]);
                }
            }
            "ascii" => {
                let s = args.trim();
                let inner = s
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err(format!("expected quoted string, got `{s}`")))?;
                self.b.bytes(inner.as_bytes());
            }
            "dword_label" => {
                let l = self.label(args.trim());
                self.b.dword_label(l);
            }
            other => return Err(err(format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn instruction(&mut self, m: &str, ops: &[&str]) -> Result<(), String> {
        // Grouped register-register ALU ops.
        if let Some(op) = AluOp::ALL.into_iter().find(|o| o.mnemonic() == m) {
            let (rd, rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?, reg(ops, 2)?);
            self.b.emit(Instruction::Alu { op, rd, rs1, rs2 });
            return Ok(());
        }
        if let Some(op) = AluImmOp::ALL.into_iter().find(|o| o.mnemonic() == m) {
            let (rd, rs1) = (reg(ops, 0)?, reg(ops, 1)?);
            let imm = imm_op(ops, 2)?;
            self.b.emit(Instruction::AluImm { op, rd, rs1, imm });
            return Ok(());
        }
        if let Some(cond) = BranchCond::ALL.into_iter().find(|c| c.mnemonic() == m) {
            let (rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?);
            let l = self.label(operand(ops, 2)?);
            self.b.branch(cond, rs1, rs2, l);
            return Ok(());
        }
        if let Some(op) = FpuOp::ALL.into_iter().find(|o| o.mnemonic() == m) {
            let (rd, rs1) = (freg(ops, 0)?, freg(ops, 1)?);
            let rs2 = if op == FpuOp::Fsqrt && ops.len() == 2 { rs1 } else { freg(ops, 2)? };
            self.b.emit(Instruction::Fpu { op, rd, rs1, rs2 });
            return Ok(());
        }
        if let Some(op) = FpCmpOp::ALL.into_iter().find(|o| o.mnemonic() == m) {
            let (rd, rs1, rs2) = (reg(ops, 0)?, freg(ops, 1)?, freg(ops, 2)?);
            self.b.emit(Instruction::FpCmp { op, rd, rs1, rs2 });
            return Ok(());
        }
        match m {
            "lb" | "lbu" | "lh" | "lhu" | "lw" | "lwu" | "ld" => {
                let rd = reg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                let (width, signed) = match m {
                    "lb" => (MemWidth::Byte, true),
                    "lbu" => (MemWidth::Byte, false),
                    "lh" => (MemWidth::Half, true),
                    "lhu" => (MemWidth::Half, false),
                    "lw" => (MemWidth::Word, true),
                    "lwu" => (MemWidth::Word, false),
                    _ => (MemWidth::Double, true),
                };
                self.b.emit(Instruction::Load { width, signed, rd, rs1, imm });
            }
            "sb" | "sh" | "sw" | "sd" => {
                let rs2 = reg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                let width = match m {
                    "sb" => MemWidth::Byte,
                    "sh" => MemWidth::Half,
                    "sw" => MemWidth::Word,
                    _ => MemWidth::Double,
                };
                self.b.emit(Instruction::Store { width, rs2, rs1, imm });
            }
            "fld" => {
                let rd = freg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                self.b.emit(Instruction::FpLoad { rd, rs1, imm });
            }
            "fsd" => {
                let rs2 = freg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                self.b.emit(Instruction::FpStore { rs2, rs1, imm });
            }
            "fcvt.d.l" => {
                let (rd, rs1) = (freg(ops, 0)?, reg(ops, 1)?);
                self.b.emit(Instruction::FcvtDL { rd, rs1 });
            }
            "fcvt.l.d" => {
                let (rd, rs1) = (reg(ops, 0)?, freg(ops, 1)?);
                self.b.emit(Instruction::FcvtLD { rd, rs1 });
            }
            "fmv.x.d" => {
                let (rd, rs1) = (reg(ops, 0)?, freg(ops, 1)?);
                self.b.emit(Instruction::FmvXD { rd, rs1 });
            }
            "fmv.d.x" => {
                let (rd, rs1) = (freg(ops, 0)?, reg(ops, 1)?);
                self.b.emit(Instruction::FmvDX { rd, rs1 });
            }
            "lui" => {
                let rd = reg(ops, 0)?;
                let imm = imm_op(ops, 1)?;
                self.b.emit(Instruction::Lui { rd, imm });
            }
            "jal" => match ops.len() {
                1 => {
                    let l = self.label(operand(ops, 0)?);
                    self.b.jal(Reg::RA, l);
                }
                _ => {
                    let rd = reg(ops, 0)?;
                    let l = self.label(operand(ops, 1)?);
                    self.b.jal(rd, l);
                }
            },
            "jalr" => match ops.len() {
                1 => self.b.jalr_call(reg(ops, 0)?),
                _ => {
                    let rd = reg(ops, 0)?;
                    let (imm, rs1) = mem_operand(ops, 1)?;
                    self.b.emit(Instruction::Jalr { rd, rs1, imm });
                }
            },
            "j" => {
                let l = self.label(operand(ops, 0)?);
                self.b.j(l);
            }
            "jr" => self.b.jr(reg(ops, 0)?),
            "call" => {
                let l = self.label(operand(ops, 0)?);
                self.b.call(l);
            }
            "ret" => self.b.ret(),
            "nop" => self.b.nop(),
            "li" => {
                let rd = reg(ops, 0)?;
                let v = parse_imm(operand(ops, 1)?)?;
                self.b.li(rd, v);
            }
            "la" => {
                let rd = reg(ops, 0)?;
                let l = self.label(operand(ops, 1)?);
                self.b.la(rd, l);
            }
            "mv" => {
                let (rd, rs) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.mv(rd, rs);
            }
            "neg" => {
                let (rd, rs) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.neg(rd, rs);
            }
            "not" => {
                let (rd, rs) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.not(rd, rs);
            }
            "seqz" => {
                let (rd, rs) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.seqz(rd, rs);
            }
            "snez" => {
                let (rd, rs) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.snez(rd, rs);
            }
            "beqz" => {
                let rs = reg(ops, 0)?;
                let l = self.label(operand(ops, 1)?);
                self.b.beqz(rs, l);
            }
            "bnez" => {
                let rs = reg(ops, 0)?;
                let l = self.label(operand(ops, 1)?);
                self.b.bnez(rs, l);
            }
            "bgt" => {
                let (rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?);
                let l = self.label(operand(ops, 2)?);
                self.b.bgt(rs1, rs2, l);
            }
            "ble" => {
                let (rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?);
                let l = self.label(operand(ops, 2)?);
                self.b.ble(rs1, rs2, l);
            }
            "tld" => {
                let rd = reg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                self.b.emit(Instruction::Tld { rd, rs1, imm });
            }
            "tsd" => {
                let rs2 = reg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                self.b.emit(Instruction::Tsd { rs2, rs1, imm });
            }
            "xadd" | "xsub" | "xmul" => {
                let op = TypedAluOp::ALL.into_iter().find(|o| o.mnemonic() == m).unwrap();
                let (rd, rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?, reg(ops, 2)?);
                self.b.emit(Instruction::Typed { op, rd, rs1, rs2 });
            }
            "setoffset" | "setmask" | "setshift" | "set_trt" | "settype" => {
                let spr = Spr::ALL.into_iter().find(|s| s.mnemonic() == m).unwrap();
                self.b.emit(Instruction::SetSpr { spr, rs1: reg(ops, 0)? });
            }
            "flush_trt" => self.b.emit(Instruction::FlushTrt),
            "thdl" => {
                let l = self.label(operand(ops, 0)?);
                self.b.thdl(l);
            }
            "tchk" => {
                let (rs1, rs2) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.emit(Instruction::Tchk { rs1, rs2 });
            }
            "tget" => {
                let (rd, rs1) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.emit(Instruction::Tget { rd, rs1 });
            }
            "tset" => {
                let (rs1, rd) = (reg(ops, 0)?, reg(ops, 1)?);
                self.b.emit(Instruction::Tset { rs1, rd });
            }
            "chklb" => {
                let rd = reg(ops, 0)?;
                let (imm, rs1) = mem_operand(ops, 1)?;
                self.b.emit(Instruction::Chklb { rd, rs1, imm });
            }
            "csrr" => {
                let rd = reg(ops, 0)?;
                let csr = Csr::parse(operand(ops, 1)?)
                    .ok_or_else(|| format!("unknown csr `{}`", ops[1]))?;
                self.b.emit(Instruction::Csrr { rd, csr });
            }
            "ecall" => self.b.ecall(),
            "halt" => self.b.halt(),
            other => return Err(format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Program, ParseAsmError> {
        let entry = self.entry.take();
        let mut program = self.b.finish()?;
        if let Some(name) = entry {
            let addr = program
                .symbol(&name)
                .ok_or_else(|| ParseAsmError { line: 0, message: format!("entry label `{name}` not found") })?;
            program.entry = addr;
        }
        Ok(program)
    }
}

fn operand<'a>(ops: &[&'a str], i: usize) -> Result<&'a str, String> {
    ops.get(i).copied().ok_or_else(|| format!("missing operand {}", i + 1))
}

fn reg(ops: &[&str], i: usize) -> Result<Reg, String> {
    let s = operand(ops, i)?;
    Reg::parse(s).ok_or_else(|| format!("unknown register `{s}`"))
}

fn freg(ops: &[&str], i: usize) -> Result<FReg, String> {
    let s = operand(ops, i)?;
    FReg::parse(s).ok_or_else(|| format!("unknown fp register `{s}`"))
}

fn imm_op(ops: &[&str], i: usize) -> Result<i32, String> {
    parse_imm(operand(ops, i)?).map(|v| v as i32)
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    // Hex/binary literals accept the full 64-bit range (e.g. NaN-box
    // patterns in `.dword` data), reinterpreted as i64.
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(bin, 2).map(|v| v as i64)
    } else {
        body.parse::<i64>()
    }
    .map_err(|e| format!("bad immediate `{s}`: {e}"))?;
    Ok(if neg { -value } else { value })
}

fn mem_operand(ops: &[&str], i: usize) -> Result<(i32, Reg), String> {
    let s = operand(ops, i)?;
    let open = s.find('(').ok_or_else(|| format!("expected `imm(reg)`, got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("expected `imm(reg)`, got `{s}`"))?;
    let imm_str = s[..open].trim();
    let imm = if imm_str.is_empty() { 0 } else { parse_imm(imm_str)? as i32 };
    let r = s[open + 1..close].trim();
    let rs1 = Reg::parse(r).ok_or_else(|| format!("unknown register `{r}`"))?;
    Ok((imm, rs1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn assemble_disassemble_roundtrip_all_forms() {
        // Every instruction's Display form (with numeric branch offsets
        // replaced by labels) should assemble back to itself.
        for instr in samples::all_forms() {
            let text = match instr {
                Instruction::Branch { cond, rs1, rs2, .. } => {
                    format!("target:\n {} {rs1}, {rs2}, target", cond.mnemonic())
                }
                Instruction::Jal { rd, .. } => format!("target:\n jal {rd}, target"),
                Instruction::Thdl { .. } => "target:\n thdl target".to_string(),
                other => other.to_string(),
            };
            let p = assemble(&text, 0x1000, 0x20000)
                .unwrap_or_else(|e| panic!("assembling `{text}`: {e}"));
            let got = p.disassemble().last().unwrap().1;
            match (instr, got) {
                (Instruction::Branch { cond, rs1, rs2, .. },
                 Instruction::Branch { cond: c2, rs1: r1, rs2: r2, .. }) => {
                    assert_eq!((cond, rs1, rs2), (c2, r1, r2));
                }
                (Instruction::Jal { rd, .. }, Instruction::Jal { rd: rd2, .. }) => {
                    assert_eq!(rd, rd2);
                }
                (Instruction::Thdl { .. }, Instruction::Thdl { .. }) => {}
                (want, got) => assert_eq!(got, want, "source `{text}`"),
            }
        }
    }

    #[test]
    fn program_with_sections_and_entry() {
        let src = r#"
            .entry main
            helper:
                ret
            main:
                la a0, table
                ld a1, 8(a0)
                call helper
                halt
            .data
            .align 8
            table:
                .dword 7, 9
                .ascii "ok"
        "#;
        let p = assemble(src, 0x1000, 0x40000).unwrap();
        assert_eq!(p.entry, p.symbol("main").unwrap());
        assert_eq!(p.symbol("table"), Some(0x40000));
        assert_eq!(&p.data[0..8], &7u64.to_le_bytes());
        assert_eq!(&p.data[16..18], b"ok");
    }

    #[test]
    fn errors_report_line_numbers() {
        let e = assemble("nop\n frobnicate a0\n", 0, 0x1000).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = assemble("lw a0, a1\n", 0, 0x1000).unwrap_err();
        assert!(e.message.contains("imm(reg)"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# comment\n\n  nop # trailing\n; semicolon\n", 0, 0x1000).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn immediates_hex_bin_neg() {
        let p = assemble("li a0, 0x10\nli a1, -0b101\naddi a2, a0, -3\n", 0, 0x1000).unwrap();
        let dis = p.disassemble();
        assert_eq!(
            dis[0].1,
            Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 16 }
        );
        assert_eq!(
            dis[1].1,
            Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A1, rs1: Reg::ZERO, imm: -5 }
        );
    }
}
