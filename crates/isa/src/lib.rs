//! # tarch-isa — the TRV64 instruction set
//!
//! Instruction definitions, binary encoding, and assemblers for **TRV64**,
//! the 64-bit RISC-style ISA used by this reproduction of *Typed
//! Architectures: Architectural Support for Lightweight Scripting*
//! (ASPLOS 2017).
//!
//! The ISA consists of:
//!
//! * a base integer + double-precision FP subset in the spirit of RV64IMFD
//!   (own clean fixed 32-bit encoding, see the [`mod@encode`] module);
//! * the **Typed Architecture extension** of the paper's Table 2 — tagged
//!   loads/stores ([`Instruction::Tld`]/[`Instruction::Tsd`]), polymorphic
//!   ALU instructions ([`Instruction::Typed`]: `xadd`/`xsub`/`xmul`),
//!   Type Rule Table and tag-datapath configuration
//!   ([`Instruction::SetSpr`], [`Instruction::FlushTrt`]), and the
//!   miscellaneous `thdl`/`tchk`/`tget`/`tset`;
//! * the **Checked Load extension** (`settype`/`chklb`) used as the paper's
//!   hardware comparison baseline.
//!
//! # Examples
//!
//! Assemble and disassemble the typed fast path of a bytecode `ADD` handler
//! (compare the paper's Figure 3):
//!
//! ```
//! use tarch_isa::asm::ProgramBuilder;
//! use tarch_isa::Reg;
//!
//! let mut b = ProgramBuilder::new(0x1000, 0x20000);
//! let slow = b.new_label("ADD_slow");
//! b.tld(Reg::A2, 0, Reg::S10);      // load rb (value + tag)
//! b.tld(Reg::A3, 0, Reg::S9);       // load rc (value + tag)
//! b.thdl(slow);                     // set type-miss handler
//! b.xadd(Reg::A2, Reg::A2, Reg::A3);// ra = rb + rc (typed)
//! b.tsd(Reg::A2, 0, Reg::S11);      // store ra (value + tag)
//! b.halt();
//! b.bind(slow);
//! b.halt();
//! let program = b.finish()?;
//! assert_eq!(program.disassemble()[3].1.mnemonic(), "xadd");
//! # Ok::<(), tarch_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod encode;
mod instr;
mod reg;
pub mod samples;
pub mod text;

pub use encode::{DecodeError, EncodeError};
pub use instr::{
    AluImmOp, AluOp, BranchCond, Csr, FpCmpOp, FpuOp, Instruction, MemWidth, Spr, TrtClass,
    TrtRule, TypedAluOp,
};
pub use reg::{FReg, Reg};
