//! The tracer proper: sampling histogram, per-pc miss attribution, and
//! windowed metric snapshots, all driven by the simulated core.

use std::collections::BTreeMap;

use crate::config::TraceConfig;
use crate::ring::{EventRing, TraceEvent, TraceEventKind};

/// Hot-PC entries retained in a [`TraceSummary`] (the full histogram
/// stays available on the live [`Tracer`]).
pub const MAX_HOT_PCS: usize = 32;

/// Metric-window cap: when a run accumulates more windows than this,
/// adjacent pairs are merged and the window length doubles.
pub const MAX_WINDOWS: usize = 256;

/// Cache/TLB misses attributed to one guest pc.
///
/// Fetch-side misses carry their exact pc; data-side misses are
/// attributed to the pc the tracer last saw (exact under the stepwise
/// engine, block-entry granularity under the block engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcMisses {
    /// Instruction-cache misses fetching this pc.
    pub icache: u64,
    /// Data-cache misses attributed to this pc.
    pub dcache: u64,
    /// Instruction-TLB misses fetching this pc.
    pub itlb: u64,
    /// Data-TLB misses attributed to this pc.
    pub dtlb: u64,
}

impl PcMisses {
    /// Whether any miss was attributed here.
    pub fn any(&self) -> bool {
        self.icache + self.dcache + self.itlb + self.dtlb != 0
    }
}

/// One row of the block-engine heat table: a basic block, how many
/// times tier-1 execution entered it, and whether it has been
/// template-compiled to tier 2. Populated by the core (this crate sits
/// below the block engine in the dependency order), carried here so it
/// travels with the rest of the summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotBlock {
    /// Guest entry pc of the block.
    pub pc: u64,
    /// Times execution entered this block (lookup hits, chained
    /// transfers, and the install itself).
    pub heat: u64,
    /// Number of (possibly fused) operations in the block.
    pub len: u32,
    /// Whether the block has been template-compiled to tier 2.
    pub compiled: bool,
}

/// One row of the sampling profile: a guest pc, how many samples landed
/// on it, and the misses attributed to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPc {
    /// Guest pc (block-entry granularity under the block engine).
    pub pc: u64,
    /// Samples recorded at this pc.
    pub samples: u64,
    /// Misses attributed to this pc.
    pub misses: PcMisses,
}

/// Cumulative counter values the core hands the tracer at each window
/// boundary. The tracer differences successive snapshots itself, so the
/// core just copies its live counters — no delta bookkeeping on the hot
/// path. Defined here (not in terms of the core's `PerfCounters`)
/// because this crate sits *below* the core in the dependency order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired guest instructions.
    pub instructions: u64,
    /// Instruction-cache accesses.
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache accesses.
    pub dcache_accesses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
}

impl WindowStats {
    fn delta(&self, prev: &WindowStats) -> WindowStats {
        WindowStats {
            cycles: self.cycles - prev.cycles,
            instructions: self.instructions - prev.instructions,
            icache_accesses: self.icache_accesses - prev.icache_accesses,
            icache_misses: self.icache_misses - prev.icache_misses,
            dcache_accesses: self.dcache_accesses - prev.dcache_accesses,
            dcache_misses: self.dcache_misses - prev.dcache_misses,
            itlb_misses: self.itlb_misses - prev.itlb_misses,
            dtlb_misses: self.dtlb_misses - prev.dtlb_misses,
            branches: self.branches - prev.branches,
            mispredicts: self.mispredicts - prev.mispredicts,
        }
    }

    fn add(&mut self, other: &WindowStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.icache_accesses += other.icache_accesses;
        self.icache_misses += other.icache_misses;
        self.dcache_accesses += other.dcache_accesses;
        self.dcache_misses += other.dcache_misses;
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
    }

    /// Misses per thousand instructions for `misses` within this window
    /// (0.0 when no instructions retired).
    pub fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Structure-occupancy snapshot taken at a window boundary: how many
/// entries of each hardware structure are live right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Valid instruction-cache lines.
    pub icache_lines: u64,
    /// Valid data-cache lines.
    pub dcache_lines: u64,
    /// Valid instruction-TLB entries.
    pub itlb_entries: u64,
    /// Valid data-TLB entries.
    pub dtlb_entries: u64,
    /// Rules resident in the Type Rule Table.
    pub trt_rules: u64,
    /// Basic blocks resident in the block engine's table.
    pub blocks: u64,
}

/// One closed metric window: counter deltas over `[start, end)` plus the
/// occupancy snapshot taken at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricWindow {
    /// First cycle covered.
    pub start: u64,
    /// One past the last cycle covered.
    pub end: u64,
    /// Counter deltas accumulated inside the window.
    pub stats: WindowStats,
    /// Occupancies observed when the window closed.
    pub occupancy: Occupancy,
}

/// Everything a finished run keeps: the compact, serializable residue of
/// a [`Tracer`], sized to travel inside a `CellResult` and the BENCH
/// artifact without bloating either (hot pcs capped at [`MAX_HOT_PCS`],
/// windows at [`MAX_WINDOWS`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Sampling period the profile was taken at.
    pub sample_period: u64,
    /// Total samples recorded.
    pub total_samples: u64,
    /// Top pcs by sample count (ties broken by ascending pc), at most
    /// [`MAX_HOT_PCS`] entries.
    pub hot_pcs: Vec<HotPc>,
    /// Top basic blocks by execution heat (ties broken by ascending
    /// pc). The tracer itself cannot see the block table; the core
    /// fills this in after calling [`Tracer::summary`], so it is empty
    /// on a summary taken straight off a live tracer.
    pub hot_blocks: Vec<HotBlock>,
    /// Events ever recorded (including ones the ring overwrote).
    pub events_recorded: u64,
    /// Events lost to ring overwriting.
    pub events_dropped: u64,
    /// Closed metric windows, oldest first.
    pub windows: Vec<MetricWindow>,
}

/// The live observer. The core owns one (boxed, behind
/// `Option`) when tracing is enabled and drives it from sites it
/// already visits; with tracing off none of this exists and the hooks
/// cost one predictable branch each.
///
/// All bookkeeping is keyed to simulated cycles, so a trace is a pure
/// function of (program, configuration) — deterministic across hosts.
#[derive(Debug, Clone)]
pub struct Tracer {
    cfg: TraceConfig,
    /// Last guest pc announced via [`Tracer::tick`]; data-side misses
    /// are attributed here.
    cur_pc: u64,
    next_sample: u64,
    samples: BTreeMap<u64, u64>,
    misses: BTreeMap<u64, PcMisses>,
    total_samples: u64,
    ring: EventRing,
    windows: Vec<MetricWindow>,
    window_start: u64,
    next_window: u64,
    /// Current window length; doubles when the window list coalesces.
    window_cycles: u64,
    prev_stats: WindowStats,
}

impl Tracer {
    /// Creates a tracer; sampling and windowing start at cycle 0.
    pub fn new(cfg: TraceConfig) -> Tracer {
        let sample_period = cfg.sample_period.max(1);
        let window_cycles = cfg.window_cycles.max(1);
        Tracer {
            cfg,
            cur_pc: 0,
            next_sample: sample_period,
            samples: BTreeMap::new(),
            misses: BTreeMap::new(),
            total_samples: 0,
            ring: EventRing::new(cfg.ring_capacity),
            windows: Vec::new(),
            window_start: 0,
            next_window: window_cycles,
            window_cycles,
            prev_stats: WindowStats::default(),
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Announces that execution is at guest `pc` with the cycle counter
    /// at `now`. Records one sample per elapsed sampling period (all
    /// attributed to `pc` — under the block engine that is the entry pc
    /// of the block that consumed those cycles, which is exactly the
    /// attribution we want). Returns `true` when a metric window is due,
    /// in which case the caller should gather its counters and call
    /// [`Tracer::close_windows`].
    #[inline]
    pub fn tick(&mut self, pc: u64, now: u64) -> bool {
        self.cur_pc = pc;
        if now >= self.next_sample {
            let period = self.cfg.sample_period.max(1);
            let n = (now - self.next_sample) / period + 1;
            *self.samples.entry(pc).or_insert(0) += n;
            self.total_samples += n;
            self.next_sample += n * period;
        }
        now >= self.next_window
    }

    /// Last pc announced via [`Tracer::tick`].
    pub fn cur_pc(&self) -> u64 {
        self.cur_pc
    }

    /// Closes every window due at `now`. `cumulative` is the core's
    /// *live* counter snapshot (the tracer differences it against the
    /// previous close), `occupancy` the structure occupancies right now.
    /// One call may close a span covering several nominal window lengths
    /// if the core batched a long stretch of cycles; the window records
    /// its true `[start, end)` extent either way.
    pub fn close_windows(&mut self, now: u64, cumulative: WindowStats, occupancy: Occupancy) {
        if now < self.next_window {
            return;
        }
        let delta = cumulative.delta(&self.prev_stats);
        self.prev_stats = cumulative;
        self.windows.push(MetricWindow {
            start: self.window_start,
            end: now,
            stats: delta,
            occupancy,
        });
        self.window_start = now;
        let skip = (now - self.next_window) / self.window_cycles + 1;
        self.next_window += skip * self.window_cycles;
        self.coalesce();
    }

    /// Flushes the final partial window at end of run (no-op if nothing
    /// accumulated since the last close).
    pub fn finish(&mut self, now: u64, cumulative: WindowStats, occupancy: Occupancy) {
        let delta = cumulative.delta(&self.prev_stats);
        if delta == WindowStats::default() && now <= self.window_start {
            return;
        }
        self.prev_stats = cumulative;
        self.windows.push(MetricWindow {
            start: self.window_start,
            end: now.max(self.window_start),
            stats: delta,
            occupancy,
        });
        self.window_start = self.windows.last().unwrap().end;
        self.coalesce();
    }

    /// Merges adjacent window pairs once the list exceeds
    /// [`MAX_WINDOWS`], doubling the effective window length: long runs
    /// keep complete coverage at geometrically coarsening resolution
    /// instead of growing without bound.
    fn coalesce(&mut self) {
        if self.windows.len() <= MAX_WINDOWS {
            return;
        }
        let old = std::mem::take(&mut self.windows);
        let mut merged = Vec::with_capacity(old.len() / 2 + 1);
        for pair in old.chunks(2) {
            if let [first, second] = pair {
                let mut stats = first.stats;
                stats.add(&second.stats);
                merged.push(MetricWindow {
                    start: first.start,
                    end: second.end,
                    stats,
                    // Occupancy is a point sample; keep the later one.
                    occupancy: second.occupancy,
                });
            } else {
                merged.push(pair[0]);
            }
        }
        self.windows = merged;
        self.window_cycles *= 2;
    }

    /// Records a structured event.
    #[inline]
    pub fn event(&mut self, cycle: u64, kind: TraceEventKind) {
        self.ring.push(TraceEvent { cycle, kind });
    }

    /// Attributes an instruction-cache miss to the fetch pc.
    pub fn icache_miss(&mut self, pc: u64, cycle: u64) {
        self.misses.entry(pc).or_default().icache += 1;
        self.ring.push(TraceEvent { cycle, kind: TraceEventKind::ICacheMiss { pc } });
    }

    /// Attributes an instruction-TLB miss to the fetch pc.
    pub fn itlb_miss(&mut self, pc: u64, cycle: u64) {
        self.misses.entry(pc).or_default().itlb += 1;
        self.ring.push(TraceEvent { cycle, kind: TraceEventKind::ITlbMiss { pc } });
    }

    /// Attributes a data-cache miss at `addr` to the current pc.
    pub fn dcache_miss(&mut self, addr: u64, cycle: u64) {
        let pc = self.cur_pc;
        self.misses.entry(pc).or_default().dcache += 1;
        self.ring.push(TraceEvent { cycle, kind: TraceEventKind::DCacheMiss { pc, addr } });
    }

    /// Attributes a data-TLB miss at `addr` to the current pc.
    pub fn dtlb_miss(&mut self, addr: u64, cycle: u64) {
        let pc = self.cur_pc;
        self.misses.entry(pc).or_default().dtlb += 1;
        self.ring.push(TraceEvent { cycle, kind: TraceEventKind::DTlbMiss { pc, addr } });
    }

    /// Total samples recorded so far.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The full pc → sample-count histogram (not capped).
    pub fn samples(&self) -> &BTreeMap<u64, u64> {
        &self.samples
    }

    /// Misses attributed to `pc` so far.
    pub fn misses_at(&self, pc: u64) -> PcMisses {
        self.misses.get(&pc).copied().unwrap_or_default()
    }

    /// The structured-event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Closed metric windows, oldest first.
    pub fn windows(&self) -> &[MetricWindow] {
        &self.windows
    }

    /// The top `n` pcs by sample count, ties broken by ascending pc, with
    /// their attributed misses. Pcs that only took misses (never a
    /// sample) are included with `samples == 0` so heavy miss sites
    /// can't hide below the sampling floor.
    pub fn hot_pcs(&self, n: usize) -> Vec<HotPc> {
        let mut rows: Vec<HotPc> = self
            .samples
            .iter()
            .map(|(&pc, &samples)| HotPc { pc, samples, misses: self.misses_at(pc) })
            .collect();
        for (&pc, &misses) in &self.misses {
            if !self.samples.contains_key(&pc) && misses.any() {
                rows.push(HotPc { pc, samples: 0, misses });
            }
        }
        rows.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.pc.cmp(&b.pc)));
        rows.truncate(n);
        rows
    }

    /// Harvests the full (uncapped) sampling histogram as a mergeable
    /// [`PcProfile`](crate::PcProfile) — the input to profile-guided
    /// optimization (per-pc hot sets for tier-up and superblock
    /// formation).
    pub fn pc_profile(&self) -> crate::PcProfile {
        crate::PcProfile::from_records(self.samples.iter().map(|(&pc, &n)| (pc, n)))
    }

    /// Extracts the serializable summary of everything observed so far.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            sample_period: self.cfg.sample_period.max(1),
            total_samples: self.total_samples,
            hot_pcs: self.hot_pcs(MAX_HOT_PCS),
            hot_blocks: Vec::new(),
            events_recorded: self.ring.total(),
            events_dropped: self.ring.dropped(),
            windows: self.windows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period: u64, window: u64) -> TraceConfig {
        TraceConfig { sample_period: period, window_cycles: window, ring_capacity: 16 }
    }

    #[test]
    fn sampling_counts_every_period_crossing() {
        let mut t = Tracer::new(cfg(100, 1_000_000));
        // Cycle 0..99: no sample yet.
        assert!(!t.tick(0x10, 99));
        assert_eq!(t.total_samples(), 0);
        // Crossing 100 exactly once.
        t.tick(0x10, 100);
        assert_eq!(t.total_samples(), 1);
        // A long block consumes 1000 cycles: 10 crossings, all on its pc.
        t.tick(0x20, 1100);
        assert_eq!(t.total_samples(), 11);
        assert_eq!(t.samples()[&0x20], 10);
        // No double counting on a stationary clock.
        t.tick(0x30, 1100);
        assert_eq!(t.total_samples(), 11);
    }

    #[test]
    fn sampling_is_deterministic() {
        let run = || {
            let mut t = Tracer::new(cfg(7, 1_000));
            for i in 0..500u64 {
                let pc = 0x1000 + (i % 13) * 4;
                if t.tick(pc, i * 3) {
                    t.close_windows(i * 3, WindowStats::default(), Occupancy::default());
                }
            }
            t.summary()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn windows_difference_cumulative_counters() {
        let mut t = Tracer::new(cfg(1_000_000, 100));
        let cum = |instructions: u64| WindowStats { instructions, ..WindowStats::default() };
        assert!(t.tick(0x10, 150));
        t.close_windows(150, cum(40), Occupancy::default());
        assert!(t.tick(0x10, 250));
        t.close_windows(250, cum(100), Occupancy::default());
        let w = t.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start, w[0].end, w[0].stats.instructions), (0, 150, 40));
        assert_eq!((w[1].start, w[1].end, w[1].stats.instructions), (150, 250, 60));
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut t = Tracer::new(cfg(1_000_000, 1_000));
        let cum = WindowStats { cycles: 500, instructions: 123, ..WindowStats::default() };
        t.finish(500, cum, Occupancy::default());
        assert_eq!(t.windows().len(), 1);
        assert_eq!(t.windows()[0].stats.instructions, 123);
        // A second finish with nothing new is a no-op.
        t.finish(500, cum, Occupancy::default());
        assert_eq!(t.windows().len(), 1);
    }

    #[test]
    fn window_list_coalesces_and_stays_bounded() {
        let mut t = Tracer::new(cfg(u64::MAX, 10));
        let mut now = 0;
        let mut cum = WindowStats::default();
        for i in 0..(MAX_WINDOWS as u64 * 4) {
            now += 10;
            t.tick(0x10, now);
            cum.instructions = (i + 1) * 5;
            t.close_windows(now, cum, Occupancy::default());
        }
        // After coalescing doubled the window length, the tail no longer
        // lines up with a close; `finish` flushes the partial window.
        t.finish(now, cum, Occupancy::default());
        assert!(t.windows().len() <= MAX_WINDOWS);
        // Coverage is complete: windows tile [0, now) and deltas sum to
        // the cumulative total.
        let total: u64 = t.windows().iter().map(|w| w.stats.instructions).sum();
        assert_eq!(total, MAX_WINDOWS as u64 * 4 * 5);
        let mut expect_start = 0;
        for w in t.windows() {
            assert_eq!(w.start, expect_start);
            expect_start = w.end;
        }
        assert_eq!(expect_start, now);
    }

    #[test]
    fn miss_attribution_follows_cur_pc() {
        let mut t = Tracer::new(cfg(1_000_000, 1_000_000));
        t.tick(0x40, 10);
        t.dcache_miss(0xbeef, 12);
        t.dtlb_miss(0xbeef, 12);
        t.icache_miss(0x80, 20);
        let m = t.misses_at(0x40);
        assert_eq!((m.dcache, m.dtlb), (1, 1));
        assert_eq!(t.misses_at(0x80).icache, 1);
        // Miss-only pcs surface in hot_pcs with zero samples.
        let hot = t.hot_pcs(10);
        assert!(hot.iter().any(|h| h.pc == 0x80 && h.samples == 0 && h.misses.icache == 1));
    }

    #[test]
    fn summary_caps_hot_pcs() {
        let mut t = Tracer::new(cfg(1, 1_000_000_000));
        for i in 0..100u64 {
            t.tick(0x1000 + i * 4, i + 1);
        }
        let s = t.summary();
        assert_eq!(s.hot_pcs.len(), MAX_HOT_PCS);
        assert_eq!(s.total_samples, 100);
    }
}
