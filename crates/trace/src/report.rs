//! Human-readable renderings of a trace: the hot-PC attribution table
//! and flamegraph-folded stacks, both resolved against guest symbols.

use std::fmt::Write as _;

use crate::tracer::TraceSummary;

/// Nearest-preceding-symbol resolver over a guest program's symbol map.
///
/// Built from `(name, address)` pairs (the shape of
/// `tarch_isa::asm::Program::symbols`); [`SymbolTable::resolve`] finds
/// the closest symbol at or below a pc and reports the offset into it.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Sorted ascending by address.
    syms: Vec<(u64, String)>,
}

impl SymbolTable {
    /// Builds a table from `(name, address)` pairs in any order.
    pub fn new<I>(symbols: I) -> SymbolTable
    where
        I: IntoIterator<Item = (String, u64)>,
    {
        let mut syms: Vec<(u64, String)> =
            symbols.into_iter().map(|(name, addr)| (addr, name)).collect();
        syms.sort();
        SymbolTable { syms }
    }

    /// The nearest symbol at or below `pc`, with the offset of `pc` into
    /// it; `None` if `pc` precedes every symbol (or the table is empty).
    pub fn resolve(&self, pc: u64) -> Option<(&str, u64)> {
        let idx = self.syms.partition_point(|&(addr, _)| addr <= pc);
        let (addr, name) = self.syms.get(idx.checked_sub(1)?)?;
        Some((name, pc - addr))
    }

    /// `sym+0x10`-style label for `pc`, falling back to the raw hex pc.
    pub fn label(&self, pc: u64) -> String {
        match self.resolve(pc) {
            Some((name, 0)) => name.to_string(),
            Some((name, off)) => format!("{name}+{off:#x}"),
            None => format!("{pc:#x}"),
        }
    }
}

/// Renders the hot-PC histogram as an aligned attribution table:
/// samples (≈ cycle share) plus the cache/TLB misses attributed to each
/// pc, symbolised through `syms`.
pub fn hot_pc_table(summary: &TraceSummary, syms: &SymbolTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} samples @ every {} cycles ({} events recorded, {} dropped)",
        summary.total_samples, summary.sample_period, summary.events_recorded,
        summary.events_dropped,
    );
    let _ = writeln!(
        out,
        "{:>4}  {:<12} {:>8} {:>6}  {:>8} {:>8} {:>6} {:>6}  symbol",
        "#", "pc", "samples", "cyc%", "i$miss", "d$miss", "itlb", "dtlb"
    );
    for (rank, hot) in summary.hot_pcs.iter().enumerate() {
        let share = if summary.total_samples == 0 {
            0.0
        } else {
            hot.samples as f64 * 100.0 / summary.total_samples as f64
        };
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:>8} {:>5.1}%  {:>8} {:>8} {:>6} {:>6}  {}",
            rank + 1,
            format!("{:#x}", hot.pc),
            hot.samples,
            share,
            hot.misses.icache,
            hot.misses.dcache,
            hot.misses.itlb,
            hot.misses.dtlb,
            syms.label(hot.pc),
        );
    }
    out
}

/// Renders the block-engine heat table: the hottest basic blocks by
/// entry count, with their (possibly fused) op counts and tier-2
/// compile status, symbolised through `syms`. Empty when the run had no
/// block engine (summaries off a live tracer carry no blocks).
pub fn hot_block_table(summary: &TraceSummary, syms: &SymbolTable) -> String {
    let mut out = String::new();
    if summary.hot_blocks.is_empty() {
        return out;
    }
    let total: u64 = summary.hot_blocks.iter().map(|b| b.heat).sum();
    let _ = writeln!(out, "{} hot blocks ({} entries recorded)", summary.hot_blocks.len(), total);
    let _ = writeln!(
        out,
        "{:>4}  {:<12} {:>10} {:>5} {:>6}  symbol",
        "#", "pc", "heat", "ops", "tier"
    );
    for (rank, block) in summary.hot_blocks.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:>10} {:>5} {:>6}  {}",
            rank + 1,
            format!("{:#x}", block.pc),
            block.heat,
            block.len,
            if block.compiled { "2" } else { "1" },
            syms.label(block.pc),
        );
    }
    out
}

/// Renders the sample histogram in flamegraph *folded* format — one
/// `frames count` line per hot pc, frames separated by `;` — ready for
/// `flamegraph.pl` or speedscope. The simulator records no call stacks,
/// so each line is a two-frame `symbol;pc` stack: grouping by symbol at
/// the root, exact pc one level down.
pub fn folded_stacks(summary: &TraceSummary, syms: &SymbolTable) -> String {
    let mut out = String::new();
    for hot in &summary.hot_pcs {
        if hot.samples == 0 {
            continue;
        }
        let sym = match syms.resolve(hot.pc) {
            Some((name, _)) => name.to_string(),
            None => "?".to_string(),
        };
        let _ = writeln!(out, "{sym};{:#x} {}", hot.pc, hot.samples);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{HotBlock, HotPc, PcMisses};

    fn table() -> SymbolTable {
        SymbolTable::new([
            ("dispatch".to_string(), 0x1000),
            ("op_add".to_string(), 0x1080),
            ("op_call".to_string(), 0x1200),
        ])
    }

    #[test]
    fn resolves_nearest_preceding_symbol() {
        let t = table();
        assert_eq!(t.resolve(0x0fff), None);
        assert_eq!(t.resolve(0x1000), Some(("dispatch", 0)));
        assert_eq!(t.resolve(0x107c), Some(("dispatch", 0x7c)));
        assert_eq!(t.resolve(0x1080), Some(("op_add", 0)));
        assert_eq!(t.resolve(0x9999), Some(("op_call", 0x8799)));
        assert_eq!(t.label(0x1084), "op_add+0x4");
        assert_eq!(t.label(0x10), "0x10");
    }

    #[test]
    fn renders_table_and_folded() {
        let summary = TraceSummary {
            sample_period: 100,
            total_samples: 10,
            hot_pcs: vec![
                HotPc {
                    pc: 0x1084,
                    samples: 7,
                    misses: PcMisses { dcache: 2, ..PcMisses::default() },
                },
                HotPc { pc: 0x1000, samples: 3, misses: PcMisses::default() },
            ],
            hot_blocks: vec![
                HotBlock { pc: 0x1080, heat: 42, len: 5, compiled: true },
                HotBlock { pc: 0x1000, heat: 9, len: 12, compiled: false },
            ],
            events_recorded: 5,
            events_dropped: 0,
            windows: Vec::new(),
        };
        let syms = table();
        let table = hot_pc_table(&summary, &syms);
        assert!(table.contains("op_add+0x4"));
        assert!(table.contains("70.0%"));
        let folded = folded_stacks(&summary, &syms);
        assert_eq!(folded, "op_add;0x1084 7\ndispatch;0x1000 3\n");
        let blocks = hot_block_table(&summary, &syms);
        assert!(blocks.contains("2 hot blocks (51 entries recorded)"));
        assert!(blocks.contains("op_add"));
        // Tier column distinguishes compiled from interpreted blocks.
        assert!(blocks.lines().nth(2).unwrap().contains(" 2  "));
        assert!(blocks.lines().nth(3).unwrap().contains(" 1  "));
    }

    #[test]
    fn hot_block_table_is_empty_without_blocks() {
        let summary = TraceSummary {
            sample_period: 100,
            total_samples: 0,
            hot_pcs: Vec::new(),
            hot_blocks: Vec::new(),
            events_recorded: 0,
            events_dropped: 0,
            windows: Vec::new(),
        };
        assert!(hot_block_table(&summary, &SymbolTable::default()).is_empty());
    }
}
