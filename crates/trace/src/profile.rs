//! The PGO profile data model: a merge-able pc → sample-count histogram
//! and the hot-set rule derived from it.
//!
//! This is the piece of a profile run that feeds back into the engine
//! (see `tarch-core`'s sample-triggered tier-up and superblock walker):
//! a plain histogram of where the sampling profiler found execution,
//! detached from the live [`Tracer`](crate::Tracer) so it can be merged
//! across runs, serialized by a higher layer (this crate has no I/O),
//! and loaded back into a fresh core. The *hot-set rule* lives here too,
//! so every consumer — the optimized phase of `repro pgo`, tests, ad-hoc
//! tooling — derives the same hot set from the same profile.

use std::collections::{BTreeMap, BTreeSet};

/// A pc is *hot* when it holds at least `total / HOT_SHARE_DENOM` of all
/// samples (and at least one): a 1/64 ≈ 1.6% share. Loose enough that a
/// workload's handful of steady-state loops all qualify, tight enough
/// that one-off startup code never does.
pub const HOT_SHARE_DENOM: u64 = 64;

/// A pc → sample-count histogram from one or more profile runs.
///
/// Keys are block-entry pcs when the profile came from the block engine
/// (the granularity the tier-up consumer wants: it gates per-block
/// decisions). Deterministic by construction — `BTreeMap` iteration
/// order is pc order, and the tracer it is harvested from is keyed to
/// simulated time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    samples: BTreeMap<u64, u64>,
}

impl PcProfile {
    /// An empty profile.
    pub fn new() -> PcProfile {
        PcProfile::default()
    }

    /// Builds a profile from `(pc, samples)` records (deserialization,
    /// or harvesting [`Tracer::samples`](crate::Tracer::samples)).
    /// Duplicate pcs accumulate; zero-count records are dropped.
    pub fn from_records<I: IntoIterator<Item = (u64, u64)>>(records: I) -> PcProfile {
        let mut p = PcProfile::new();
        for (pc, n) in records {
            p.note(pc, n);
        }
        p
    }

    /// Adds `n` samples at `pc`.
    pub fn note(&mut self, pc: u64, n: u64) {
        if n != 0 {
            *self.samples.entry(pc).or_insert(0) += n;
        }
    }

    /// Merges another profile into this one (aggregation across runs of
    /// the *same* cell — pcs are only comparable within one engine and
    /// ISA level, since each engine lays its guest code out differently).
    pub fn merge(&mut self, other: &PcProfile) {
        for (&pc, &n) in &other.samples {
            self.note(pc, n);
        }
    }

    /// Total samples across all pcs.
    pub fn total(&self) -> u64 {
        self.samples.values().sum()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `(pc, samples)` records in ascending pc order — the canonical
    /// serialized form.
    pub fn records(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.samples.iter().map(|(&pc, &n)| (pc, n))
    }

    /// The hot set this profile justifies: every pc holding at least a
    /// 1/[`HOT_SHARE_DENOM`] share of the samples (minimum one sample).
    /// An empty profile yields an empty set — a PGO consumer seeing no
    /// hot pcs treats everything as cold, which is the honest reading of
    /// "the profiler never caught it executing".
    pub fn hot_set(&self) -> BTreeSet<u64> {
        let bar = (self.total() / HOT_SHARE_DENOM).max(1);
        self.samples.iter().filter(|&(_, &n)| n >= bar).map(|(&pc, _)| pc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_merge_total_roundtrip() {
        let mut p = PcProfile::new();
        p.note(0x1000, 10);
        p.note(0x1010, 5);
        p.note(0x1000, 2);
        p.note(0x2000, 0); // zero-count records vanish
        let mut q = PcProfile::new();
        q.note(0x1010, 5);
        p.merge(&q);
        assert_eq!(p.total(), 22);
        let records: Vec<_> = p.records().collect();
        assert_eq!(records, vec![(0x1000, 12), (0x1010, 10)]);
        assert_eq!(PcProfile::from_records(records), p);
    }

    #[test]
    fn hot_set_applies_the_share_rule() {
        // 6400 samples: the bar is 100.
        let mut p = PcProfile::new();
        p.note(0x1000, 6000);
        p.note(0x1010, 300);
        p.note(0x1020, 99);
        p.note(0x1030, 1);
        let hot = p.hot_set();
        assert!(hot.contains(&0x1000));
        assert!(hot.contains(&0x1010));
        assert!(!hot.contains(&0x1020), "sub-share pc must stay cold");
        assert!(!hot.contains(&0x1030));
    }

    #[test]
    fn tiny_profiles_use_the_one_sample_floor() {
        // total/64 == 0: the bar floors at one sample, so everything
        // observed is hot — a short profile shouldn't blind the engine.
        let p = PcProfile::from_records([(0x1000, 3), (0x1010, 1)]);
        assert_eq!(p.hot_set().len(), 2);
        assert!(PcProfile::new().hot_set().is_empty());
    }
}
