//! Chrome `trace_event` JSON export.
//!
//! Emits the [JSON Array / object format] consumed by Perfetto and
//! `chrome://tracing`: a top-level `{"traceEvents": [...]}` object
//! whose entries are instant events (`"ph": "i"`) for each retained ring
//! event and counter events (`"ph": "C"`) for each metric window, with
//! one simulated cycle mapped to one trace microsecond. Written by hand
//! against `String` — this workspace takes no serialization deps — and
//! round-tripped through the runner's own JSON parser in the runner's
//! test suite.
//!
//! [JSON Array / object format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::ring::TraceEventKind;
use crate::tracer::Tracer;

/// Renders the tracer's event ring and metric windows as a Chrome
/// `trace_event` JSON document. Timestamps are simulated cycles
/// interpreted as microseconds, so a 10M-cycle run spans 10 trace
/// seconds — comfortable to navigate in Perfetto.
pub fn chrome_trace(tracer: &Tracer) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"tarch-sim\"}}",
    );
    out.push_str(
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"guest\"}}",
    );

    for event in tracer.ring().iter() {
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":1,\
             \"args\":{{{}}}}}",
            event.kind.name(),
            event.cycle,
            args_json(&event.kind),
        );
    }

    for w in tracer.windows() {
        let _ = write!(
            out,
            ",{{\"name\":\"mpki\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
             \"args\":{{\"icache\":{:.3},\"dcache\":{:.3},\"itlb\":{:.3},\"dtlb\":{:.3},\
             \"branch\":{:.3}}}}}",
            w.end,
            w.stats.mpki(w.stats.icache_misses),
            w.stats.mpki(w.stats.dcache_misses),
            w.stats.mpki(w.stats.itlb_misses),
            w.stats.mpki(w.stats.dtlb_misses),
            w.stats.mpki(w.stats.mispredicts),
        );
        let _ = write!(
            out,
            ",{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
             \"args\":{{\"icache\":{},\"dcache\":{},\"itlb\":{},\"dtlb\":{},\
             \"trt\":{},\"blocks\":{}}}}}",
            w.end,
            w.occupancy.icache_lines,
            w.occupancy.dcache_lines,
            w.occupancy.itlb_entries,
            w.occupancy.dtlb_entries,
            w.occupancy.trt_rules,
            w.occupancy.blocks,
        );
    }

    out.push_str("]}");
    out
}

/// The `args` payload (without braces) for one event kind. All values
/// are numbers or hex-string addresses; names are static identifiers,
/// so no JSON escaping is ever needed.
fn args_json(kind: &TraceEventKind) -> String {
    match *kind {
        TraceEventKind::BlockBuild { pc, len } => {
            format!("\"pc\":\"{pc:#x}\",\"len\":{len}")
        }
        TraceEventKind::CodeInvalidate { addr } => format!("\"addr\":\"{addr:#x}\""),
        TraceEventKind::ICacheMiss { pc } | TraceEventKind::ITlbMiss { pc } => {
            format!("\"pc\":\"{pc:#x}\"")
        }
        TraceEventKind::DCacheMiss { pc, addr } | TraceEventKind::DTlbMiss { pc, addr } => {
            format!("\"pc\":\"{pc:#x}\",\"addr\":\"{addr:#x}\"")
        }
        TraceEventKind::TrtFill { len } => format!("\"len\":{len}"),
        TraceEventKind::TrtFlush => String::new(),
        TraceEventKind::Trap { cause, pc } => {
            format!("\"cause\":\"{cause}\",\"pc\":\"{pc:#x}\"")
        }
        TraceEventKind::Ecall { n } => format!("\"n\":{n}"),
        TraceEventKind::TierUp { pc, len } => {
            format!("\"pc\":\"{pc:#x}\",\"len\":{len}")
        }
        TraceEventKind::Deopt { pc } => format!("\"pc\":\"{pc:#x}\""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Occupancy, WindowStats};
    use crate::TraceConfig;

    #[test]
    fn emits_instant_and_counter_events() {
        let mut t = Tracer::new(TraceConfig {
            sample_period: 10,
            window_cycles: 100,
            ring_capacity: 8,
        });
        t.event(5, TraceEventKind::BlockBuild { pc: 0x1000, len: 7 });
        t.event(9, TraceEventKind::Trap { cause: "TypeMiss", pc: 0x1010 });
        t.tick(0x1000, 150);
        t.close_windows(
            150,
            WindowStats { instructions: 100, dcache_misses: 3, ..WindowStats::default() },
            Occupancy { trt_rules: 4, ..Occupancy::default() },
        );

        let json = chrome_trace(&t);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"block_build\""));
        assert!(json.contains("\"pc\":\"0x1000\""));
        assert!(json.contains("\"cause\":\"TypeMiss\""));
        assert!(json.contains("\"name\":\"mpki\""));
        assert!(json.contains("\"dcache\":30.000"));
        assert!(json.contains("\"trt\":4"));
        // No trailing commas, balanced braces/brackets.
        assert!(!json.contains(",]") && !json.contains(",}"));
        let braces: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
    }
}
