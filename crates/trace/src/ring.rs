//! Bounded, overwrite-oldest ring of structured trace events.

/// One microarchitectural event, stamped with the simulated cycle at
/// which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle count when the event fired.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event vocabulary of the simulator's interesting edges: decode
/// cache churn, memory-system misses, Type Rule Table traffic, and
/// control transfers out of the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The block engine built (or rebuilt) a basic block at `pc`.
    BlockBuild {
        /// Guest entry pc of the block.
        pc: u64,
        /// Number of (possibly fused) operations in the block.
        len: u32,
    },
    /// A guest or host store into text invalidated predecoded state —
    /// block-table and predecode-slot invalidation, which also severs
    /// any chain links into the dead blocks.
    CodeInvalidate {
        /// First guest address of the invalidating store.
        addr: u64,
    },
    /// Instruction-cache miss at the given fetch pc.
    ICacheMiss {
        /// Guest pc being fetched.
        pc: u64,
    },
    /// Data-cache miss: `pc` is the attributed guest pc (block-entry
    /// granularity under the block engine), `addr` the data address.
    DCacheMiss {
        /// Attributed guest pc.
        pc: u64,
        /// Faulting data address.
        addr: u64,
    },
    /// Instruction-TLB miss at the given fetch pc.
    ITlbMiss {
        /// Guest pc being fetched.
        pc: u64,
    },
    /// Data-TLB miss, attributed like [`TraceEventKind::DCacheMiss`].
    DTlbMiss {
        /// Attributed guest pc.
        pc: u64,
        /// Faulting data address.
        addr: u64,
    },
    /// A rule was pushed into the Type Rule Table.
    TrtFill {
        /// Table occupancy after the push.
        len: u32,
    },
    /// The Type Rule Table was flushed.
    TrtFlush,
    /// The guest trapped out of the run loop.
    Trap {
        /// Static trap mnemonic (e.g. `"TypeMiss"`).
        cause: &'static str,
        /// Guest pc at the trap.
        pc: u64,
    },
    /// An `ecall` into the VM runtime.
    Ecall {
        /// Helper number in `a7`.
        n: u64,
    },
    /// The block engine template-compiled a hot block into a tier-2
    /// specialized closure.
    TierUp {
        /// Guest entry pc of the block that tiered up.
        pc: u64,
        /// Number of (possibly fused) operations compiled.
        len: u32,
    },
    /// A compiled block observed a generation move mid-run and fell
    /// back to the tier-1 interpreter at an instruction boundary.
    Deopt {
        /// Guest entry pc of the deoptimized block.
        pc: u64,
    },
}

impl TraceEventKind {
    /// Short static name, used as the Chrome-trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::BlockBuild { .. } => "block_build",
            TraceEventKind::CodeInvalidate { .. } => "code_invalidate",
            TraceEventKind::ICacheMiss { .. } => "icache_miss",
            TraceEventKind::DCacheMiss { .. } => "dcache_miss",
            TraceEventKind::ITlbMiss { .. } => "itlb_miss",
            TraceEventKind::DTlbMiss { .. } => "dtlb_miss",
            TraceEventKind::TrtFill { .. } => "trt_fill",
            TraceEventKind::TrtFlush => "trt_flush",
            TraceEventKind::Trap { .. } => "trap",
            TraceEventKind::Ecall { .. } => "ecall",
            TraceEventKind::TierUp { .. } => "tier_up",
            TraceEventKind::Deopt { .. } => "deopt",
        }
    }
}

/// Fixed-capacity event buffer that overwrites its oldest entry when
/// full. The total number of events ever pushed is tracked separately,
/// so [`EventRing::dropped`] reports exactly how much history was lost
/// to overwriting — totals survive overflow even though payloads don't.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    total: u64,
}

impl EventRing {
    /// Creates an empty ring holding at most `capacity` events
    /// (`capacity == 0` is clamped to 1 so `push` stays total).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing { buf: Vec::new(), capacity, head: 0, total: 0 }
    }

    /// Records an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events retained at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of events ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of events lost to overwriting: `total() - len()`.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates the retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, kind: TraceEventKind::TrtFlush }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = EventRing::new(4);
        assert!(r.is_empty());
        for c in 0..4 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [0, 1, 2, 3]);

        // Two more pushes overwrite cycles 0 and 1; order stays
        // chronological and the drop count is exact.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_without_losing_count() {
        let mut r = EventRing::new(3);
        for c in 0..1000 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 1000);
        assert_eq!(r.dropped(), 997);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [997, 998, 999]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(7));
        r.push(ev(8));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().cycle, 8);
        assert_eq!(r.dropped(), 1);
    }
}
