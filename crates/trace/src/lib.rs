//! # tarch-trace — simulated-time observability
//!
//! The evaluation of *Typed Architectures* rests on **attribution**:
//! Figures 5–10 decompose speedups into dynamic-instruction reduction,
//! branch MPKI, and cache behaviour. End-of-run counter totals can say
//! *that* a configuration is faster; this crate exists to say *where* —
//! which guest pcs the cycles land on, when the misses cluster, what the
//! decode caches and the Type Rule Table are doing over time.
//!
//! Three instruments share one [`Tracer`], driven by the core at points
//! it already visits (the crate itself depends on nothing and knows
//! nothing about the CPU):
//!
//! * a **simulated-time sampling profiler** — every
//!   [`TraceConfig::sample_period`] simulated cycles the current guest pc
//!   is recorded into a hot-PC histogram, with per-pc cache/TLB-miss
//!   attribution alongside. [`report`] renders the histogram as a table
//!   or as flamegraph-folded stacks;
//! * a **structured event stream** — block builds, decode-cache
//!   invalidations, cache/TLB misses, TRT fills/flushes, traps and
//!   `ecall`s flow through a bounded overwrite-oldest [`EventRing`]
//!   (total counts are never lost: see [`EventRing::dropped`]), and
//!   export as Chrome `trace_event` JSON ([`chrome`]) that opens
//!   directly in Perfetto or `chrome://tracing`;
//! * **metric windows** — counter deltas and structure occupancies
//!   snapshotted every [`TraceConfig::window_cycles`] cycles, pair-wise
//!   coalesced when a run outgrows [`MAX_WINDOWS`] so memory stays
//!   bounded while coverage stays complete.
//!
//! Everything is keyed to *simulated* time (the core's cycle counter),
//! so traces are deterministic: the same program and configuration
//! produce the same trace, byte for byte, regardless of host speed or
//! scheduling. Tracing is an observer only — the core's architectural
//! counters are bit-identical with tracing on or off, which
//! `tests/predecode_equiv.rs` (in the workspace root) pins across the
//! whole engine matrix.
//!
//! # Examples
//!
//! ```
//! use tarch_trace::{TraceConfig, Tracer, WindowStats, Occupancy};
//!
//! let mut t = Tracer::new(TraceConfig { sample_period: 100, ..TraceConfig::default() });
//! // The driver (normally the simulated core) announces where execution
//! // is at each block boundary; the tracer samples on period crossings.
//! for i in 0..50u64 {
//!     let pc = 0x1000 + (i % 4) * 0x10;
//!     if t.tick(pc, i * 25) {
//!         t.close_windows(i * 25, WindowStats::default(), Occupancy::default());
//!     }
//! }
//! assert!(t.total_samples() > 0);
//! let json = tarch_trace::chrome::chrome_trace(&t);
//! assert!(json.contains("traceEvents"));
//! ```

mod config;
mod profile;
mod ring;
mod tracer;

pub mod chrome;
pub mod report;

pub use config::TraceConfig;
pub use profile::{PcProfile, HOT_SHARE_DENOM};
pub use ring::{EventRing, TraceEvent, TraceEventKind};
pub use tracer::{
    HotBlock, HotPc, MetricWindow, Occupancy, PcMisses, TraceSummary, Tracer, WindowStats,
    MAX_HOT_PCS, MAX_WINDOWS,
};
