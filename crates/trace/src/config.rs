//! Tracing configuration embedded in the core's `CoreConfig`.

/// Knobs for the observability layer.
///
/// The core carries this as `CoreConfig::trace: Option<TraceConfig>`;
/// `None` means no tracer is allocated and every hook compiles down to a
/// single predictable `is_some()` branch. Because `CoreConfig`
/// participates in the runner's content-addressed job key through its
/// `Debug` rendering, every field here is part of the cache key: two
/// runs that trace differently never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sampling period in *simulated* cycles: the tracer records the
    /// current guest pc once per period. Smaller periods sharpen the
    /// hot-PC histogram but grow nothing — the histogram is keyed by pc,
    /// not by sample — so the only cost is a touch more host work per
    /// crossing. `0` is treated as `1`.
    pub sample_period: u64,
    /// Initial metric-window length in simulated cycles. Counter deltas
    /// and structure occupancies are snapshotted once per window; when a
    /// run accumulates more than [`crate::MAX_WINDOWS`] windows, adjacent
    /// pairs are merged and this length doubles, so long runs keep full
    /// coverage at bounded resolution.
    pub window_cycles: u64,
    /// Capacity of the structured-event ring. The ring overwrites its
    /// oldest entry when full; the total number of events ever recorded
    /// is kept separately, so overflow loses detail, never counts.
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Defaults tuned for the bench matrix: ~thousands of samples per
    /// cell at test scale, a handful of metric windows, and an event
    /// ring big enough to hold the interesting tail of a run.
    pub const fn new() -> TraceConfig {
        TraceConfig { sample_period: 10_000, window_cycles: 250_000, ring_capacity: 4096 }
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::new()
    }
}
