//! Rendering of aggregated opcode-pair profiles (`repro bench
//! --profile-pairs`).
//!
//! The core records adjacent same-block instruction pairs per simulated
//! cell ([`tarch_core::PairProfile`]); this module owns the cross-cell
//! aggregation report: a deterministic text histogram of the hottest
//! pairs with their share of all retired pairs and a cumulative column,
//! which is the evidence the macro-op fusion set in
//! `crates/core/src/blocks.rs` is chosen from.

use tarch_core::PairProfile;

/// Renders the top `limit` pairs of an aggregated profile as a text
/// histogram. Deterministic for a given profile (ties broken by
/// mnemonic), so CI and docs can diff it.
pub fn render_histogram(profile: &PairProfile, limit: usize) -> String {
    use std::fmt::Write;
    let total = profile.total();
    let mut out = String::new();
    let _ = writeln!(out, "adjacent same-block opcode pairs ({total} retired pairs)");
    let _ = writeln!(
        out,
        "{:>4}  {:<22} {:>14} {:>7} {:>7}",
        "#", "pair", "count", "share", "cumul"
    );
    if total == 0 {
        let _ = writeln!(out, "  (no pairs recorded)");
        return out;
    }
    let mut cumulative = 0u64;
    for (rank, (a, b, n)) in profile.sorted().into_iter().take(limit).enumerate() {
        cumulative += n;
        let _ = writeln!(
            out,
            "{:>4}  {:<22} {:>14} {:>6.2}% {:>6.2}%",
            rank + 1,
            format!("{a} + {b}"),
            n,
            n as f64 * 100.0 / total as f64,
            cumulative as f64 * 100.0 / total as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_deterministic_and_ranked() {
        let mut p = PairProfile::new();
        for _ in 0..3 {
            p.note("addi", "ld");
        }
        p.note("slt", "bne");
        let h = render_histogram(&p, 10);
        assert!(h.contains("4 retired pairs"), "{h}");
        let addi = h.find("addi + ld").unwrap();
        let slt = h.find("slt + bne").unwrap();
        assert!(addi < slt, "hotter pair must rank first:\n{h}");
        assert!(h.contains("75.00%"), "{h}");
        assert_eq!(h, render_histogram(&p, 10), "rendering must be stable");
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let h = render_histogram(&PairProfile::new(), 5);
        assert!(h.contains("no pairs recorded"), "{h}");
    }

    #[test]
    fn limit_clips_the_tail() {
        let mut p = PairProfile::new();
        p.note("a", "b");
        p.note("c", "d");
        let h = render_histogram(&p, 1);
        assert!(h.contains("a + b") ^ h.contains("c + d"), "{h}");
    }
}
