//! Versioned run artifacts: the full result matrix of one `repro`
//! invocation, serialized to a `BENCH_<timestamp>.json` file.
//!
//! Artifacts serve two purposes: figure renderers can *reload* them
//! instead of re-simulating (`repro --from-json`), and successive files
//! form a benchmark trajectory future PRs can compare against. The
//! volatile fields (creation time, per-job wall time, cache provenance)
//! live in dedicated spots so [`BenchArtifact::fingerprint`] can compare
//! two runs' *results* while ignoring *when and how fast* they ran.

use crate::job::{EngineKind, JobKey, JobSpec, Scale};
use crate::json::Json;
use crate::pool::JobOutcome;
use crate::result::CellResult;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};
use tarch_core::IsaLevel;

/// Artifact format identifier; bump on any breaking schema change.
pub const ARTIFACT_SCHEMA: &str = "tarch-bench/v1";

/// One serialized run: scale, budget, and every job outcome.
#[derive(Debug)]
pub struct BenchArtifact {
    /// Unix seconds when the artifact was created.
    pub created_unix: u64,
    /// Input scale the matrix ran at.
    pub scale: Scale,
    /// Per-job step budget in force.
    pub step_budget: u64,
    /// Host throughput of this run: simulated instructions per host
    /// microsecond (MIPS), aggregated over the jobs that actually
    /// simulated (cached jobs carry no meaningful wall time). Zero when
    /// every job was cached. Volatile — excluded from the fingerprint.
    pub host_mips: f64,
    /// Every job outcome, in matrix order.
    pub outcomes: Vec<JobOutcome>,
}

/// Aggregate host throughput in MIPS over the non-cached outcomes.
fn aggregate_mips(outcomes: &[JobOutcome]) -> f64 {
    let (instructions, nanos) = outcomes
        .iter()
        .filter(|o| !o.cached && o.wall_nanos > 0)
        .fold((0u64, 0u64), |(i, n), o| (i + o.result.counters.instructions, n + o.wall_nanos));
    if nanos == 0 { 0.0 } else { instructions as f64 * 1e3 / nanos as f64 }
}

impl BenchArtifact {
    /// Wraps a finished run, stamping the current time and computing the
    /// aggregate host throughput.
    pub fn new(scale: Scale, step_budget: u64, outcomes: Vec<JobOutcome>) -> BenchArtifact {
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let host_mips = aggregate_mips(&outcomes);
        BenchArtifact { created_unix, scale, step_budget, host_mips, outcomes }
    }

    /// Default artifact filename, `BENCH_<unix-seconds>.json`.
    pub fn default_filename(&self) -> String {
        format!("BENCH_{}.json", self.created_unix)
    }

    fn job_to_json(o: &JobOutcome) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(o.spec.workload.clone())),
            ("engine".into(), Json::str(o.spec.engine.id())),
            ("level".into(), Json::str(o.spec.level.name())),
            ("scale".into(), Json::str(o.spec.scale.id())),
            ("profiled".into(), Json::Bool(o.spec.profiled)),
            ("key".into(), Json::str(o.spec.key.hex())),
            ("cell".into(), o.result.to_json()),
            (
                "timing".into(),
                Json::Obj(vec![
                    ("cached".into(), Json::Bool(o.cached)),
                    ("wall_nanos".into(), Json::num(o.wall_nanos)),
                    ("host_mips".into(), Json::num(o.steps_per_sec() / 1e6)),
                ]),
            ),
        ])
    }

    fn job_from_json(v: &Json) -> Result<JobOutcome, String> {
        let workload = v.req_str("workload")?.to_string();
        let engine = EngineKind::parse(v.req_str("engine")?)
            .ok_or_else(|| format!("unknown engine `{}`", v.req_str("engine").unwrap()))?;
        let level = IsaLevel::parse(v.req_str("level")?)
            .ok_or_else(|| format!("unknown level `{}`", v.req_str("level").unwrap()))?;
        let scale = Scale::parse(v.req_str("scale")?)
            .ok_or_else(|| format!("unknown scale `{}`", v.req_str("scale").unwrap()))?;
        let profiled = v
            .get("profiled")
            .and_then(Json::as_bool)
            .ok_or("missing or non-boolean field `profiled`")?;
        let key = JobKey::parse(v.req_str("key")?).ok_or("malformed `key`")?;
        let result = CellResult::from_json(v.get("cell").ok_or("missing `cell`")?)?;
        let timing = v.get("timing").ok_or("missing `timing`")?;
        let cached = timing
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or("missing or non-boolean field `timing.cached`")?;
        let wall_nanos = timing.req_u64("wall_nanos")?;
        // Artifacts embed neither program source (it would balloon them)
        // nor the core configuration; the recorded key preserves cell
        // identity, so reloaded specs carry the paper core as a stand-in.
        let spec = JobSpec {
            workload,
            engine,
            level,
            scale,
            profiled,
            source: String::new(),
            core: tarch_core::CoreConfig::paper(),
            key,
        };
        Ok(JobOutcome { spec, result, cached, wall_nanos })
    }

    /// Full JSON document, including volatile timing fields.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(ARTIFACT_SCHEMA)),
            ("created_unix".into(), Json::num(self.created_unix)),
            ("scale".into(), Json::str(self.scale.id())),
            ("step_budget".into(), Json::num(self.step_budget)),
            ("host_mips".into(), Json::num(self.host_mips)),
            (
                "jobs".into(),
                Json::Arr(self.outcomes.iter().map(Self::job_to_json).collect()),
            ),
        ])
    }

    /// The result-identity portion of the artifact: everything except
    /// creation time and per-job timing/cache provenance. Two runs of the
    /// same matrix — cached or not, fast or slow — have equal
    /// fingerprints exactly when their simulated results are identical.
    pub fn fingerprint(&self) -> String {
        let jobs: Vec<Json> = self
            .outcomes
            .iter()
            .map(|o| {
                let mut j = Self::job_to_json(o);
                if let Json::Obj(fields) = &mut j {
                    fields.retain(|(k, _)| k != "timing");
                    // `sim_nanos` inside the cell is wall-clock
                    // measurement metadata, like `timing`.
                    for (k, v) in fields.iter_mut() {
                        if k == "cell" {
                            if let Json::Obj(cell) = v {
                                cell.retain(|(k, _)| k != "sim_nanos");
                            }
                        }
                    }
                }
                j
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(ARTIFACT_SCHEMA)),
            ("scale".into(), Json::str(self.scale.id())),
            ("step_budget".into(), Json::num(self.step_budget)),
            ("jobs".into(), Json::Arr(jobs)),
        ])
        .to_pretty_string()
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_pretty_string())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Reads and validates an artifact.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on I/O failure, malformed JSON, a
    /// schema mismatch, or any missing/mistyped field.
    pub fn read(path: &Path) -> Result<BenchArtifact, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let schema = doc.req_str("schema")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(format!(
                "{}: unsupported artifact schema `{schema}` (expected `{ARTIFACT_SCHEMA}`)",
                path.display()
            ));
        }
        let created_unix = doc.req_u64("created_unix")?;
        let scale = Scale::parse(doc.req_str("scale")?)
            .ok_or_else(|| format!("{}: unknown scale", path.display()))?;
        let step_budget = doc.req_u64("step_budget")?;
        // Absent in pre-host_mips artifacts; tolerate and report zero.
        let host_mips = doc.get("host_mips").and_then(Json::as_f64).unwrap_or(0.0);
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{}: missing `jobs` array", path.display()))?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            outcomes.push(
                Self::job_from_json(j).map_err(|e| format!("{} job {i}: {e}", path.display()))?,
            );
        }
        Ok(BenchArtifact { created_unix, scale, step_budget, host_mips, outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_core::{BranchStats, CoreConfig, PerfCounters};

    fn outcome(n: u64, cached: bool) -> JobOutcome {
        let spec = JobSpec::new(
            format!("w{n}"),
            EngineKind::Js,
            IsaLevel::CheckedLoad,
            Scale::Test,
            n.is_multiple_of(2),
            format!("print({n})"),
            &CoreConfig::paper(),
        );
        JobOutcome {
            spec,
            result: CellResult {
                counters: PerfCounters {
                    cycles: n * 3,
                    instructions: n * 2,
                    ..PerfCounters::default()
                },
                branch: BranchStats { branches: n, ..BranchStats::default() },
                output: format!("{n}\n"),
                bytecodes: n.is_multiple_of(2).then_some(n * 7),
                sim_nanos: 0,
                trace: None,
            },
            cached,
            wall_nanos: 1000 + n,
        }
    }

    fn write_read(a: &BenchArtifact, tag: &str) -> BenchArtifact {
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-{tag}.json", std::process::id()));
        a.write(&path).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        back
    }

    #[test]
    fn roundtrip_preserves_results_and_metadata() {
        let a = BenchArtifact::new(
            Scale::Test,
            5000,
            (0..6).map(|n| outcome(n, n > 3)).collect(),
        );
        let back = write_read(&a, "roundtrip");
        assert_eq!(back.scale, Scale::Test);
        assert_eq!(back.step_budget, 5000);
        assert_eq!(back.created_unix, a.created_unix);
        assert_eq!(back.outcomes.len(), 6);
        for (x, y) in a.outcomes.iter().zip(&back.outcomes) {
            assert_eq!(x.result, y.result);
            assert_eq!(x.spec.key, y.spec.key);
            assert_eq!(x.spec.workload, y.spec.workload);
            assert_eq!(x.spec.level, y.spec.level);
            assert_eq!(x.spec.profiled, y.spec.profiled);
            assert_eq!(x.cached, y.cached);
            assert_eq!(x.wall_nanos, y.wall_nanos);
        }
    }

    #[test]
    fn fingerprint_ignores_timing_but_not_results() {
        let a = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, false)]);
        let mut b = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, true)]);
        b.created_unix = a.created_unix + 999;
        b.outcomes[0].wall_nanos = 1;
        b.outcomes[0].result.sim_nanos = 77;
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, false)]);
        c.outcomes[0].result.counters.cycles += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn host_mips_aggregates_simulated_jobs_only() {
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(5, false), outcome(9, true)]);
        // Only the non-cached job counts: 10 instructions in 1005 ns.
        let want = 10.0 * 1e3 / 1005.0;
        assert!((a.host_mips - want).abs() < 1e-9, "{}", a.host_mips);
        let back = write_read(&a, "mips");
        assert!((back.host_mips - a.host_mips).abs() < 1e-9);
        // Throughput is volatile: two runs differing only in wall time
        // (and therefore in host_mips) fingerprint identically.
        let mut slower =
            BenchArtifact::new(Scale::Test, 100, vec![outcome(5, false), outcome(9, true)]);
        slower.outcomes[0].wall_nanos *= 17;
        slower.host_mips = aggregate_mips(&slower.outcomes);
        assert_ne!(slower.host_mips, a.host_mips);
        assert_eq!(slower.fingerprint(), a.fingerprint());
    }

    #[test]
    fn all_cached_run_has_zero_host_mips() {
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(3, true)]);
        assert_eq!(a.host_mips, 0.0);
    }

    #[test]
    fn missing_host_mips_reads_as_zero() {
        // Artifacts written before the field existed must still load.
        let a = BenchArtifact::new(Scale::Test, 1, vec![]);
        let text: String = a
            .to_json()
            .to_pretty_string()
            .lines()
            .filter(|l| !l.contains("host_mips"))
            .collect::<Vec<_>>()
            .join("\n");
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-nomips.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.host_mips, 0.0);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let a = BenchArtifact::new(Scale::Test, 1, vec![]);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-schema.json", std::process::id()));
        let text = a
            .to_json()
            .to_pretty_string()
            .replace(ARTIFACT_SCHEMA, "tarch-bench/v999");
        std::fs::write(&path, text).unwrap();
        let err = BenchArtifact::read(&path).unwrap_err();
        assert!(err.contains("v999"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_artifact_reports_clean_error() {
        let a = BenchArtifact::new(Scale::Test, 1, vec![outcome(1, false)]);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-trunc.json", std::process::id()));
        let full = a.to_json().to_pretty_string();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(BenchArtifact::read(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn default_filename_is_timestamped() {
        let a = BenchArtifact::new(Scale::Default, 1, vec![]);
        let name = a.default_filename();
        assert!(name.starts_with("BENCH_") && name.ends_with(".json"), "{name}");
    }
}
