//! Versioned run artifacts: the full result matrix of one `repro`
//! invocation, serialized to a `BENCH_<timestamp>.json` file.
//!
//! Artifacts serve two purposes: figure renderers can *reload* them
//! instead of re-simulating (`repro --from-json`), and successive files
//! form a benchmark trajectory future PRs can compare against. The
//! volatile fields (creation time, per-job wall time, cache provenance)
//! live in dedicated spots so [`BenchArtifact::fingerprint`] can compare
//! two runs' *results* while ignoring *when and how fast* they ran.

use crate::job::{EngineKind, JobKey, JobSpec, Scale};
use crate::json::Json;
use crate::pool::JobOutcome;
use crate::result::CellResult;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};
use tarch_core::IsaLevel;

/// Artifact format identifier; bump on any breaking schema change.
/// (The fleet extension is *additive* — an optional `fleet` block —
/// so it did not bump this: pre-fleet readers that ignore unknown keys
/// still load fleet artifacts, and this reader loads pre-fleet files.)
pub const ARTIFACT_SCHEMA: &str = "tarch-bench/v1";

/// Tenant-completion latency percentiles of a fleet run, in *simulated*
/// cycles of shard virtual time — deterministic for a given seed, unlike
/// wall-clock latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median completion latency.
    pub p50: u64,
    /// 95th-percentile completion latency.
    pub p95: u64,
    /// 99th-percentile (tail) completion latency.
    pub p99: u64,
}

/// Per-shard throughput row of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u64,
    /// Tenants that ran to completion on this shard.
    pub tenants_completed: u64,
    /// Simulated instructions retired across the shard's tenants.
    pub instructions: u64,
    /// Simulated cycles of shard virtual time consumed.
    pub virtual_cycles: u64,
    /// Host wall-clock nanoseconds spent executing this shard's slices.
    pub wall_nanos: u64,
}

impl ShardSummary {
    /// Host throughput of this shard in MIPS (simulated instructions per
    /// host microsecond); zero when no wall time was recorded.
    pub fn mips(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e3 / self.wall_nanos as f64
        }
    }
}

/// Summary of one `repro fleet` serving run: the scheduling shape,
/// per-shard throughput, and tenant-completion latency percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Concurrent tenant count.
    pub tenants: u64,
    /// Scheduler shard count.
    pub shards: u64,
    /// Per-tenant cycle budget per scheduling slice.
    pub budget: u64,
    /// Arrival-order / work-stealing PRNG seed.
    pub seed: u64,
    /// Whether tenants were stamped from a snapshot (`false`: each was
    /// freshly constructed, the `--fresh` baseline).
    pub snapshot_clone: bool,
    /// Wall nanoseconds to materialize all tenant VMs (clone or fresh
    /// construction — the cost the snapshot path amortizes).
    pub setup_nanos: u64,
    /// Wall nanoseconds spent in the scheduling rounds.
    pub run_nanos: u64,
    /// Completion-latency percentiles in simulated cycles.
    pub latency: LatencyPercentiles,
    /// One row per shard.
    pub shard_rows: Vec<ShardSummary>,
}

impl FleetSummary {
    /// Aggregate host throughput across shards, in MIPS.
    pub fn total_mips(&self) -> f64 {
        let instructions: u64 = self.shard_rows.iter().map(|s| s.instructions).sum();
        if self.run_nanos == 0 {
            0.0
        } else {
            instructions as f64 * 1e3 / self.run_nanos as f64
        }
    }

    /// Serializes the summary block.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tenants".into(), Json::num(self.tenants)),
            ("shards".into(), Json::num(self.shards)),
            ("budget".into(), Json::num(self.budget)),
            ("seed".into(), Json::num(self.seed)),
            ("snapshot_clone".into(), Json::Bool(self.snapshot_clone)),
            ("setup_nanos".into(), Json::num(self.setup_nanos)),
            ("run_nanos".into(), Json::num(self.run_nanos)),
            (
                "latency_cycles".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::num(self.latency.p50)),
                    ("p95".into(), Json::num(self.latency.p95)),
                    ("p99".into(), Json::num(self.latency.p99)),
                ]),
            ),
            (
                "shards_detail".into(),
                Json::Arr(
                    self.shard_rows
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("shard".into(), Json::num(s.shard)),
                                ("tenants_completed".into(), Json::num(s.tenants_completed)),
                                ("instructions".into(), Json::num(s.instructions)),
                                ("virtual_cycles".into(), Json::num(s.virtual_cycles)),
                                ("wall_nanos".into(), Json::num(s.wall_nanos)),
                                ("host_mips".into(), Json::num(s.mips())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a summary block.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for any missing/mistyped field.
    pub fn from_json(v: &Json) -> Result<FleetSummary, String> {
        let latency = v.get("latency_cycles").ok_or("missing `latency_cycles`")?;
        let latency = LatencyPercentiles {
            p50: latency.req_u64("p50")?,
            p95: latency.req_u64("p95")?,
            p99: latency.req_u64("p99")?,
        };
        let rows = v
            .get("shards_detail")
            .and_then(Json::as_arr)
            .ok_or("missing `shards_detail` array")?;
        let mut shard_rows = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            shard_rows.push(ShardSummary {
                shard: row.req_u64("shard").map_err(|e| format!("shard {i}: {e}"))?,
                tenants_completed: row
                    .req_u64("tenants_completed")
                    .map_err(|e| format!("shard {i}: {e}"))?,
                instructions: row
                    .req_u64("instructions")
                    .map_err(|e| format!("shard {i}: {e}"))?,
                virtual_cycles: row
                    .req_u64("virtual_cycles")
                    .map_err(|e| format!("shard {i}: {e}"))?,
                wall_nanos: row.req_u64("wall_nanos").map_err(|e| format!("shard {i}: {e}"))?,
            });
        }
        Ok(FleetSummary {
            tenants: v.req_u64("tenants")?,
            shards: v.req_u64("shards")?,
            budget: v.req_u64("budget")?,
            seed: v.req_u64("seed")?,
            snapshot_clone: v
                .get("snapshot_clone")
                .and_then(Json::as_bool)
                .ok_or("missing or non-boolean `snapshot_clone`")?,
            setup_nanos: v.req_u64("setup_nanos")?,
            run_nanos: v.req_u64("run_nanos")?,
            latency,
            shard_rows,
        })
    }
}

/// One workload's A/B row of a `repro pgo` run: the instrumented profile
/// phase against the optimized phase it fed.
#[derive(Debug, Clone, PartialEq)]
pub struct PgoWorkload {
    /// Workload name.
    pub workload: String,
    /// Host MIPS of the profile (instrumented) phase, summed over cells.
    pub profile_mips: f64,
    /// Host MIPS of the optimized phase over the same cells.
    pub optimized_mips: f64,
    /// Bitmask of the fused-pair classes the workload's pair histogram
    /// selected (`tarch_core::FusionTable::bits`).
    pub fusion_bits: u64,
    /// Hot pcs loaded into the optimized phase, summed over cells.
    pub hot_pcs: u64,
    /// Whether every cell's architectural counters matched the non-PGO
    /// engine bit for bit (the correctness gate; `false` fails the run).
    pub counters_identical: bool,
}

/// Summary of one `repro pgo` two-phase run.
#[derive(Debug, Clone, PartialEq)]
pub struct PgoSummary {
    /// Aggregate host MIPS of the profile phase.
    pub profile_mips: f64,
    /// Aggregate host MIPS of the optimized phase.
    pub optimized_mips: f64,
    /// One A/B row per workload.
    pub workloads: Vec<PgoWorkload>,
}

impl PgoSummary {
    /// Workloads whose optimized phase beat their profile phase.
    pub fn improved(&self) -> usize {
        self.workloads.iter().filter(|w| w.optimized_mips > w.profile_mips).count()
    }

    /// Serializes the summary block.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile_mips".into(), Json::num(self.profile_mips)),
            ("optimized_mips".into(), Json::num(self.optimized_mips)),
            (
                "workloads".into(),
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            Json::Obj(vec![
                                ("workload".into(), Json::str(w.workload.clone())),
                                ("profile_mips".into(), Json::num(w.profile_mips)),
                                ("optimized_mips".into(), Json::num(w.optimized_mips)),
                                ("fusion_bits".into(), Json::num(w.fusion_bits)),
                                ("hot_pcs".into(), Json::num(w.hot_pcs)),
                                (
                                    "counters_identical".into(),
                                    Json::Bool(w.counters_identical),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a summary block.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for any missing/mistyped field.
    pub fn from_json(v: &Json) -> Result<PgoSummary, String> {
        let rows =
            v.get("workloads").and_then(Json::as_arr).ok_or("missing `workloads` array")?;
        let mut workloads = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let err = |e| format!("workload {i}: {e}");
            workloads.push(PgoWorkload {
                workload: row.req_str("workload").map_err(err)?.to_string(),
                profile_mips: row
                    .get("profile_mips")
                    .and_then(Json::as_f64)
                    .ok_or("missing `profile_mips`")
                    .map_err(|e| format!("workload {i}: {e}"))?,
                optimized_mips: row
                    .get("optimized_mips")
                    .and_then(Json::as_f64)
                    .ok_or("missing `optimized_mips`")
                    .map_err(|e| format!("workload {i}: {e}"))?,
                fusion_bits: row.req_u64("fusion_bits").map_err(|e| format!("workload {i}: {e}"))?,
                hot_pcs: row.req_u64("hot_pcs").map_err(|e| format!("workload {i}: {e}"))?,
                counters_identical: row
                    .get("counters_identical")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("workload {i}: missing `counters_identical`"))?,
            });
        }
        Ok(PgoSummary {
            profile_mips: v
                .get("profile_mips")
                .and_then(Json::as_f64)
                .ok_or("missing `profile_mips`")?,
            optimized_mips: v
                .get("optimized_mips")
                .and_then(Json::as_f64)
                .ok_or("missing `optimized_mips`")?,
            workloads,
        })
    }
}

/// One serialized run: scale, budget, and every job outcome.
#[derive(Debug)]
pub struct BenchArtifact {
    /// Unix seconds when the artifact was created.
    pub created_unix: u64,
    /// Input scale the matrix ran at.
    pub scale: Scale,
    /// Per-job step budget in force.
    pub step_budget: u64,
    /// Host throughput of this run: simulated instructions per host
    /// microsecond (MIPS), aggregated over the jobs that actually
    /// simulated (cached jobs carry no meaningful wall time). Zero when
    /// every job was cached. Volatile — excluded from the fingerprint.
    pub host_mips: f64,
    /// Every job outcome, in matrix order.
    pub outcomes: Vec<JobOutcome>,
    /// Fleet-serving summary when the artifact came from `repro fleet`;
    /// `None` for matrix runs and for pre-fleet artifacts (the field is
    /// tolerated-absent on read, so old baselines keep loading).
    pub fleet: Option<FleetSummary>,
    /// PGO A/B summary when the artifact came from `repro pgo`; `None`
    /// otherwise. Additive like `fleet`: tolerated-absent on read and
    /// excluded from the fingerprint.
    pub pgo: Option<PgoSummary>,
}

/// Aggregate host throughput in MIPS over the non-cached outcomes.
fn aggregate_mips(outcomes: &[JobOutcome]) -> f64 {
    let (instructions, nanos) = outcomes
        .iter()
        .filter(|o| !o.cached && o.wall_nanos > 0)
        .fold((0u64, 0u64), |(i, n), o| (i + o.result.counters.instructions, n + o.wall_nanos));
    if nanos == 0 { 0.0 } else { instructions as f64 * 1e3 / nanos as f64 }
}

impl BenchArtifact {
    /// Wraps a finished run, stamping the current time and computing the
    /// aggregate host throughput.
    pub fn new(scale: Scale, step_budget: u64, outcomes: Vec<JobOutcome>) -> BenchArtifact {
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let host_mips = aggregate_mips(&outcomes);
        BenchArtifact {
            created_unix,
            scale,
            step_budget,
            host_mips,
            outcomes,
            fleet: None,
            pgo: None,
        }
    }

    /// Default artifact filename, `BENCH_<unix-seconds>.json`.
    pub fn default_filename(&self) -> String {
        format!("BENCH_{}.json", self.created_unix)
    }

    fn job_to_json(o: &JobOutcome) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(o.spec.workload.clone())),
            ("engine".into(), Json::str(o.spec.engine.id())),
            ("level".into(), Json::str(o.spec.level.name())),
            ("scale".into(), Json::str(o.spec.scale.id())),
            ("profiled".into(), Json::Bool(o.spec.profiled)),
            ("key".into(), Json::str(o.spec.key.hex())),
            ("cell".into(), o.result.to_json()),
            (
                "timing".into(),
                Json::Obj(vec![
                    ("cached".into(), Json::Bool(o.cached)),
                    ("wall_nanos".into(), Json::num(o.wall_nanos)),
                    ("host_mips".into(), Json::num(o.steps_per_sec() / 1e6)),
                ]),
            ),
        ])
    }

    fn job_from_json(v: &Json) -> Result<JobOutcome, String> {
        let workload = v.req_str("workload")?.to_string();
        let engine = EngineKind::parse(v.req_str("engine")?)
            .ok_or_else(|| format!("unknown engine `{}`", v.req_str("engine").unwrap()))?;
        let level = IsaLevel::parse(v.req_str("level")?)
            .ok_or_else(|| format!("unknown level `{}`", v.req_str("level").unwrap()))?;
        let scale = Scale::parse(v.req_str("scale")?)
            .ok_or_else(|| format!("unknown scale `{}`", v.req_str("scale").unwrap()))?;
        let profiled = v
            .get("profiled")
            .and_then(Json::as_bool)
            .ok_or("missing or non-boolean field `profiled`")?;
        let key = JobKey::parse(v.req_str("key")?).ok_or("malformed `key`")?;
        let result = CellResult::from_json(v.get("cell").ok_or("missing `cell`")?)?;
        let timing = v.get("timing").ok_or("missing `timing`")?;
        let cached = timing
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or("missing or non-boolean field `timing.cached`")?;
        let wall_nanos = timing.req_u64("wall_nanos")?;
        // Artifacts embed neither program source (it would balloon them)
        // nor the core configuration; the recorded key preserves cell
        // identity, so reloaded specs carry the paper core as a stand-in.
        let spec = JobSpec {
            workload,
            engine,
            level,
            scale,
            profiled,
            source: String::new(),
            core: tarch_core::CoreConfig::paper(),
            key,
        };
        Ok(JobOutcome { spec, result, cached, wall_nanos })
    }

    /// Full JSON document, including volatile timing fields.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::str(ARTIFACT_SCHEMA)),
            ("created_unix".into(), Json::num(self.created_unix)),
            ("scale".into(), Json::str(self.scale.id())),
            ("step_budget".into(), Json::num(self.step_budget)),
            ("host_mips".into(), Json::num(self.host_mips)),
            (
                "jobs".into(),
                Json::Arr(self.outcomes.iter().map(Self::job_to_json).collect()),
            ),
        ];
        if let Some(fleet) = &self.fleet {
            fields.push(("fleet".into(), fleet.to_json()));
        }
        if let Some(pgo) = &self.pgo {
            fields.push(("pgo".into(), pgo.to_json()));
        }
        Json::Obj(fields)
    }

    /// The result-identity portion of the artifact: everything except
    /// creation time and per-job timing/cache provenance. Two runs of the
    /// same matrix — cached or not, fast or slow — have equal
    /// fingerprints exactly when their simulated results are identical.
    pub fn fingerprint(&self) -> String {
        let jobs: Vec<Json> = self
            .outcomes
            .iter()
            .map(|o| {
                let mut j = Self::job_to_json(o);
                if let Json::Obj(fields) = &mut j {
                    fields.retain(|(k, _)| k != "timing");
                    // `sim_nanos` inside the cell is wall-clock
                    // measurement metadata, like `timing`.
                    for (k, v) in fields.iter_mut() {
                        if k == "cell" {
                            if let Json::Obj(cell) = v {
                                cell.retain(|(k, _)| k != "sim_nanos");
                            }
                        }
                    }
                }
                j
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(ARTIFACT_SCHEMA)),
            ("scale".into(), Json::str(self.scale.id())),
            ("step_budget".into(), Json::num(self.step_budget)),
            ("jobs".into(), Json::Arr(jobs)),
        ])
        .to_pretty_string()
    }

    /// Writes the artifact to `path` via a sibling temp file + atomic
    /// rename, so a reader (CI gates polling `bench-artifacts/`, a
    /// concurrent `--compare`) never observes a torn document — the same
    /// discipline as [`ResultCache::store`](crate::ResultCache::store).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        // Process id + per-process counter: unique even across threads
        // of one process racing the same destination.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&tmp, self.to_json().to_pretty_string())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
    }

    /// Reads and validates an artifact.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on I/O failure, malformed JSON, a
    /// schema mismatch, or any missing/mistyped field.
    pub fn read(path: &Path) -> Result<BenchArtifact, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let schema = doc.req_str("schema")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(format!(
                "{}: unsupported artifact schema `{schema}` (expected `{ARTIFACT_SCHEMA}`)",
                path.display()
            ));
        }
        let created_unix = doc.req_u64("created_unix")?;
        let scale = Scale::parse(doc.req_str("scale")?)
            .ok_or_else(|| format!("{}: unknown scale", path.display()))?;
        let step_budget = doc.req_u64("step_budget")?;
        // Absent in pre-host_mips artifacts; tolerate and report zero.
        let host_mips = doc.get("host_mips").and_then(Json::as_f64).unwrap_or(0.0);
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{}: missing `jobs` array", path.display()))?;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            outcomes.push(
                Self::job_from_json(j).map_err(|e| format!("{} job {i}: {e}", path.display()))?,
            );
        }
        // Absent in matrix runs and every pre-fleet artifact.
        let fleet = match doc.get("fleet") {
            Some(block) => {
                Some(FleetSummary::from_json(block).map_err(|e| {
                    format!("{} fleet block: {e}", path.display())
                })?)
            }
            None => None,
        };
        // Absent in everything but `repro pgo` artifacts.
        let pgo = match doc.get("pgo") {
            Some(block) => Some(
                PgoSummary::from_json(block)
                    .map_err(|e| format!("{} pgo block: {e}", path.display()))?,
            ),
            None => None,
        };
        Ok(BenchArtifact { created_unix, scale, step_budget, host_mips, outcomes, fleet, pgo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_core::{BranchStats, CoreConfig, PerfCounters};

    fn outcome(n: u64, cached: bool) -> JobOutcome {
        let spec = JobSpec::new(
            format!("w{n}"),
            EngineKind::Js,
            IsaLevel::CheckedLoad,
            Scale::Test,
            n.is_multiple_of(2),
            format!("print({n})"),
            &CoreConfig::paper(),
        );
        JobOutcome {
            spec,
            result: CellResult {
                counters: PerfCounters {
                    cycles: n * 3,
                    instructions: n * 2,
                    ..PerfCounters::default()
                },
                branch: BranchStats { branches: n, ..BranchStats::default() },
                output: format!("{n}\n"),
                bytecodes: n.is_multiple_of(2).then_some(n * 7),
                sim_nanos: 0,
                trace: None,
            },
            cached,
            wall_nanos: 1000 + n,
        }
    }

    fn write_read(a: &BenchArtifact, tag: &str) -> BenchArtifact {
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-{tag}.json", std::process::id()));
        a.write(&path).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        back
    }

    #[test]
    fn roundtrip_preserves_results_and_metadata() {
        let a = BenchArtifact::new(
            Scale::Test,
            5000,
            (0..6).map(|n| outcome(n, n > 3)).collect(),
        );
        let back = write_read(&a, "roundtrip");
        assert_eq!(back.scale, Scale::Test);
        assert_eq!(back.step_budget, 5000);
        assert_eq!(back.created_unix, a.created_unix);
        assert_eq!(back.outcomes.len(), 6);
        for (x, y) in a.outcomes.iter().zip(&back.outcomes) {
            assert_eq!(x.result, y.result);
            assert_eq!(x.spec.key, y.spec.key);
            assert_eq!(x.spec.workload, y.spec.workload);
            assert_eq!(x.spec.level, y.spec.level);
            assert_eq!(x.spec.profiled, y.spec.profiled);
            assert_eq!(x.cached, y.cached);
            assert_eq!(x.wall_nanos, y.wall_nanos);
        }
    }

    #[test]
    fn fingerprint_ignores_timing_but_not_results() {
        let a = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, false)]);
        let mut b = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, true)]);
        b.created_unix = a.created_unix + 999;
        b.outcomes[0].wall_nanos = 1;
        b.outcomes[0].result.sim_nanos = 77;
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = BenchArtifact::new(Scale::Test, 5000, vec![outcome(1, false)]);
        c.outcomes[0].result.counters.cycles += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn host_mips_aggregates_simulated_jobs_only() {
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(5, false), outcome(9, true)]);
        // Only the non-cached job counts: 10 instructions in 1005 ns.
        let want = 10.0 * 1e3 / 1005.0;
        assert!((a.host_mips - want).abs() < 1e-9, "{}", a.host_mips);
        let back = write_read(&a, "mips");
        assert!((back.host_mips - a.host_mips).abs() < 1e-9);
        // Throughput is volatile: two runs differing only in wall time
        // (and therefore in host_mips) fingerprint identically.
        let mut slower =
            BenchArtifact::new(Scale::Test, 100, vec![outcome(5, false), outcome(9, true)]);
        slower.outcomes[0].wall_nanos *= 17;
        slower.host_mips = aggregate_mips(&slower.outcomes);
        assert_ne!(slower.host_mips, a.host_mips);
        assert_eq!(slower.fingerprint(), a.fingerprint());
    }

    #[test]
    fn all_cached_run_has_zero_host_mips() {
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(3, true)]);
        assert_eq!(a.host_mips, 0.0);
    }

    #[test]
    fn missing_host_mips_reads_as_zero() {
        // Artifacts written before the field existed must still load.
        let a = BenchArtifact::new(Scale::Test, 1, vec![]);
        let text: String = a
            .to_json()
            .to_pretty_string()
            .lines()
            .filter(|l| !l.contains("host_mips"))
            .collect::<Vec<_>>()
            .join("\n");
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-nomips.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.host_mips, 0.0);
    }

    fn fleet_summary(tenants: u64) -> FleetSummary {
        FleetSummary {
            tenants,
            shards: 2,
            budget: 50_000,
            seed: 42,
            snapshot_clone: true,
            setup_nanos: 1_000,
            run_nanos: 9_000,
            latency: LatencyPercentiles { p50: 100, p95: 200, p99: 300 },
            shard_rows: vec![
                ShardSummary {
                    shard: 0,
                    tenants_completed: tenants / 2,
                    instructions: 5_000,
                    virtual_cycles: 7_000,
                    wall_nanos: 4_000,
                },
                ShardSummary {
                    shard: 1,
                    tenants_completed: tenants - tenants / 2,
                    instructions: 6_000,
                    virtual_cycles: 8_000,
                    wall_nanos: 5_000,
                },
            ],
        }
    }

    #[test]
    fn fleet_block_roundtrips() {
        let mut a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        a.fleet = Some(fleet_summary(16));
        let back = write_read(&a, "fleet");
        assert_eq!(back.fleet, a.fleet);
        let f = back.fleet.unwrap();
        assert_eq!(f.latency.p99, 300);
        assert!(f.total_mips() > 0.0);
        assert!(f.shard_rows[0].mips() > 0.0);
    }

    #[test]
    fn fleet_block_is_tolerated_absent() {
        // Matrix artifacts (and every pre-fleet baseline) carry no
        // `fleet` key; they must keep loading unchanged.
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        let back = write_read(&a, "nofleet");
        assert!(back.fleet.is_none());
    }

    #[test]
    fn unknown_extra_fields_are_ignored() {
        // A future artifact with additional top-level, per-job, and
        // fleet-block fields must load on this reader (forward
        // tolerance, mirroring the pre-fleet readers this PR must not
        // break backward).
        let mut a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        a.fleet = Some(fleet_summary(4));
        let text = a.to_json().to_pretty_string();
        // Splice unknown keys into each object by piggybacking on
        // distinctive existing lines.
        let text = text
            .replacen("\"schema\"", "\"future_field\": [1, 2], \"schema\"", 1)
            .replacen("\"workload\"", "\"job_extra\": {\"x\": true}, \"workload\"", 1)
            .replacen("\"tenants\"", "\"fleet_extra\": \"y\", \"tenants\"", 1);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-extra.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.outcomes.len(), 1);
        assert_eq!(back.fleet, a.fleet);
    }

    #[test]
    fn fleet_block_does_not_perturb_fingerprint() {
        // The fingerprint compares matrix results; two runs differing
        // only in an attached fleet summary stay equal.
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        let mut b = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        b.created_unix = a.created_unix;
        b.fleet = Some(fleet_summary(8));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    fn pgo_summary() -> PgoSummary {
        PgoSummary {
            profile_mips: 50.0,
            optimized_mips: 75.0,
            workloads: vec![
                PgoWorkload {
                    workload: "fibo".into(),
                    profile_mips: 20.0,
                    optimized_mips: 35.0,
                    fusion_bits: 0x1fff,
                    hot_pcs: 12,
                    counters_identical: true,
                },
                PgoWorkload {
                    workload: "n-sieve".into(),
                    profile_mips: 30.0,
                    optimized_mips: 40.0,
                    fusion_bits: 0x0003,
                    hot_pcs: 7,
                    counters_identical: true,
                },
            ],
        }
    }

    #[test]
    fn pgo_block_roundtrips() {
        let mut a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        a.pgo = Some(pgo_summary());
        let back = write_read(&a, "pgo");
        assert_eq!(back.pgo, a.pgo);
        assert_eq!(back.pgo.unwrap().improved(), 2);
    }

    #[test]
    fn pgo_block_is_tolerated_absent() {
        // Matrix/fleet artifacts (and every pre-PGO baseline) carry no
        // `pgo` key; they must keep loading unchanged.
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        let back = write_read(&a, "nopgo");
        assert!(back.pgo.is_none());
    }

    #[test]
    fn pgo_block_does_not_perturb_fingerprint() {
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        let mut b = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        b.created_unix = a.created_unix;
        b.pgo = Some(pgo_summary());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn pgo_block_with_unknown_extra_fields_loads() {
        let mut a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        a.pgo = Some(pgo_summary());
        let text = a
            .to_json()
            .to_pretty_string()
            .replacen("\"profile_mips\"", "\"pgo_extra\": 9, \"profile_mips\"", 1);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-pgoextra.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let back = BenchArtifact::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.pgo, a.pgo);
    }

    #[test]
    fn write_is_atomic_under_racing_writers() {
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-atomic.json", std::process::id()));
        let a = BenchArtifact::new(Scale::Test, 100, vec![outcome(1, false)]);
        let mut b = BenchArtifact::new(Scale::Test, 100, (0..4).map(|n| outcome(n, false)).collect());
        b.created_unix = a.created_unix;
        a.write(&path).unwrap();
        let path = &path;
        let (a, b) = (&a, &b);
        std::thread::scope(|scope| {
            for art in [a, b] {
                scope.spawn(move || {
                    for _ in 0..100 {
                        art.write(path).unwrap();
                    }
                });
            }
            for _ in 0..200 {
                let seen = BenchArtifact::read(path).expect("never torn");
                assert!(seen.outcomes.len() == 1 || seen.outcomes.len() == 4);
            }
        });
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let a = BenchArtifact::new(Scale::Test, 1, vec![]);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-schema.json", std::process::id()));
        let text = a
            .to_json()
            .to_pretty_string()
            .replace(ARTIFACT_SCHEMA, "tarch-bench/v999");
        std::fs::write(&path, text).unwrap();
        let err = BenchArtifact::read(&path).unwrap_err();
        assert!(err.contains("v999"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_artifact_reports_clean_error() {
        let a = BenchArtifact::new(Scale::Test, 1, vec![outcome(1, false)]);
        let path = std::env::temp_dir()
            .join(format!("tarch-artifact-test-{}-trunc.json", std::process::id()));
        let full = a.to_json().to_pretty_string();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(BenchArtifact::read(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn default_filename_is_timestamped() {
        let a = BenchArtifact::new(Scale::Default, 1, vec![]);
        let name = a.default_filename();
        assert!(name.starts_with("BENCH_") && name.ends_with(".json"), "{name}");
    }
}
