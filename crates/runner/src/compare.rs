//! Host-throughput comparison between two bench artifacts.
//!
//! A benchmark PR claims "this run is no slower than that one"; this
//! module turns the claim into data. [`compare`] matches the cells of a
//! current run against a baseline artifact by cell identity (workload,
//! engine, ISA level, scale) and reports per-cell and aggregate
//! `host_mips` ratios. Cells present on only one side are listed rather
//! than silently dropped, so a shrunk matrix cannot masquerade as a
//! speedup. Cached cells carry no meaningful wall time and are excluded,
//! mirroring the aggregate `host_mips` definition in [`crate::artifact`].

use crate::artifact::BenchArtifact;
use crate::pool::JobOutcome;
use std::collections::HashMap;

/// Host-throughput delta of one matrix cell present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Workload name.
    pub workload: String,
    /// Engine id (`lua` / `js`).
    pub engine: String,
    /// ISA level name.
    pub level: String,
    /// Baseline host throughput, MIPS.
    pub base_mips: f64,
    /// Current host throughput, MIPS.
    pub cur_mips: f64,
}

impl CellDelta {
    /// Current / baseline throughput. Infinite when the baseline cell
    /// recorded zero throughput.
    pub fn ratio(&self) -> f64 {
        if self.base_mips == 0.0 { f64::INFINITY } else { self.cur_mips / self.base_mips }
    }
}

/// Result of comparing a current run against a baseline artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Cells simulated (not cached) in both runs, in current-run order.
    pub cells: Vec<CellDelta>,
    /// Cell names present only in the baseline run.
    pub only_base: Vec<String>,
    /// Cell names present only in the current run.
    pub only_current: Vec<String>,
    /// Baseline aggregate host throughput, MIPS.
    pub base_aggregate: f64,
    /// Current aggregate host throughput, MIPS.
    pub cur_aggregate: f64,
}

impl Comparison {
    /// Aggregate current / baseline throughput. Infinite when the
    /// baseline aggregate is zero (e.g. a fully cached baseline run).
    pub fn aggregate_ratio(&self) -> f64 {
        if self.base_aggregate == 0.0 {
            f64::INFINITY
        } else {
            self.cur_aggregate / self.base_aggregate
        }
    }

    /// Whether the aggregate throughput clears `min_ratio` × baseline.
    pub fn passes(&self, min_ratio: f64) -> bool {
        self.aggregate_ratio() >= min_ratio
    }
}

/// Identity of a cell for cross-run matching: spec fields only, never
/// the content key (the key hashes source and core configuration, which
/// legitimately change between the runs being compared).
fn cell_name(o: &JobOutcome) -> String {
    format!(
        "{}/{}/{}/{}{}",
        o.spec.workload,
        o.spec.engine.id(),
        o.spec.level.name(),
        o.spec.scale.id(),
        if o.spec.profiled { "/profiled" } else { "" },
    )
}

fn measured(o: &JobOutcome) -> bool {
    !o.cached && o.wall_nanos > 0
}

/// Matches `current` against `baseline` cell-by-cell.
///
/// Only cells that actually simulated on both sides produce a
/// [`CellDelta`]; everything else lands in `only_base` / `only_current`.
pub fn compare(baseline: &BenchArtifact, current: &BenchArtifact) -> Comparison {
    let base: HashMap<String, &JobOutcome> = baseline
        .outcomes
        .iter()
        .filter(|o| measured(o))
        .map(|o| (cell_name(o), o))
        .collect();
    let mut cells = Vec::new();
    let mut only_current = Vec::new();
    let mut seen = Vec::new();
    for o in current.outcomes.iter().filter(|o| measured(o)) {
        let name = cell_name(o);
        match base.get(&name) {
            Some(b) => {
                seen.push(name);
                cells.push(CellDelta {
                    workload: o.spec.workload.clone(),
                    engine: o.spec.engine.id().to_string(),
                    level: o.spec.level.name().to_string(),
                    base_mips: b.steps_per_sec() / 1e6,
                    cur_mips: o.steps_per_sec() / 1e6,
                });
            }
            None => only_current.push(name),
        }
    }
    let mut only_base: Vec<String> =
        base.keys().filter(|k| !seen.contains(k)).cloned().collect();
    only_base.sort();
    Comparison {
        cells,
        only_base,
        only_current,
        base_aggregate: baseline.host_mips,
        cur_aggregate: current.host_mips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineKind, JobSpec, Scale};
    use crate::result::CellResult;
    use tarch_core::{CoreConfig, IsaLevel, PerfCounters};

    fn outcome(workload: &str, instructions: u64, wall_nanos: u64, cached: bool) -> JobOutcome {
        let spec = JobSpec::new(
            workload.to_string(),
            EngineKind::Lua,
            IsaLevel::Typed,
            Scale::Test,
            false,
            format!("-- {workload}"),
            &CoreConfig::paper(),
        );
        JobOutcome {
            spec,
            result: CellResult {
                counters: PerfCounters { instructions, ..PerfCounters::default() },
                branch: Default::default(),
                output: String::new(),
                bytecodes: None,
                sim_nanos: 0,
                trace: None,
            },
            cached,
            wall_nanos,
        }
    }

    fn artifact(outcomes: Vec<JobOutcome>) -> BenchArtifact {
        BenchArtifact::new(Scale::Test, 1000, outcomes)
    }

    #[test]
    fn matches_cells_and_computes_ratios() {
        // Baseline: 1000 instrs in 1000 ns = 1000 MIPS. Current: twice
        // as fast on the same cell.
        let base = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        let cur = artifact(vec![outcome("fibo", 1000, 500, false)]);
        let c = compare(&base, &cur);
        assert_eq!(c.cells.len(), 1);
        assert!((c.cells[0].ratio() - 2.0).abs() < 1e-9, "{}", c.cells[0].ratio());
        assert!((c.aggregate_ratio() - 2.0).abs() < 1e-9);
        assert!(c.passes(1.9) && !c.passes(2.1));
        assert!(c.only_base.is_empty() && c.only_current.is_empty());
    }

    #[test]
    fn unmatched_cells_are_reported_not_dropped() {
        let base = artifact(vec![
            outcome("fibo", 100, 100, false),
            outcome("n-sieve", 100, 100, false),
        ]);
        let cur = artifact(vec![
            outcome("fibo", 100, 100, false),
            outcome("spectral-norm", 100, 100, false),
        ]);
        let c = compare(&base, &cur);
        assert_eq!(c.cells.len(), 1);
        assert_eq!(c.only_base, vec!["n-sieve/lua/typed/test".to_string()]);
        assert_eq!(c.only_current, vec!["spectral-norm/lua/typed/test".to_string()]);
    }

    #[test]
    fn cached_cells_do_not_participate() {
        let base = artifact(vec![outcome("fibo", 100, 100, false)]);
        let cur = artifact(vec![outcome("fibo", 100, 100, true)]);
        let c = compare(&base, &cur);
        assert!(c.cells.is_empty());
        assert_eq!(c.only_base.len(), 1);
        // A fully cached current run has zero aggregate and fails any
        // positive threshold.
        assert_eq!(c.cur_aggregate, 0.0);
        assert!(!c.passes(0.1));
    }

    #[test]
    fn cell_missing_in_candidate_lands_in_only_base() {
        // A candidate run that silently dropped a cell must not pretend
        // the matrix matched: the missing cell is named, the matched cell
        // still produces a delta, and the gate still runs on aggregates.
        let base = artifact(vec![
            outcome("fibo", 1000, 1000, false),
            outcome("n-sieve", 1000, 3000, false), // the slow cell
        ]);
        let cur = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        let c = compare(&base, &cur);
        assert_eq!(c.cells.len(), 1);
        assert_eq!(c.only_base, vec!["n-sieve/lua/typed/test".to_string()]);
        assert!(c.only_current.is_empty());
        // The aggregate is a rate (total instructions / total time), so
        // dropping the slow cell *inflates* the ratio — 1000 MIPS over
        // 500 — and the gate alone would wave the run through. That is
        // precisely why `only_base` must be surfaced alongside it.
        assert!((c.aggregate_ratio() - 2.0).abs() < 1e-9, "{}", c.aggregate_ratio());
        assert!(c.passes(0.7));
    }

    #[test]
    fn zero_mips_cells_produce_extreme_not_nan_ratios() {
        // A baseline cell that retired zero instructions (0 MIPS) makes
        // the per-cell ratio infinite, never NaN; the mirror-image cell
        // in the candidate yields a plain 0.
        let base = artifact(vec![outcome("fibo", 0, 1000, false)]);
        let cur = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        let c = compare(&base, &cur);
        assert_eq!(c.cells.len(), 1);
        assert_eq!(c.cells[0].base_mips, 0.0);
        assert!(c.cells[0].ratio().is_infinite());
        let flipped = compare(&cur, &base);
        assert_eq!(flipped.cells[0].ratio(), 0.0);
    }

    #[test]
    fn absent_host_mips_gates_like_zero() {
        // Pre-host_mips artifacts load with `host_mips: 0.0`. As the
        // baseline that is "no throughput claim" (gate passes); as the
        // candidate it reads as a total stall and fails any positive bar.
        let mut old = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        old.host_mips = 0.0;
        let cur = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        assert!(compare(&old, &cur).passes(0.7));
        assert!(!compare(&cur, &old).passes(0.7));
    }

    #[test]
    fn aggregate_ratio_exactly_at_threshold_passes() {
        // The gate is `>=`: a ratio that lands exactly on the configured
        // minimum passes, and one just below it fails. 1700/2000 rounds
        // to the same double as the literal 0.85 the CLI parses.
        let base = artifact(vec![outcome("fibo", 1000, 500, false)]);
        let cur = artifact(vec![outcome("fibo", 1700, 1000, false)]);
        let c = compare(&base, &cur);
        assert_eq!(c.aggregate_ratio(), 0.85);
        assert!(c.passes(0.85));
        assert!(!c.passes(0.8500001));
    }

    #[test]
    fn zero_baseline_aggregate_always_passes() {
        // A fully cached baseline carries no throughput claim; gating
        // against it must not spuriously fail.
        let base = artifact(vec![outcome("fibo", 100, 100, true)]);
        let cur = artifact(vec![outcome("fibo", 100, 100, false)]);
        let c = compare(&base, &cur);
        assert_eq!(c.base_aggregate, 0.0);
        assert!(c.aggregate_ratio().is_infinite());
        assert!(c.passes(0.7));
    }

    #[test]
    fn content_key_drift_does_not_break_matching() {
        // KEY_SCHEMA bumps (2 → 3 with the fleet subsystem) change every
        // cell's content key; cross-run matching is by cell *name*, so a
        // pre-fleet baseline still matches the same cells.
        let base = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        let mut cur = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        cur.outcomes[0].spec.key = crate::job::JobKey(0xdead, 0xbeef);
        assert_ne!(base.outcomes[0].spec.key, cur.outcomes[0].spec.key);
        let c = compare(&base, &cur);
        assert_eq!(c.cells.len(), 1, "cell must match despite the key drift");
        assert!(c.only_base.is_empty() && c.only_current.is_empty());
        assert!((c.aggregate_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_block_is_inert_in_comparison() {
        // `--compare` of a fleet-era artifact against a pre-fleet
        // baseline (or vice versa): the optional fleet block never
        // participates in cell matching or the aggregate gate.
        use crate::artifact::{FleetSummary, LatencyPercentiles};
        let base = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        let mut cur = artifact(vec![outcome("fibo", 1000, 1000, false)]);
        cur.fleet = Some(FleetSummary {
            tenants: 16,
            shards: 2,
            budget: 50_000,
            seed: 0,
            snapshot_clone: true,
            setup_nanos: 1,
            run_nanos: 1,
            latency: LatencyPercentiles { p50: 1, p95: 2, p99: 3 },
            shard_rows: Vec::new(),
        });
        let with_fleet = compare(&base, &cur);
        cur.fleet = None;
        let without = compare(&base, &cur);
        assert_eq!(with_fleet, without);
        assert!(with_fleet.passes(0.99));
    }
}
