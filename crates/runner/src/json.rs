//! Minimal JSON reader/writer.
//!
//! The cache files and `BENCH_*.json` artifacts are plain JSON, but the
//! workspace must build with no registry access, so this is a small
//! hand-rolled implementation instead of serde. Two properties matter
//! here beyond correctness:
//!
//! * **lossless integers** — performance counters are `u64` values that
//!   can exceed 2^53, so numbers keep their raw decimal text
//!   ([`Json::Num`]) and are converted on access;
//! * **deterministic output** — objects preserve insertion order, so the
//!   same data always serializes to the same bytes (cache round-trip
//!   tests compare artifacts textually).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw decimal text (lossless for `u64`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys not merged.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number value from anything displayable as a number.
    pub fn num(v: impl ToString) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as `u64` (exact), if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required typed field accessors for deserializers: descriptive
    /// errors beat `Option` chains at call sites.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// Required string field.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate by parsing as f64 (covers every JSON number form).
        text.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("fibo\n\"quoted\"")),
            ("count".into(), Json::num(20_000_000_000u64)),
            ("neg".into(), Json::num(-42)),
            ("pi".into(), Json::num(3.25)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("items".into(), Json::Arr(vec![Json::num(1), Json::str("x"), Json::Arr(vec![])])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn u64_is_lossless_beyond_2_53() {
        let v = u64::MAX - 1;
        let doc = Json::Obj(vec![("big".into(), Json::num(v))]);
        let back = Json::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(back.req_u64("big").unwrap(), v);
    }

    #[test]
    fn deterministic_serialization() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::num(1)),
            ("a".into(), Json::num(2)),
        ]);
        assert_eq!(doc.to_pretty_string(), doc.clone().to_pretty_string());
        // Insertion order preserved, not sorted.
        assert!(doc.to_pretty_string().find("\"b\"").unwrap()
            < doc.to_pretty_string().find("\"a\"").unwrap());
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("{}x").unwrap_err().contains("trailing"));
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "tab\t nl\n cr\r quote\" backslash\\ unicode✓ ctrl\u{1}";
        let doc = Json::Str(s.to_string());
        let back = Json::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": "x", "c": [true, null], "d": 1.5}"#).unwrap();
        assert_eq!(doc.req_u64("a").unwrap(), 1);
        assert_eq!(doc.req_str("b").unwrap(), "x");
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap()[0].as_bool(), Some(true));
        assert_eq!(doc.get("d").unwrap().as_f64(), Some(1.5));
        assert!(doc.req_u64("missing").is_err());
        assert!(doc.req_u64("b").is_err());
    }
}
