//! The worker pool: parallel job execution with deterministic result
//! ordering, cache integration, and run statistics.
//!
//! Built on `std::thread::scope` + `mpsc`: workers claim job indices
//! from an atomic counter (dynamic load balancing — simulation cells
//! vary by orders of magnitude in length), send `(index, outcome)` pairs
//! back, and the collector reassembles results in submission order, so a
//! parallel run is observationally identical to the serial one.

use crate::cache::ResultCache;
use crate::job::JobSpec;
use crate::result::CellResult;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Default per-job step budget (generous; `Scale::Full` workloads are
/// large). A cell that exhausts it is reported as wedged — see
/// [`RunnerError::StepBudget`] — instead of silently stalling the run.
pub const DEFAULT_STEP_BUDGET: u64 = 20_000_000_000;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker thread count; `0` means one per available core.
    pub workers: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-job simulated-step budget (the run's timeout unit: simulated
    /// instructions, not wall-clock, so budgets are deterministic).
    pub step_budget: u64,
    /// Emit a live progress line to stderr.
    pub progress: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            workers: 0,
            cache_dir: None,
            step_budget: DEFAULT_STEP_BUDGET,
            progress: false,
        }
    }
}

impl RunConfig {
    /// Resolves `workers == 0` to the machine's available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// How one job's execution failed, as reported by the exec closure.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// The simulation consumed its whole step budget without halting.
    StepBudget {
        /// Simulated instructions consumed (== the budget).
        steps: u64,
    },
    /// Any other engine failure (parse error, runtime error, …).
    Failed(String),
}

/// A pool-level failure, tagged with the cell it came from.
#[derive(Debug, Clone)]
pub enum RunnerError {
    /// A cell's simulation failed.
    Cell {
        /// `workload/engine/level` label.
        label: String,
        /// Engine error text.
        detail: String,
    },
    /// A cell consumed its entire step budget — the parallel-run
    /// equivalent of a hung job. Names the cell and the steps consumed
    /// so a full-scale run can't wedge silently.
    StepBudget {
        /// `workload/engine/level` label.
        label: String,
        /// Simulated instructions consumed before giving up.
        steps: u64,
    },
    /// The cache directory could not be opened.
    Cache(String),
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Cell { label, detail } => write!(f, "cell {label}: {detail}"),
            RunnerError::StepBudget { label, steps } => write!(
                f,
                "cell {label}: step budget exhausted after {steps} simulated instructions \
                 (cell did not halt; raise --steps or reduce --full scale)"
            ),
            RunnerError::Cache(e) => write!(f, "result cache: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

/// One finished job: its spec, result, and where the result came from.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job that ran.
    pub spec: JobSpec,
    /// Its simulated result.
    pub result: CellResult,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Wall-clock nanoseconds spent on this job (simulation, or cache
    /// load when `cached`).
    pub wall_nanos: u64,
}

impl JobOutcome {
    /// Simulated steps (retired instructions) per wall-clock second;
    /// `0.0` for cache hits (nothing was simulated). Prefers the cell's
    /// own simulation-loop time ([`CellResult::sim_nanos`]) so the
    /// figure measures engine throughput, not VM construction and guest
    /// compilation; falls back to whole-job wall time for executors that
    /// don't record it.
    pub fn steps_per_sec(&self) -> f64 {
        if self.cached {
            return 0.0;
        }
        let nanos = if self.result.sim_nanos > 0 { self.result.sim_nanos } else { self.wall_nanos };
        if nanos == 0 {
            0.0
        } else {
            self.result.counters.instructions as f64 * 1e9 / nanos as f64
        }
    }
}

/// Aggregate statistics for one pool run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total jobs executed (hits + misses).
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs actually simulated.
    pub cache_misses: usize,
    /// Whole-run wall-clock nanoseconds.
    pub wall_nanos: u64,
    /// Simulated instructions across freshly-run jobs.
    pub simulated_instructions: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl RunStats {
    /// Aggregate simulated steps/second across the whole run.
    pub fn steps_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.simulated_instructions as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// One-line human summary, e.g. for `repro --verbose`.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} workers in {:.2}s: {} cache hits, {} simulated \
             ({:.1}M simulated steps/s)",
            self.jobs,
            self.workers,
            self.wall_nanos as f64 / 1e9,
            self.cache_hits,
            self.cache_misses,
            self.steps_per_sec() / 1e6,
        )
    }
}

/// Everything a pool run produced, results in submission order.
#[derive(Debug)]
pub struct RunReport {
    /// Finished jobs, index-aligned with the submitted job list.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate statistics.
    pub stats: RunStats,
}

/// Runs `jobs` on a worker pool, returning outcomes in submission order.
///
/// `exec` executes one job under a step budget; it runs concurrently on
/// pool threads, so it must be `Send + Sync` (in practice: build the VM
/// *inside* the closure — the engines' VMs are `Send`, but nothing needs
/// to cross threads besides the spec and the result).
///
/// Cache policy: a hit skips `exec` entirely; a fresh result is stored
/// back best-effort. Results are deterministic regardless of worker
/// count because jobs are independent and reassembled by index.
///
/// # Errors
///
/// If any job fails, the error for the *lowest-indexed* failing job is
/// returned (deterministic across worker counts). [`RunnerError::Cache`]
/// is returned if the cache directory cannot be opened.
pub fn run_jobs<F>(jobs: Vec<JobSpec>, cfg: &RunConfig, exec: F) -> Result<RunReport, RunnerError>
where
    F: Fn(&JobSpec, u64) -> Result<CellResult, ExecError> + Send + Sync,
{
    let started = Instant::now();
    let workers = cfg.effective_workers().min(jobs.len()).max(1);
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(ResultCache::open(dir).map_err(RunnerError::Cache)?),
        None => None,
    };

    let total = jobs.len();
    let mut slots: Vec<Option<Result<JobOutcome, RunnerError>>> = Vec::new();
    slots.resize_with(total, || None);

    if total > 0 {
        let next = AtomicUsize::new(0);
        let next = &next;
        let (tx, rx) = mpsc::channel::<(usize, Result<JobOutcome, RunnerError>)>();
        let exec = &exec;
        let cache = cache.as_ref();
        let jobs = &jobs;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let spec = &jobs[i];
                    let job_started = Instant::now();
                    let outcome = match cache.and_then(|c| c.load(&spec.key)) {
                        Some(result) => Ok(JobOutcome {
                            spec: spec.clone(),
                            result,
                            cached: true,
                            wall_nanos: job_started.elapsed().as_nanos() as u64,
                        }),
                        None => match exec(spec, cfg.step_budget) {
                            Ok(result) => {
                                if let Some(c) = cache {
                                    // Best-effort: a failed store only
                                    // costs a future re-simulation.
                                    let _ = c.store(&spec.key, &result);
                                }
                                Ok(JobOutcome {
                                    spec: spec.clone(),
                                    result,
                                    cached: false,
                                    wall_nanos: job_started.elapsed().as_nanos() as u64,
                                })
                            }
                            Err(ExecError::StepBudget { steps }) => {
                                Err(RunnerError::StepBudget { label: spec.label(), steps })
                            }
                            Err(ExecError::Failed(detail)) => {
                                Err(RunnerError::Cell { label: spec.label(), detail })
                            }
                        },
                    };
                    if tx.send((i, outcome)).is_err() {
                        break; // collector gone; nothing left to do
                    }
                });
            }
            drop(tx);

            // Collector: reassemble by index, narrating progress.
            let mut done = 0usize;
            let mut hits = 0usize;
            let mut misses = 0usize;
            for (i, outcome) in rx {
                done += 1;
                if let Ok(o) = &outcome {
                    if o.cached {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
                if cfg.progress {
                    let label = match &outcome {
                        Ok(o) => o.spec.label(),
                        Err(e) => format!("FAILED: {e}"),
                    };
                    eprint!("\r[{done}/{total}] {hits} cached, {misses} simulated  {label:<44}");
                }
                slots[i] = Some(outcome);
            }
            if cfg.progress {
                eprintln!();
            }
        });
    }

    let mut outcomes = Vec::with_capacity(total);
    let mut stats = RunStats {
        jobs: total,
        workers,
        ..RunStats::default()
    };
    for slot in slots {
        let outcome = slot.expect("every job index reports exactly once")?;
        if outcome.cached {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
            stats.simulated_instructions += outcome.result.counters.instructions;
        }
        outcomes.push(outcome);
    }
    stats.wall_nanos = started.elapsed().as_nanos() as u64;
    Ok(RunReport { outcomes, stats })
}

/// Runs `items` through `exec` on a worker pool and returns the results
/// in item order.
///
/// The generic sibling of [`run_jobs`] — no cache, no step budgets, no
/// error channel — used by `tarch-fleet` to execute one scheduling
/// round's tenant slices in parallel. Workers claim item indices from a
/// shared atomic counter, so a worker that drains its share immediately
/// steals the next pending index (work stealing at the host level);
/// results are reassembled by index, so the output is independent of
/// which worker ran what, and — because each item is handed to `exec`
/// by value, exactly once — `exec` may freely mutate its item (a tenant
/// VM advancing by one slice) and hand it back as the result.
///
/// `workers == 0` resolves to one per available core, as in
/// [`RunConfig::effective_workers`]; a single worker degenerates to an
/// in-place serial loop with no threads spawned.
pub fn run_tasks<T, R, F>(items: Vec<T>, workers: usize, exec: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Send + Sync,
{
    let total = items.len();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    }
    .min(total)
    .max(1);
    if workers == 1 {
        return items.into_iter().enumerate().map(|(i, t)| exec(i, t)).collect();
    }

    // Hand each item to exactly one worker: slot `i` is locked once, by
    // the worker that claimed index `i` from the counter.
    let items: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let items = &items;
    let next = AtomicUsize::new(0);
    let next = &next;
    let exec = &exec;
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(total, || None);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let item = items[i].lock().expect("task slot poisoned").take();
                let item = item.expect("each index claimed exactly once");
                if tx.send((i, exec(i, item))).is_err() {
                    break; // collector gone; nothing left to do
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots.into_iter().map(|s| s.expect("every task reports exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineKind, Scale};
    use std::sync::Mutex;
    use tarch_core::{BranchStats, CoreConfig, IsaLevel, PerfCounters};

    fn spec(n: u64) -> JobSpec {
        JobSpec::new(
            format!("job-{n}"),
            EngineKind::Lua,
            IsaLevel::Typed,
            Scale::Test,
            false,
            format!("print({n})"),
            &CoreConfig::paper(),
        )
    }

    fn fake_exec(spec: &JobSpec, _budget: u64) -> Result<CellResult, ExecError> {
        // Derive a deterministic result from the workload name.
        let n: u64 = spec.workload.trim_start_matches("job-").parse().unwrap();
        Ok(CellResult {
            counters: PerfCounters { cycles: n * 10, instructions: n, ..PerfCounters::default() },
            branch: BranchStats::default(),
            output: format!("{n}\n"),
            bytecodes: None,
            sim_nanos: 0,
            trace: None,
        })
    }

    #[test]
    fn results_are_ordered_and_identical_across_worker_counts() {
        let jobs: Vec<JobSpec> = (0..32).map(spec).collect();
        let serial = run_jobs(
            jobs.clone(),
            &RunConfig { workers: 1, ..RunConfig::default() },
            fake_exec,
        )
        .unwrap();
        let parallel = run_jobs(
            jobs.clone(),
            &RunConfig { workers: 4, ..RunConfig::default() },
            fake_exec,
        )
        .unwrap();
        assert_eq!(serial.outcomes.len(), 32);
        for (i, (s, p)) in serial.outcomes.iter().zip(&parallel.outcomes).enumerate() {
            assert_eq!(s.spec.workload, format!("job-{i}"));
            assert_eq!(s.result, p.result, "job {i} diverged");
        }
        assert_eq!(parallel.stats.workers, 4);
        assert_eq!(parallel.stats.cache_misses, 32);
    }

    #[test]
    fn workers_actually_run_concurrently() {
        // Each job waits until all 4 jobs have started; only a pool with
        // 4 live workers can finish.
        let started = Mutex::new(0usize);
        let jobs: Vec<JobSpec> = (0..4).map(spec).collect();
        let report = run_jobs(
            jobs,
            &RunConfig { workers: 4, ..RunConfig::default() },
            |spec, budget| {
                *started.lock().unwrap() += 1;
                let deadline = Instant::now() + std::time::Duration::from_secs(10);
                while *started.lock().unwrap() < 4 {
                    assert!(Instant::now() < deadline, "workers not concurrent");
                    std::thread::yield_now();
                }
                fake_exec(spec, budget)
            },
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 4);
    }

    #[test]
    fn lowest_index_error_wins_deterministically() {
        let jobs: Vec<JobSpec> = (0..16).map(spec).collect();
        let err = run_jobs(
            jobs,
            &RunConfig { workers: 8, ..RunConfig::default() },
            |spec, budget| {
                let n: u64 = spec.workload.trim_start_matches("job-").parse().unwrap();
                if n % 5 == 3 {
                    Err(ExecError::Failed(format!("boom {n}")))
                } else {
                    fake_exec(spec, budget)
                }
            },
        )
        .unwrap_err();
        // Failing jobs are 3, 8, 13; index 3 must win.
        match err {
            RunnerError::Cell { label, detail } => {
                assert!(label.starts_with("job-3/"), "{label}");
                assert_eq!(detail, "boom 3");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn step_budget_error_names_the_cell_and_steps() {
        let jobs = vec![spec(0)];
        let err = run_jobs(
            jobs,
            &RunConfig { step_budget: 1234, ..RunConfig::default() },
            |_, budget| Err(ExecError::StepBudget { steps: budget }),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("job-0/lua/typed"), "{msg}");
        assert!(msg.contains("1234"), "{msg}");
        assert!(msg.contains("step budget"), "{msg}");
    }

    #[test]
    fn cache_turns_second_run_into_hits() {
        let dir = std::env::temp_dir()
            .join(format!("tarch-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            workers: 4,
            cache_dir: Some(dir.clone()),
            ..RunConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..8).map(spec).collect();
        let first = run_jobs(jobs.clone(), &cfg, fake_exec).unwrap();
        assert_eq!(first.stats.cache_misses, 8);
        assert_eq!(first.stats.cache_hits, 0);
        let second = run_jobs(jobs.clone(), &cfg, |_, _| {
            panic!("exec must not run on a warm cache")
        })
        .unwrap();
        assert_eq!(second.stats.cache_hits, 8);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.result, b.result);
            assert!(b.cached);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let report =
            run_jobs(Vec::new(), &RunConfig::default(), fake_exec).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.jobs, 0);
        assert!(!report.stats.summary().is_empty());
    }

    #[test]
    fn run_tasks_preserves_order_and_moves_items() {
        // Items are mutated in place and handed back; results must line
        // up with submission order at any worker count.
        let items: Vec<u64> = (0..64).collect();
        let serial = run_tasks(items.clone(), 1, |i, v| (i as u64, v * 2));
        let parallel = run_tasks(items, 7, |i, v| (i as u64, v * 2));
        assert_eq!(serial, parallel);
        for (i, (idx, doubled)) in serial.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, 2 * i as u64);
        }
    }

    #[test]
    fn run_tasks_workers_run_concurrently() {
        let started = Mutex::new(0usize);
        let results = run_tasks(vec![(); 4], 4, |i, ()| {
            *started.lock().unwrap() += 1;
            let deadline = Instant::now() + std::time::Duration::from_secs(10);
            while *started.lock().unwrap() < 4 {
                assert!(Instant::now() < deadline, "workers not concurrent");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_tasks_empty_and_oversubscribed() {
        let empty: Vec<u32> = run_tasks(Vec::<u32>::new(), 8, |_, v| v);
        assert!(empty.is_empty());
        // More workers than items clamps to the item count.
        let one = run_tasks(vec![9u32], 16, |_, v| v + 1);
        assert_eq!(one, vec![10]);
    }
}
