//! The result of one simulated cell, and its JSON encoding (shared by
//! the on-disk cache and the `BENCH_*.json` artifacts).

use crate::json::Json;
use tarch_core::trace::{HotBlock, HotPc, MetricWindow, Occupancy, PcMisses, WindowStats};
use tarch_core::{BranchStats, PerfCounters, TraceSummary};

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Hardware counters.
    pub counters: PerfCounters,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Printed output (checked for cross-config equality).
    pub output: String,
    /// Dynamic bytecode count (only present for profiled runs).
    pub bytecodes: Option<u64>,
    /// Wall-clock nanoseconds of the simulation loop itself (the
    /// engine's `run` call), excluding VM construction and guest
    /// compilation. `0` when unrecorded (legacy cache entries and
    /// artifacts). Host-MIPS figures use this, so they measure simulator
    /// throughput rather than per-cell setup cost.
    pub sim_nanos: u64,
    /// Observability summary when the cell ran with
    /// `CoreConfig::trace` set: hot-PC histogram, event-ring totals, and
    /// metric windows. `None` for untraced runs (the default) and for
    /// entries/artifacts written before the trace layer existed.
    pub trace: Option<TraceSummary>,
}

impl CellResult {
    /// Branch misses per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.counters.per_kilo_instr(self.branch.total_misses())
    }

    /// JSON encoding; field-by-field, lossless for every `u64` counter.
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        let counters = Json::Obj(vec![
            ("cycles".into(), Json::num(c.cycles)),
            ("instructions".into(), Json::num(c.instructions)),
            ("helper_instructions".into(), Json::num(c.helper_instructions)),
            ("helper_cycles".into(), Json::num(c.helper_cycles)),
            ("icache_accesses".into(), Json::num(c.icache_accesses)),
            ("icache_misses".into(), Json::num(c.icache_misses)),
            ("dcache_accesses".into(), Json::num(c.dcache_accesses)),
            ("dcache_misses".into(), Json::num(c.dcache_misses)),
            ("itlb_misses".into(), Json::num(c.itlb_misses)),
            ("dtlb_misses".into(), Json::num(c.dtlb_misses)),
            ("type_checks".into(), Json::num(c.type_checks)),
            ("type_hits".into(), Json::num(c.type_hits)),
            ("type_misses".into(), Json::num(c.type_misses)),
            ("overflow_misses".into(), Json::num(c.overflow_misses)),
            ("chklb_checks".into(), Json::num(c.chklb_checks)),
            ("chklb_misses".into(), Json::num(c.chklb_misses)),
            ("loads".into(), Json::num(c.loads)),
            ("stores".into(), Json::num(c.stores)),
            ("tagged_mem".into(), Json::num(c.tagged_mem)),
            ("typed_alu".into(), Json::num(c.typed_alu)),
            ("fp_ops".into(), Json::num(c.fp_ops)),
            ("ecalls".into(), Json::num(c.ecalls)),
        ]);
        let b = &self.branch;
        let branch = Json::Obj(vec![
            ("branches".into(), Json::num(b.branches)),
            ("branch_misses".into(), Json::num(b.branch_misses)),
            ("jumps".into(), Json::num(b.jumps)),
            ("jump_misses".into(), Json::num(b.jump_misses)),
        ]);
        Json::Obj(vec![
            ("counters".into(), counters),
            ("branch".into(), branch),
            ("output".into(), Json::str(self.output.clone())),
            (
                "bytecodes".into(),
                match self.bytecodes {
                    Some(n) => Json::num(n),
                    None => Json::Null,
                },
            ),
            ("sim_nanos".into(), Json::num(self.sim_nanos)),
            (
                "trace".into(),
                match &self.trace {
                    Some(t) => trace_to_json(t),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Decodes [`CellResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<CellResult, String> {
        let c = v.get("counters").ok_or("missing `counters`")?;
        let counters = PerfCounters {
            cycles: c.req_u64("cycles")?,
            instructions: c.req_u64("instructions")?,
            helper_instructions: c.req_u64("helper_instructions")?,
            helper_cycles: c.req_u64("helper_cycles")?,
            icache_accesses: c.req_u64("icache_accesses")?,
            icache_misses: c.req_u64("icache_misses")?,
            dcache_accesses: c.req_u64("dcache_accesses")?,
            dcache_misses: c.req_u64("dcache_misses")?,
            itlb_misses: c.req_u64("itlb_misses")?,
            dtlb_misses: c.req_u64("dtlb_misses")?,
            type_checks: c.req_u64("type_checks")?,
            type_hits: c.req_u64("type_hits")?,
            type_misses: c.req_u64("type_misses")?,
            overflow_misses: c.req_u64("overflow_misses")?,
            chklb_checks: c.req_u64("chklb_checks")?,
            chklb_misses: c.req_u64("chklb_misses")?,
            loads: c.req_u64("loads")?,
            stores: c.req_u64("stores")?,
            tagged_mem: c.req_u64("tagged_mem")?,
            typed_alu: c.req_u64("typed_alu")?,
            fp_ops: c.req_u64("fp_ops")?,
            ecalls: c.req_u64("ecalls")?,
        };
        let b = v.get("branch").ok_or("missing `branch`")?;
        let branch = BranchStats {
            branches: b.req_u64("branches")?,
            branch_misses: b.req_u64("branch_misses")?,
            jumps: b.req_u64("jumps")?,
            jump_misses: b.req_u64("jump_misses")?,
        };
        let output = v.req_str("output")?.to_string();
        let bytecodes = match v.get("bytecodes") {
            None | Some(Json::Null) => None,
            Some(n) => Some(n.as_u64().ok_or("non-integer `bytecodes`")?),
        };
        // Absent in pre-sim_nanos cache entries/artifacts; report zero.
        let sim_nanos = v.get("sim_nanos").and_then(Json::as_u64).unwrap_or(0);
        // Absent in pre-trace entries/artifacts and untraced runs.
        let trace = match v.get("trace") {
            None | Some(Json::Null) => None,
            Some(t) => Some(trace_from_json(t)?),
        };
        Ok(CellResult { counters, branch, output, bytecodes, sim_nanos, trace })
    }
}

/// Encodes a [`TraceSummary`] (lossless; every field is a `u64`).
fn trace_to_json(t: &TraceSummary) -> Json {
    let hot_pcs = t
        .hot_pcs
        .iter()
        .map(|h| {
            Json::Obj(vec![
                ("pc".into(), Json::num(h.pc)),
                ("samples".into(), Json::num(h.samples)),
                ("icache_misses".into(), Json::num(h.misses.icache)),
                ("dcache_misses".into(), Json::num(h.misses.dcache)),
                ("itlb_misses".into(), Json::num(h.misses.itlb)),
                ("dtlb_misses".into(), Json::num(h.misses.dtlb)),
            ])
        })
        .collect();
    let hot_blocks = t
        .hot_blocks
        .iter()
        .map(|b| {
            Json::Obj(vec![
                ("pc".into(), Json::num(b.pc)),
                ("heat".into(), Json::num(b.heat)),
                ("len".into(), Json::num(u64::from(b.len))),
                ("compiled".into(), Json::Bool(b.compiled)),
            ])
        })
        .collect();
    let windows = t
        .windows
        .iter()
        .map(|w| {
            let s = &w.stats;
            let o = &w.occupancy;
            Json::Obj(vec![
                ("start".into(), Json::num(w.start)),
                ("end".into(), Json::num(w.end)),
                ("cycles".into(), Json::num(s.cycles)),
                ("instructions".into(), Json::num(s.instructions)),
                ("icache_accesses".into(), Json::num(s.icache_accesses)),
                ("icache_misses".into(), Json::num(s.icache_misses)),
                ("dcache_accesses".into(), Json::num(s.dcache_accesses)),
                ("dcache_misses".into(), Json::num(s.dcache_misses)),
                ("itlb_misses".into(), Json::num(s.itlb_misses)),
                ("dtlb_misses".into(), Json::num(s.dtlb_misses)),
                ("branches".into(), Json::num(s.branches)),
                ("mispredicts".into(), Json::num(s.mispredicts)),
                ("icache_lines".into(), Json::num(o.icache_lines)),
                ("dcache_lines".into(), Json::num(o.dcache_lines)),
                ("itlb_entries".into(), Json::num(o.itlb_entries)),
                ("dtlb_entries".into(), Json::num(o.dtlb_entries)),
                ("trt_rules".into(), Json::num(o.trt_rules)),
                ("blocks".into(), Json::num(o.blocks)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("sample_period".into(), Json::num(t.sample_period)),
        ("total_samples".into(), Json::num(t.total_samples)),
        ("events_recorded".into(), Json::num(t.events_recorded)),
        ("events_dropped".into(), Json::num(t.events_dropped)),
        ("hot_pcs".into(), Json::Arr(hot_pcs)),
        ("hot_blocks".into(), Json::Arr(hot_blocks)),
        ("windows".into(), Json::Arr(windows)),
    ])
}

/// Decodes [`trace_to_json`] output.
fn trace_from_json(v: &Json) -> Result<TraceSummary, String> {
    let hot_pcs = v
        .get("hot_pcs")
        .and_then(Json::as_arr)
        .ok_or("missing `trace.hot_pcs`")?
        .iter()
        .map(|h| {
            Ok(HotPc {
                pc: h.req_u64("pc")?,
                samples: h.req_u64("samples")?,
                misses: PcMisses {
                    icache: h.req_u64("icache_misses")?,
                    dcache: h.req_u64("dcache_misses")?,
                    itlb: h.req_u64("itlb_misses")?,
                    dtlb: h.req_u64("dtlb_misses")?,
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hot_blocks = v
        .get("hot_blocks")
        .and_then(Json::as_arr)
        .ok_or("missing `trace.hot_blocks`")?
        .iter()
        .map(|b| {
            Ok(HotBlock {
                pc: b.req_u64("pc")?,
                heat: b.req_u64("heat")?,
                len: u32::try_from(b.req_u64("len")?).map_err(|_| "oversized `len`")?,
                compiled: b
                    .get("compiled")
                    .and_then(Json::as_bool)
                    .ok_or("missing `trace.hot_blocks.compiled`")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let windows = v
        .get("windows")
        .and_then(Json::as_arr)
        .ok_or("missing `trace.windows`")?
        .iter()
        .map(|w| {
            Ok(MetricWindow {
                start: w.req_u64("start")?,
                end: w.req_u64("end")?,
                stats: WindowStats {
                    cycles: w.req_u64("cycles")?,
                    instructions: w.req_u64("instructions")?,
                    icache_accesses: w.req_u64("icache_accesses")?,
                    icache_misses: w.req_u64("icache_misses")?,
                    dcache_accesses: w.req_u64("dcache_accesses")?,
                    dcache_misses: w.req_u64("dcache_misses")?,
                    itlb_misses: w.req_u64("itlb_misses")?,
                    dtlb_misses: w.req_u64("dtlb_misses")?,
                    branches: w.req_u64("branches")?,
                    mispredicts: w.req_u64("mispredicts")?,
                },
                occupancy: Occupancy {
                    icache_lines: w.req_u64("icache_lines")?,
                    dcache_lines: w.req_u64("dcache_lines")?,
                    itlb_entries: w.req_u64("itlb_entries")?,
                    dtlb_entries: w.req_u64("dtlb_entries")?,
                    trt_rules: w.req_u64("trt_rules")?,
                    blocks: w.req_u64("blocks")?,
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(TraceSummary {
        sample_period: v.req_u64("sample_period")?,
        total_samples: v.req_u64("total_samples")?,
        hot_pcs,
        hot_blocks,
        events_recorded: v.req_u64("events_recorded")?,
        events_dropped: v.req_u64("events_dropped")?,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(seed: u64) -> CellResult {
        let counters = PerfCounters {
            cycles: 1000 + seed,
            instructions: 700 + seed,
            type_checks: 10,
            type_hits: 9,
            ..PerfCounters::default()
        };
        CellResult {
            counters,
            branch: BranchStats {
                branches: 100,
                branch_misses: 7,
                jumps: 20,
                jump_misses: seed,
            },
            output: format!("line one\nweird \"chars\" \t{seed}\n"),
            bytecodes: if seed.is_multiple_of(2) { Some(12345 + seed) } else { None },
            sim_nanos: seed * 1_000_000,
            trace: if seed.is_multiple_of(2) {
                None
            } else {
                Some(TraceSummary {
                    sample_period: 1000,
                    total_samples: 40 + seed,
                    hot_pcs: vec![HotPc {
                        pc: 0x1000 + seed,
                        samples: 40 + seed,
                        misses: PcMisses { icache: 1, dcache: 2, itlb: 0, dtlb: seed },
                    }],
                    hot_blocks: vec![HotBlock {
                        pc: 0x1000 + seed,
                        heat: 99 + seed,
                        len: 6,
                        compiled: seed.is_multiple_of(3),
                    }],
                    events_recorded: 9,
                    events_dropped: 3,
                    windows: vec![MetricWindow {
                        start: 0,
                        end: 500_000,
                        stats: WindowStats {
                            cycles: 500_000,
                            instructions: 400_000,
                            icache_misses: 12,
                            ..WindowStats::default()
                        },
                        occupancy: Occupancy {
                            icache_lines: 200,
                            trt_rules: 8,
                            ..Occupancy::default()
                        },
                    }],
                })
            },
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        for seed in 0..4 {
            let r = sample(seed);
            let text = r.to_json().to_pretty_string();
            let back = CellResult::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn missing_field_is_an_error_not_a_default() {
        let r = sample(0);
        let mut json = r.to_json();
        if let Json::Obj(fields) = &mut json {
            if let Json::Obj(counters) = &mut fields[0].1 {
                counters.retain(|(k, _)| k != "cycles");
            }
        }
        let err = CellResult::from_json(&json).unwrap_err();
        assert!(err.contains("cycles"), "{err}");
    }

    #[test]
    fn branch_mpki_matches_counters() {
        let r = sample(3);
        let expect = (7 + 3) as f64 * 1000.0 / r.counters.instructions as f64;
        assert!((r.branch_mpki() - expect).abs() < 1e-12);
    }
}
