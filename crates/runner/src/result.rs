//! The result of one simulated cell, and its JSON encoding (shared by
//! the on-disk cache and the `BENCH_*.json` artifacts).

use crate::json::Json;
use tarch_core::{BranchStats, PerfCounters};

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Hardware counters.
    pub counters: PerfCounters,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Printed output (checked for cross-config equality).
    pub output: String,
    /// Dynamic bytecode count (only present for profiled runs).
    pub bytecodes: Option<u64>,
    /// Wall-clock nanoseconds of the simulation loop itself (the
    /// engine's `run` call), excluding VM construction and guest
    /// compilation. `0` when unrecorded (legacy cache entries and
    /// artifacts). Host-MIPS figures use this, so they measure simulator
    /// throughput rather than per-cell setup cost.
    pub sim_nanos: u64,
}

impl CellResult {
    /// Branch misses per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.counters.per_kilo_instr(self.branch.total_misses())
    }

    /// JSON encoding; field-by-field, lossless for every `u64` counter.
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        let counters = Json::Obj(vec![
            ("cycles".into(), Json::num(c.cycles)),
            ("instructions".into(), Json::num(c.instructions)),
            ("helper_instructions".into(), Json::num(c.helper_instructions)),
            ("helper_cycles".into(), Json::num(c.helper_cycles)),
            ("icache_accesses".into(), Json::num(c.icache_accesses)),
            ("icache_misses".into(), Json::num(c.icache_misses)),
            ("dcache_accesses".into(), Json::num(c.dcache_accesses)),
            ("dcache_misses".into(), Json::num(c.dcache_misses)),
            ("itlb_misses".into(), Json::num(c.itlb_misses)),
            ("dtlb_misses".into(), Json::num(c.dtlb_misses)),
            ("type_checks".into(), Json::num(c.type_checks)),
            ("type_hits".into(), Json::num(c.type_hits)),
            ("type_misses".into(), Json::num(c.type_misses)),
            ("overflow_misses".into(), Json::num(c.overflow_misses)),
            ("chklb_checks".into(), Json::num(c.chklb_checks)),
            ("chklb_misses".into(), Json::num(c.chklb_misses)),
            ("loads".into(), Json::num(c.loads)),
            ("stores".into(), Json::num(c.stores)),
            ("tagged_mem".into(), Json::num(c.tagged_mem)),
            ("typed_alu".into(), Json::num(c.typed_alu)),
            ("fp_ops".into(), Json::num(c.fp_ops)),
            ("ecalls".into(), Json::num(c.ecalls)),
        ]);
        let b = &self.branch;
        let branch = Json::Obj(vec![
            ("branches".into(), Json::num(b.branches)),
            ("branch_misses".into(), Json::num(b.branch_misses)),
            ("jumps".into(), Json::num(b.jumps)),
            ("jump_misses".into(), Json::num(b.jump_misses)),
        ]);
        Json::Obj(vec![
            ("counters".into(), counters),
            ("branch".into(), branch),
            ("output".into(), Json::str(self.output.clone())),
            (
                "bytecodes".into(),
                match self.bytecodes {
                    Some(n) => Json::num(n),
                    None => Json::Null,
                },
            ),
            ("sim_nanos".into(), Json::num(self.sim_nanos)),
        ])
    }

    /// Decodes [`CellResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<CellResult, String> {
        let c = v.get("counters").ok_or("missing `counters`")?;
        let counters = PerfCounters {
            cycles: c.req_u64("cycles")?,
            instructions: c.req_u64("instructions")?,
            helper_instructions: c.req_u64("helper_instructions")?,
            helper_cycles: c.req_u64("helper_cycles")?,
            icache_accesses: c.req_u64("icache_accesses")?,
            icache_misses: c.req_u64("icache_misses")?,
            dcache_accesses: c.req_u64("dcache_accesses")?,
            dcache_misses: c.req_u64("dcache_misses")?,
            itlb_misses: c.req_u64("itlb_misses")?,
            dtlb_misses: c.req_u64("dtlb_misses")?,
            type_checks: c.req_u64("type_checks")?,
            type_hits: c.req_u64("type_hits")?,
            type_misses: c.req_u64("type_misses")?,
            overflow_misses: c.req_u64("overflow_misses")?,
            chklb_checks: c.req_u64("chklb_checks")?,
            chklb_misses: c.req_u64("chklb_misses")?,
            loads: c.req_u64("loads")?,
            stores: c.req_u64("stores")?,
            tagged_mem: c.req_u64("tagged_mem")?,
            typed_alu: c.req_u64("typed_alu")?,
            fp_ops: c.req_u64("fp_ops")?,
            ecalls: c.req_u64("ecalls")?,
        };
        let b = v.get("branch").ok_or("missing `branch`")?;
        let branch = BranchStats {
            branches: b.req_u64("branches")?,
            branch_misses: b.req_u64("branch_misses")?,
            jumps: b.req_u64("jumps")?,
            jump_misses: b.req_u64("jump_misses")?,
        };
        let output = v.req_str("output")?.to_string();
        let bytecodes = match v.get("bytecodes") {
            None | Some(Json::Null) => None,
            Some(n) => Some(n.as_u64().ok_or("non-integer `bytecodes`")?),
        };
        // Absent in pre-sim_nanos cache entries/artifacts; report zero.
        let sim_nanos = v.get("sim_nanos").and_then(Json::as_u64).unwrap_or(0);
        Ok(CellResult { counters, branch, output, bytecodes, sim_nanos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(seed: u64) -> CellResult {
        let counters = PerfCounters {
            cycles: 1000 + seed,
            instructions: 700 + seed,
            type_checks: 10,
            type_hits: 9,
            ..PerfCounters::default()
        };
        CellResult {
            counters,
            branch: BranchStats {
                branches: 100,
                branch_misses: 7,
                jumps: 20,
                jump_misses: seed,
            },
            output: format!("line one\nweird \"chars\" \t{seed}\n"),
            bytecodes: if seed.is_multiple_of(2) { Some(12345 + seed) } else { None },
            sim_nanos: seed * 1_000_000,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        for seed in 0..4 {
            let r = sample(seed);
            let text = r.to_json().to_pretty_string();
            let back = CellResult::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn missing_field_is_an_error_not_a_default() {
        let r = sample(0);
        let mut json = r.to_json();
        if let Json::Obj(fields) = &mut json {
            if let Json::Obj(counters) = &mut fields[0].1 {
                counters.retain(|(k, _)| k != "cycles");
            }
        }
        let err = CellResult::from_json(&json).unwrap_err();
        assert!(err.contains("cycles"), "{err}");
    }

    #[test]
    fn branch_mpki_matches_counters() {
        let r = sample(3);
        let expect = (7 + 3) as f64 * 1000.0 / r.counters.instructions as f64;
        assert!((r.branch_mpki() - expect).abs() < 1e-12);
    }
}
