//! # tarch-runner — parallel experiment execution
//!
//! The paper's evaluation is a (workload × engine × ISA-level) matrix of
//! *independent* cycle-accurate simulations. This crate turns that shape
//! into infrastructure the bench harness and the `repro` binary run on:
//!
//! * [`job`] — the job model: a [`JobSpec`] names one simulation cell and
//!   carries a stable [`JobKey`] content key derived from the program
//!   source and the simulated core configuration;
//! * [`pool`] — a `std::thread` + `mpsc` worker pool ([`run_jobs`]) that
//!   executes cells in parallel with a configurable worker count while
//!   returning results in deterministic (submission) order;
//! * [`cache`] — a persistent on-disk result cache keyed by [`JobKey`],
//!   so re-running an experiment skips already-simulated cells;
//! * [`artifact`] — versioned `BENCH_<timestamp>.json` run artifacts the
//!   figure renderers can reload instead of re-simulating;
//! * [`mod@compare`] — host-throughput comparison of two artifacts, backing
//!   `repro bench --compare` and its `--min-ratio` regression gate;
//! * [`json`] — the minimal hand-rolled JSON reader/writer backing the
//!   cache and artifact formats (no external dependencies).
//!
//! The crate knows how to *schedule, key, persist and report* jobs but
//! not how to *execute* them: execution is a caller-supplied closure
//! (`Fn(&JobSpec, u64) -> Result<CellResult, ExecError>`), which keeps
//! this crate free of engine dependencies and lets tests drive the pool
//! with synthetic workloads.

pub mod artifact;
pub mod cache;
pub mod compare;
pub mod job;
pub mod json;
pub mod pairs;
pub mod pgo;
pub mod pool;
pub mod result;

pub use artifact::{
    BenchArtifact, FleetSummary, LatencyPercentiles, PgoSummary, PgoWorkload, ShardSummary,
    ARTIFACT_SCHEMA,
};
pub use cache::ResultCache;
pub use compare::{compare, CellDelta, Comparison};
pub use job::{EngineKind, JobKey, JobSpec, Scale};
pub use json::Json;
pub use pgo::{CellProfile, PgoProfile, WorkloadProfile, PGO_SCHEMA};
pub use pool::{
    run_jobs, run_tasks, ExecError, JobOutcome, RunConfig, RunReport, RunStats, RunnerError,
    DEFAULT_STEP_BUDGET,
};
pub use result::CellResult;
