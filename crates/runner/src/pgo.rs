//! The on-disk PGO profile format (`tarch-pgo/v1`): what a profile run
//! records and an optimized run loads back.
//!
//! One file carries everything the engine's three profile consumers
//! need, per workload:
//!
//! * a **pair histogram** — dynamic counts of adjacent same-block
//!   mnemonic pairs (see `tarch-core`'s `PairProfile`), from which
//!   `FusionTable::from_pair_counts` derives the workload's fusion
//!   table. Mnemonics are portable across engines and ISA levels, so
//!   pairs aggregate per workload;
//! * per-cell **hot-pc records** — the sampling profiler's histogram,
//!   kept separate per (engine, ISA level) because each engine lays its
//!   guest code out at different pcs. These feed sample-triggered
//!   tier-up and superblock formation.
//!
//! The schema is documented for humans in `EXPERIMENTS.md`; this module
//! is the reference reader/writer. Like the BENCH artifact, files are
//! written via temp-file + atomic rename and readers tolerate unknown
//! keys (additive evolution without a version bump).

use crate::job::EngineKind;
use crate::json::Json;
use std::path::Path;
use tarch_core::IsaLevel;

/// Profile format identifier; bump on any breaking schema change.
pub const PGO_SCHEMA: &str = "tarch-pgo/v1";

/// One cell's hot-pc histogram: (engine, ISA level) plus the sampled
/// `(pc, samples)` records in ascending pc order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellProfile {
    /// Engine the samples came from.
    pub engine: EngineKind,
    /// ISA level the samples came from.
    pub level: IsaLevel,
    /// `(pc, samples)` records, ascending pc.
    pub hot: Vec<(u64, u64)>,
}

/// One workload's slice of a profile: the aggregated pair histogram and
/// the per-cell hot-pc records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Workload name (a `tarch-bench` workload id).
    pub workload: String,
    /// `(prev, cur, count)` mnemonic-pair records, hottest first.
    pub pairs: Vec<(String, String, u64)>,
    /// Per-cell sampling histograms; empty when the profile came from a
    /// pair-only run (`repro bench --profile-pairs`).
    pub cells: Vec<CellProfile>,
}

impl WorkloadProfile {
    /// The hot-pc records for one cell, if the profile has them.
    pub fn cell(&self, engine: EngineKind, level: IsaLevel) -> Option<&CellProfile> {
        self.cells.iter().find(|c| c.engine == engine && c.level == level)
    }
}

/// A full profile file: sampling period plus one block per workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgoProfile {
    /// Simulated-cycle sampling period the hot-pc records were taken at
    /// (zero for pair-only profiles, which never sampled).
    pub sample_period: u64,
    /// Per-workload profiles, in run order.
    pub workloads: Vec<WorkloadProfile>,
}

impl PgoProfile {
    /// The block for one workload, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadProfile> {
        self.workloads.iter().find(|w| w.workload == name)
    }

    /// Serializes the profile document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(PGO_SCHEMA)),
            ("sample_period".into(), Json::num(self.sample_period)),
            (
                "workloads".into(),
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            Json::Obj(vec![
                                ("workload".into(), Json::str(w.workload.clone())),
                                (
                                    "pairs".into(),
                                    Json::Arr(
                                        w.pairs
                                            .iter()
                                            .map(|(a, b, n)| {
                                                Json::Obj(vec![
                                                    ("a".into(), Json::str(a.clone())),
                                                    ("b".into(), Json::str(b.clone())),
                                                    ("count".into(), Json::num(*n)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "cells".into(),
                                    Json::Arr(
                                        w.cells
                                            .iter()
                                            .map(|c| {
                                                Json::Obj(vec![
                                                    ("engine".into(), Json::str(c.engine.id())),
                                                    ("level".into(), Json::str(c.level.name())),
                                                    (
                                                        "hot".into(),
                                                        Json::Arr(
                                                            c.hot
                                                                .iter()
                                                                .map(|&(pc, samples)| {
                                                                    Json::Obj(vec![
                                                                        (
                                                                            "pc".into(),
                                                                            Json::num(pc),
                                                                        ),
                                                                        (
                                                                            "samples".into(),
                                                                            Json::num(samples),
                                                                        ),
                                                                    ])
                                                                })
                                                                .collect(),
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a profile document.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on a schema mismatch or any
    /// missing/mistyped field.
    pub fn from_json(doc: &Json) -> Result<PgoProfile, String> {
        let schema = doc.req_str("schema")?;
        if schema != PGO_SCHEMA {
            return Err(format!(
                "unsupported profile schema `{schema}` (expected `{PGO_SCHEMA}`)"
            ));
        }
        let sample_period = doc.req_u64("sample_period")?;
        let blocks =
            doc.get("workloads").and_then(Json::as_arr).ok_or("missing `workloads` array")?;
        let mut workloads = Vec::with_capacity(blocks.len());
        for (i, block) in blocks.iter().enumerate() {
            let ctx = |e| format!("workload {i}: {e}");
            let workload = block.req_str("workload").map_err(ctx)?.to_string();
            let mut pairs = Vec::new();
            for (j, p) in block
                .get("pairs")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("workload {i}: missing `pairs` array"))?
                .iter()
                .enumerate()
            {
                let ctx = |e| format!("workload {i} pair {j}: {e}");
                pairs.push((
                    p.req_str("a").map_err(ctx)?.to_string(),
                    p.req_str("b").map_err(ctx)?.to_string(),
                    p.req_u64("count").map_err(ctx)?,
                ));
            }
            let mut cells = Vec::new();
            for (j, c) in block
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("workload {i}: missing `cells` array"))?
                .iter()
                .enumerate()
            {
                let ctx = |e: String| format!("workload {i} cell {j}: {e}");
                let engine = EngineKind::parse(c.req_str("engine").map_err(ctx)?)
                    .ok_or_else(|| format!("workload {i} cell {j}: unknown engine"))?;
                let level = IsaLevel::parse(c.req_str("level").map_err(ctx)?)
                    .ok_or_else(|| format!("workload {i} cell {j}: unknown level"))?;
                let mut hot = Vec::new();
                for (k, h) in c
                    .get("hot")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("workload {i} cell {j}: missing `hot` array"))?
                    .iter()
                    .enumerate()
                {
                    let ctx = |e| format!("workload {i} cell {j} hot {k}: {e}");
                    hot.push((h.req_u64("pc").map_err(ctx)?, h.req_u64("samples").map_err(ctx)?));
                }
                cells.push(CellProfile { engine, level, hot });
            }
            workloads.push(WorkloadProfile { workload, pairs, cells });
        }
        Ok(PgoProfile { sample_period, workloads })
    }

    /// Writes the profile to `path` via a sibling temp file + atomic
    /// rename (the same torn-read discipline as the BENCH artifact).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_json().to_pretty_string())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
    }

    /// Reads and validates a profile file.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on I/O failure, malformed JSON, a
    /// schema mismatch, or any missing/mistyped field.
    pub fn read(path: &Path) -> Result<PgoProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> PgoProfile {
        PgoProfile {
            sample_period: 1000,
            workloads: vec![
                WorkloadProfile {
                    workload: "fibo".into(),
                    pairs: vec![
                        ("addi".into(), "ld".into(), 900),
                        ("slt".into(), "bne".into(), 100),
                    ],
                    cells: vec![
                        CellProfile {
                            engine: EngineKind::Lua,
                            level: IsaLevel::Typed,
                            hot: vec![(0x1000, 50), (0x1040, 9)],
                        },
                        CellProfile {
                            engine: EngineKind::Js,
                            level: IsaLevel::Baseline,
                            hot: vec![(0x8000, 77)],
                        },
                    ],
                },
                WorkloadProfile {
                    workload: "n-sieve".into(),
                    pairs: vec![("sd".into(), "addi".into(), 4)],
                    cells: Vec::new(),
                },
            ],
        }
    }

    fn write_read(p: &PgoProfile, tag: &str) -> PgoProfile {
        let path = std::env::temp_dir()
            .join(format!("tarch-pgo-test-{}-{tag}.json", std::process::id()));
        p.write(&path).unwrap();
        let back = PgoProfile::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        back
    }

    #[test]
    fn profile_roundtrips() {
        let p = sample_profile();
        let back = write_read(&p, "roundtrip");
        assert_eq!(back, p);
        let w = back.workload("fibo").unwrap();
        assert_eq!(w.pairs[0], ("addi".into(), "ld".into(), 900));
        let cell = w.cell(EngineKind::Lua, IsaLevel::Typed).unwrap();
        assert_eq!(cell.hot, vec![(0x1000, 50), (0x1040, 9)]);
        assert!(w.cell(EngineKind::Js, IsaLevel::Typed).is_none());
        assert!(back.workload("no-such").is_none());
    }

    #[test]
    fn pair_only_profiles_roundtrip_with_empty_cells() {
        let mut p = sample_profile();
        p.sample_period = 0;
        for w in &mut p.workloads {
            w.cells.clear();
        }
        let back = write_read(&p, "pairs-only");
        assert_eq!(back, p);
        assert!(back.workload("fibo").unwrap().cells.is_empty());
    }

    #[test]
    fn unknown_extra_fields_are_ignored() {
        let p = sample_profile();
        let text = p
            .to_json()
            .to_pretty_string()
            .replacen("\"sample_period\"", "\"future\": 1, \"sample_period\"", 1)
            .replacen("\"pairs\"", "\"w_extra\": [], \"pairs\"", 1);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(PgoProfile::from_json(&doc).unwrap(), p);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample_profile()
            .to_json()
            .to_pretty_string()
            .replace(PGO_SCHEMA, "tarch-pgo/v99");
        let doc = Json::parse(&text).unwrap();
        let err = PgoProfile::from_json(&doc).unwrap_err();
        assert!(err.contains("v99"), "{err}");
    }

    #[test]
    fn derived_fusion_table_reads_straight_off_the_pairs() {
        // The profile's pair records feed `FusionTable::from_pair_counts`
        // without conversion glue beyond borrowing the strings.
        let p = sample_profile();
        let w = p.workload("fibo").unwrap();
        let table = tarch_core::FusionTable::from_pair_counts(
            w.pairs.iter().map(|(a, b, n)| (a.as_str(), b.as_str(), *n)),
        );
        assert!(table.contains(tarch_core::FuseClass::AluLoad));
        assert!(table.contains(tarch_core::FuseClass::AluBranch));
    }
}
