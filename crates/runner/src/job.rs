//! The job model: one simulation cell and its stable content key.

use std::fmt;
use tarch_core::{CoreConfig, IsaLevel};

/// Bumped whenever the key derivation or the cached result layout
/// changes; part of every content key, so stale cache entries from an
/// older layout simply miss.
///
/// History: `1` → `2` when [`CellResult`](crate::CellResult) grew the
/// optional `trace` summary and `CoreConfig` the `trace` field (the
/// config's `Debug` rendering — and with it every key — changed shape).
/// `2` → `3` with the fleet subsystem: the cache write path was hardened
/// for concurrent writers and the artifact schema grew fleet summaries,
/// so pre-fleet entries are retired wholesale rather than trusted to
/// have been written race-free.
/// `3` → `4` with tier-2 execution: `CoreConfig` grew `tier2` and
/// `tier2_threshold` (changing every key's `Debug` rendering) and trace
/// summaries grew the hot-block table, which the decoder requires.
/// `4` → `5` with profile-guided optimization: `CoreConfig` grew
/// `fusion_table` (a per-workload fused-pair selection, part of the
/// key's `Debug` rendering), and PGO runs additionally carry per-cell
/// hot-pc sets that live *outside* the config — so PGO cells bypass the
/// cache entirely rather than risk keying two different hot sets alike.
pub const KEY_SCHEMA: u32 = 5;

/// Which scripting engine runs the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineKind {
    /// `luart`, the register-based Lua-like engine.
    Lua,
    /// `jsrt`, the stack-based NaN-boxing engine (SpiderMonkey stand-in).
    Js,
}

impl EngineKind {
    /// Both engines, Lua first (the paper's figure order).
    pub const ALL: [EngineKind; 2] = [EngineKind::Lua, EngineKind::Js];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Lua => "Lua",
            EngineKind::Js => "SpiderMonkey-like (JS)",
        }
    }

    /// Stable machine-readable identifier used in keys and artifacts.
    pub fn id(self) -> &'static str {
        match self {
            EngineKind::Lua => "lua",
            EngineKind::Js => "js",
        }
    }

    /// Parses an [`EngineKind::id`] spelling.
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|e| e.id() == s)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Input scale for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests.
    Test,
    /// Simulator-friendly defaults used by `repro`.
    Default,
    /// The paper's Table 7 inputs.
    Full,
}

impl Scale {
    /// Stable machine-readable identifier used in keys and artifacts.
    pub fn id(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// Parses a [`Scale::id`] spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        [Scale::Test, Scale::Default, Scale::Full].into_iter().find(|x| x.id() == s)
    }
}

/// 128-bit content key identifying one simulation's inputs.
///
/// Derived from everything that determines the simulated result: the
/// program source text, engine, ISA level, profiled flag, and the full
/// [`CoreConfig`] (via its `Debug` rendering, which covers every field).
/// Two jobs with the same key produce byte-identical results, which is
/// the cache's soundness condition. The key does **not** cover the
/// simulator *code*: after changing simulator semantics, run with the
/// cache disabled or delete the cache directory (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey(pub u64, pub u64);

impl JobKey {
    /// 32-hex-digit rendering; doubles as the cache file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses a [`JobKey::hex`] rendering.
    pub fn parse(s: &str) -> Option<JobKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(JobKey(hi, lo))
    }
}

/// FNV-1a 64-bit with a caller-chosen offset basis (two bases give the
/// two independent halves of a [`JobKey`]).
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One runnable simulation cell: workload + engine + ISA level + scale +
/// profiled flag, plus the program source the key is derived from.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name (Table 7 spelling).
    pub workload: String,
    /// Engine that runs it.
    pub engine: EngineKind,
    /// ISA level simulated.
    pub level: IsaLevel,
    /// Input scale.
    pub scale: Scale,
    /// Whether to collect the per-bytecode profile (Figure 9 runs).
    pub profiled: bool,
    /// MiniScript source at `scale`.
    pub source: String,
    /// Simulated core configuration the executor must use (covered by
    /// the content key via its `Debug` rendering).
    pub core: CoreConfig,
    /// Content key (see [`JobKey`]); empty-source specs loaded from an
    /// artifact keep the key recorded at run time.
    pub key: JobKey,
}

impl JobSpec {
    /// Builds a spec and derives its content key.
    pub fn new(
        workload: impl Into<String>,
        engine: EngineKind,
        level: IsaLevel,
        scale: Scale,
        profiled: bool,
        source: impl Into<String>,
        config: &CoreConfig,
    ) -> JobSpec {
        let workload = workload.into();
        let source = source.into();
        // \x1f separators prevent field-boundary ambiguity.
        let canonical = format!(
            "v{KEY_SCHEMA}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{:?}\x1f{}",
            engine.id(),
            level.name(),
            scale.id(),
            profiled,
            config,
            source,
        );
        let key =
            JobKey(fnv1a(0xcbf2_9ce4_8422_2325, canonical.as_bytes()),
                   fnv1a(0x6c62_272e_07bb_0142, canonical.as_bytes()));
        JobSpec { workload, engine, level, scale, profiled, source, core: *config, key }
    }

    /// Display label for progress lines and diagnostics, e.g.
    /// `fibo/lua/typed` (with a `+prof` suffix for profiled runs).
    pub fn label(&self) -> String {
        let prof = if self.profiled { "+prof" } else { "" };
        format!("{}/{}/{}{prof}", self.workload, self.engine.id(), self.level.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(source: &str, profiled: bool) -> JobSpec {
        JobSpec::new(
            "fibo",
            EngineKind::Lua,
            IsaLevel::Typed,
            Scale::Test,
            profiled,
            source,
            &CoreConfig::paper(),
        )
    }

    #[test]
    fn key_is_stable_for_identical_inputs() {
        assert_eq!(spec("print(1)", false).key, spec("print(1)", false).key);
    }

    #[test]
    fn key_changes_with_any_input() {
        let base = spec("print(1)", false);
        assert_ne!(base.key, spec("print(2)", false).key, "source must affect key");
        assert_ne!(base.key, spec("print(1)", true).key, "profiled must affect key");
        let other_level = JobSpec::new(
            "fibo",
            EngineKind::Lua,
            IsaLevel::Baseline,
            Scale::Test,
            false,
            "print(1)",
            &CoreConfig::paper(),
        );
        assert_ne!(base.key, other_level.key, "level must affect key");
        let mut cfg = CoreConfig::paper();
        cfg.trt_entries = 16;
        let other_cfg = JobSpec::new(
            "fibo",
            EngineKind::Lua,
            IsaLevel::Typed,
            Scale::Test,
            false,
            "print(1)",
            &cfg,
        );
        assert_ne!(base.key, other_cfg.key, "core config must affect key");
    }

    #[test]
    fn key_hex_roundtrip() {
        let k = spec("print(1)", false).key;
        assert_eq!(JobKey::parse(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
        assert_eq!(JobKey::parse("zz"), None);
    }

    #[test]
    fn ids_roundtrip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::parse(e.id()), Some(e));
        }
        for s in [Scale::Test, Scale::Default, Scale::Full] {
            assert_eq!(Scale::parse(s.id()), Some(s));
        }
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn label_format() {
        assert_eq!(spec("x", false).label(), "fibo/lua/typed");
        assert_eq!(spec("x", true).label(), "fibo/lua/typed+prof");
    }
}
