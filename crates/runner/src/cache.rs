//! Persistent result cache.
//!
//! One JSON file per [`JobKey`] under a cache directory (by default
//! `target/tarch-cache/`). A lookup that fails for *any* reason —
//! missing file, truncated write, schema mismatch, field drift — is a
//! miss, never an error: the cache is purely an accelerator and the
//! simulation can always be re-run.
//!
//! Writes go through a temp file + rename so a crashed run can leave at
//! worst an orphaned `*.tmp-*` file, never a corrupt entry, and so
//! concurrent workers storing the same key race benignly.

use crate::job::{JobKey, KEY_SCHEMA};
use crate::json::Json;
use crate::result::CellResult;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk result cache keyed by [`JobKey`].
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// Opens (and creates if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the `std::io` error message if the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Looks up a cached result; any load failure is a miss.
    pub fn load(&self, key: &JobKey) -> Option<CellResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.req_u64("key_schema").ok()? != KEY_SCHEMA as u64 {
            return None;
        }
        if doc.req_str("key").ok()? != key.hex() {
            return None;
        }
        CellResult::from_json(doc.get("cell")?).ok()
    }

    /// Stores a result. Best-effort: failures are reported but callers
    /// normally ignore them (a store failure only costs a future re-run).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message.
    pub fn store(&self, key: &JobKey, cell: &CellResult) -> Result<(), String> {
        let doc = Json::Obj(vec![
            ("key_schema".into(), Json::num(KEY_SCHEMA)),
            ("key".into(), Json::str(key.hex())),
            ("cell".into(), cell.to_json()),
        ]);
        let final_path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, doc.to_pretty_string())
            .map_err(|e| format!("cache write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &final_path)
            .map_err(|e| format!("cache rename {}: {e}", final_path.display()))
    }

    /// Number of entries currently on disk (for stats/tests).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_core::{BranchStats, PerfCounters};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tarch-cache-test-{}-{tag}", process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(n: u64) -> CellResult {
        CellResult {
            counters: PerfCounters { cycles: n, instructions: n / 2, ..PerfCounters::default() },
            branch: BranchStats::default(),
            output: format!("out {n}\n"),
            bytecodes: None,
            sim_nanos: 0,
            trace: None,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let key = JobKey(1, 2);
        assert!(cache.load(&key).is_none());
        cache.store(&key, &cell(100)).unwrap();
        assert_eq!(cache.load(&key).unwrap(), cell(100));
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let key = JobKey(3, 4);
        cache.store(&key, &cell(7)).unwrap();
        let path = dir.join(format!("{}.json", key.hex()));
        std::fs::write(&path, "{ truncated").unwrap();
        assert!(cache.load(&key).is_none());
        // Wrong-key content (e.g. a renamed file) is also a miss.
        cache.store(&JobKey(5, 6), &cell(9)).unwrap();
        std::fs::copy(dir.join(format!("{}.json", JobKey(5, 6).hex())), &path).unwrap();
        assert!(cache.load(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_on_one_key_never_tear() {
        // Two threads hammer the same key with *different* payloads
        // while a reader polls. Temp-file + atomic rename means every
        // observation is a complete entry — one of the two payloads in
        // full — never a miss from a torn write. (A plain `fs::write`
        // to the final path fails this test under load.)
        let dir = tmpdir("race");
        let cache = ResultCache::open(&dir).unwrap();
        let key = JobKey(0xaa, 0xbb);
        cache.store(&key, &cell(2)).unwrap();
        let a = cell(2);
        let b = cell(4096);
        let cache = &cache;
        std::thread::scope(|scope| {
            for payload in [&a, &b] {
                scope.spawn(move || {
                    for _ in 0..200 {
                        cache.store(&key, payload).unwrap();
                    }
                });
            }
            for _ in 0..400 {
                let seen = cache.load(&key).expect("entry must never tear to a miss");
                assert!(seen == a || seen == b, "torn entry: {seen:?}");
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let dir = tmpdir("distinct");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&JobKey(1, 1), &cell(1)).unwrap();
        cache.store(&JobKey(1, 2), &cell(2)).unwrap();
        assert_eq!(cache.load(&JobKey(1, 1)).unwrap(), cell(1));
        assert_eq!(cache.load(&JobKey(1, 2)).unwrap(), cell(2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
