//! Tier-2 promotion edge cases at the whole-core level.
//!
//! The heat counter that drives tier-up is easy to get subtly wrong at
//! its extremes, so these tests pin the contract end to end on a real
//! guest loop: a zero threshold promotes a block on its very first
//! dispatch, a `u32::MAX` threshold keeps everything interpreted, and a
//! loaded PGO hot set replaces the threshold entirely — hot pcs tier up
//! almost immediately while cold pcs never compile no matter how hot
//! they run. Every configuration must retire bit-identical architectural
//! counters; tiering is a host-side throughput decision only.

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;
use tarch_isa::Reg;

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

/// A single hot loop block: 200 iterations of `a0 += s1`.
const LOOP_SRC: &str = "
loop:
    addi a0, a0, 3
    addi s1, s1, -1
    bnez s1, loop
    halt
";

fn run_loop(config: CoreConfig, hot: Option<&[u64]>) -> Cpu {
    let program = assemble(LOOP_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    let mut cpu = Cpu::new(config);
    cpu.load_program(&program);
    if let Some(pcs) = hot {
        cpu.set_pgo_hot_pcs(pcs.iter().copied());
    }
    cpu.regs_mut().write_untyped(Reg::S1, 200);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 600);
    cpu
}

#[test]
fn threshold_zero_promotes_on_first_dispatch() {
    let cpu = run_loop(CoreConfig { tier2_threshold: 0, ..CoreConfig::paper() }, None);
    let stats = cpu.block_stats();
    // Heat starts at 1 on install, so a zero threshold is already met
    // when a block is first built: every build (the loop body and the
    // halt fall-through) promotes immediately, and nothing recompiles.
    assert_eq!(stats.builds, 2);
    assert_eq!(stats.compiles, stats.builds);
}

#[test]
fn threshold_max_never_promotes() {
    let cpu = run_loop(CoreConfig { tier2_threshold: u32::MAX, ..CoreConfig::paper() }, None);
    let stats = cpu.block_stats();
    assert_eq!(stats.compiles, 0, "no realistic heat reaches u32::MAX");
    assert!(
        stats.hits + stats.chained_transfers > 100,
        "the loop still runs through the block engine"
    );
}

#[test]
fn pgo_hot_set_overrides_the_threshold() {
    // An empty hot set means *nothing* is hot: even with the most eager
    // threshold, cold code never compiles under PGO.
    let cold = run_loop(CoreConfig { tier2_threshold: 0, ..CoreConfig::paper() }, Some(&[]));
    assert_eq!(cold.block_stats().compiles, 0);

    // A hot pc tiers up at PGO heat even under a threshold that would
    // otherwise never promote.
    let hot =
        run_loop(CoreConfig { tier2_threshold: u32::MAX, ..CoreConfig::paper() }, Some(&[TEXT_BASE]));
    assert_eq!(hot.block_stats().compiles, 1);
}

#[test]
fn tiering_extremes_retire_identical_counters() {
    let reference = run_loop(CoreConfig::paper(), None);
    for cpu in [
        run_loop(CoreConfig { tier2_threshold: 0, ..CoreConfig::paper() }, None),
        run_loop(CoreConfig { tier2_threshold: u32::MAX, ..CoreConfig::paper() }, None),
        run_loop(CoreConfig { tier2_threshold: 0, ..CoreConfig::paper() }, Some(&[])),
        run_loop(CoreConfig::paper(), Some(&[TEXT_BASE])),
    ] {
        assert_eq!(cpu.counters(), reference.counters());
        assert_eq!(cpu.branch_stats(), reference.branch_stats());
    }
}
