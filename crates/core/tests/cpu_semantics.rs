//! End-to-end semantics and timing tests for the Typed Architecture core,
//! driven through the text assembler.

use tarch_core::{CoreConfig, Cpu, StepEvent, Trap};
use tarch_isa::text::assemble;
use tarch_isa::{Reg, TrtClass, TrtRule};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

fn run(src: &str) -> Cpu {
    run_with(src, |_| {})
}

fn run_with(src: &str, setup: impl FnOnce(&mut Cpu)) -> Cpu {
    let program = assemble(src, TEXT_BASE, DATA_BASE)
        .unwrap_or_else(|e| panic!("assembly failed: {e}\n{src}"));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    setup(&mut cpu);
    match cpu.run(2_000_000) {
        Ok(StepEvent::Halted) => cpu,
        Ok(other) => panic!("program stopped with {other:?} instead of halting"),
        Err(t) => panic!("trap: {t}"),
    }
}

fn a0(cpu: &Cpu) -> u64 {
    cpu.regs().read(Reg::A0).v
}

#[test]
fn arithmetic_and_logic() {
    let cpu = run("
        li a1, 100
        li a2, 7
        add a0, a1, a2
        sub a3, a1, a2
        mul a4, a1, a2
        div a5, a1, a2
        rem a6, a1, a2
        halt
    ");
    assert_eq!(a0(&cpu), 107);
    assert_eq!(cpu.regs().read(Reg::A3).v, 93);
    assert_eq!(cpu.regs().read(Reg::A4).v, 700);
    assert_eq!(cpu.regs().read(Reg::A5).v, 14);
    assert_eq!(cpu.regs().read(Reg::A6).v, 2);
}

#[test]
fn riscv_division_by_zero_semantics() {
    let cpu = run("
        li a1, 42
        li a2, 0
        div a0, a1, a2
        rem a3, a1, a2
        divu a4, a1, a2
        halt
    ");
    assert_eq!(a0(&cpu) as i64, -1);
    assert_eq!(cpu.regs().read(Reg::A3).v, 42);
    assert_eq!(cpu.regs().read(Reg::A4).v, u64::MAX);
}

#[test]
fn word_ops_sign_extend() {
    let cpu = run("
        li a1, 0x7fffffff
        li a2, 1
        addw a0, a1, a2
        halt
    ");
    assert_eq!(a0(&cpu) as i64, i32::MIN as i64);
}

#[test]
fn shifts_and_compares() {
    let cpu = run("
        li a1, -8
        srai a0, a1, 1
        srli a2, a1, 60
        li a3, -1
        li a4, 1
        slt a5, a3, a4
        sltu a6, a3, a4
        halt
    ");
    assert_eq!(a0(&cpu) as i64, -4);
    assert_eq!(cpu.regs().read(Reg::A2).v, 0xf);
    assert_eq!(cpu.regs().read(Reg::A5).v, 1);
    assert_eq!(cpu.regs().read(Reg::A6).v, 0);
}

#[test]
fn loads_stores_all_widths() {
    let cpu = run("
        la s0, buf
        li a1, -2
        sb a1, 0(s0)
        sh a1, 2(s0)
        sw a1, 4(s0)
        sd a1, 8(s0)
        lb a0, 0(s0)
        lbu a2, 0(s0)
        lh a3, 2(s0)
        lhu a4, 2(s0)
        lw a5, 4(s0)
        lwu a6, 4(s0)
        ld a7, 8(s0)
        halt
        .data
        buf: .dword 0, 0
    ");
    assert_eq!(a0(&cpu) as i64, -2);
    assert_eq!(cpu.regs().read(Reg::A2).v, 0xfe);
    assert_eq!(cpu.regs().read(Reg::A3).v as i64, -2);
    assert_eq!(cpu.regs().read(Reg::A4).v, 0xfffe);
    assert_eq!(cpu.regs().read(Reg::A5).v as i64, -2);
    assert_eq!(cpu.regs().read(Reg::A6).v, 0xffff_fffe);
    assert_eq!(cpu.regs().read(Reg::A7).v as i64, -2);
}

#[test]
fn call_return_and_loop() {
    // sum 1..=10 via a subroutine.
    let cpu = run("
        .entry main
        sumto:
            li t0, 0
        loop:
            add t0, t0, a1
            addi a1, a1, -1
            bnez a1, loop
            mv a0, t0
            ret
        main:
            li a1, 10
            call sumto
            halt
    ");
    assert_eq!(a0(&cpu), 55);
}

#[test]
fn fp_pipeline_ops() {
    let cpu = run("
        la s0, vals
        fld f1, 0(s0)
        fld f2, 8(s0)
        fadd.d f3, f1, f2
        fmul.d f4, f1, f2
        fdiv.d f5, f1, f2
        fsub.d f6, f1, f2
        fsd f3, 16(s0)
        fle.d a0, f1, f2
        flt.d a1, f2, f1
        feq.d a2, f1, f1
        fcvt.l.d a3, f4
        li a4, 9
        fcvt.d.l f7, a4
        fsqrt.d f8, f7
        fcvt.l.d a5, f8
        halt
        .data
        vals: .dword 0x4008000000000000, 0x3fe0000000000000, 0
    "); // 3.0, 0.5
    assert_eq!(cpu.mem().read_u64(DATA_BASE + 16), 3.5f64.to_bits());
    assert_eq!(a0(&cpu), 0); // 3.0 <= 0.5 is false
    assert_eq!(cpu.regs().read(Reg::A1).v, 1); // 0.5 < 3.0
    assert_eq!(cpu.regs().read(Reg::A2).v, 1);
    assert_eq!(cpu.regs().read(Reg::A3).v, 1); // trunc(1.5)
    assert_eq!(cpu.regs().read(Reg::A5).v, 3); // sqrt(9)
}

fn lua_setup(src_body: &str) -> String {
    format!(
        "
        li t0, 0b001
        setoffset t0
        li t0, 0xff
        setmask t0
        li t0, 0
        setshift t0
        {src_body}
        "
    )
}

fn push_lua_rules(cpu: &mut Cpu) {
    const INT: u8 = 0x13;
    const FLT: u8 = 0x83;
    for class in [TrtClass::Xadd, TrtClass::Xsub, TrtClass::Xmul] {
        cpu.trt_mut().push(TrtRule::new(class, INT, INT, INT));
        cpu.trt_mut().push(TrtRule::new(class, FLT, FLT, FLT));
    }
}

#[test]
fn typed_add_int_fast_path() {
    let src = lua_setup(
        "
        la s10, rb
        la s9, rc
        la s11, ra
        tld a2, 0(s10)
        tld a3, 0(s9)
        thdl slow
        xadd a4, a2, a3
        tsd a4, 0(s11)
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 40, 0x13
        rc: .dword 2, 0x13
        ra: .dword 0, 0
    ",
    );
    let cpu = run_with(&src, push_lua_rules);
    assert_eq!(a0(&cpu), 1, "must stay on the fast path");
    let ra = DATA_BASE + 32;
    assert_eq!(cpu.mem().read_u64(ra), 42);
    assert_eq!(cpu.mem().read_u8(ra + 8), 0x13);
    assert_eq!(cpu.counters().type_hits, 1);
    assert_eq!(cpu.counters().type_misses, 0);
}

#[test]
fn typed_add_float_binds_fp_alu() {
    let src = lua_setup(
        "
        la s10, rb
        la s9, rc
        la s11, ra
        tld a2, 0(s10)
        tld a3, 0(s9)
        thdl slow
        xadd a4, a2, a3
        tsd a4, 0(s11)
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 0x3ff0000000000000, 0x83   # 1.0, Float tag
        rc: .dword 0x4000000000000000, 0x83   # 2.0
        ra: .dword 0, 0
    ",
    );
    let cpu = run_with(&src, push_lua_rules);
    assert_eq!(a0(&cpu), 1);
    let ra = DATA_BASE + 32;
    assert_eq!(f64::from_bits(cpu.mem().read_u64(ra)), 3.0);
    assert_eq!(cpu.mem().read_u8(ra + 8), 0x83);
}

#[test]
fn typed_add_mixed_types_redirects_to_handler() {
    let src = lua_setup(
        "
        la s10, rb
        la s9, rc
        tld a2, 0(s10)
        tld a3, 0(s9)
        thdl slow
        xadd a4, a2, a3
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 40, 0x13                   # Int
        rc: .dword 0x4000000000000000, 0x83   # Float
    ",
    );
    let cpu = run_with(&src, push_lua_rules);
    assert_eq!(a0(&cpu), 99, "mixed types must take the slow path");
    assert_eq!(cpu.counters().type_misses, 1);
    assert_eq!(cpu.counters().type_hits, 0);
}

#[test]
fn tchk_hits_and_misses() {
    let src = lua_setup(
        "
        la s10, tbl
        la s9, key
        tld a2, 0(s10)
        tld a3, 0(s9)
        thdl slow
        tchk a2, a3
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        tbl: .dword 0xdead, 5    # Table tag
        key: .dword 3, 0x13      # Int tag
    ",
    );
    // With the Table-Int rule installed: hit.
    let cpu = run_with(&src, |cpu| {
        cpu.trt_mut().push(TrtRule::new(TrtClass::Tchk, 5, 0x13, 5));
    });
    assert_eq!(a0(&cpu), 1);
    assert_eq!(cpu.counters().type_hits, 1);

    // Without rules: miss.
    let cpu = run(&src);
    assert_eq!(a0(&cpu), 99);
    assert_eq!(cpu.counters().type_misses, 1);
}

#[test]
fn tget_tset_roundtrip() {
    let src = lua_setup(
        "
        la s10, rb
        tld a2, 0(s10)
        tget a0, a2        # a0 = tag of rb = 0x13
        li a3, 0x83
        tset a3, a2        # retag rb as Float
        tget a1, a2
        halt
        .data
        rb: .dword 7, 0x13
    ",
    );
    let cpu = run(&src);
    assert_eq!(a0(&cpu), 0x13);
    assert_eq!(cpu.regs().read(Reg::A1).v, 0x83);
    assert!(cpu.regs().read(Reg::A2).f, "tset must refresh the F/I bit");
}

#[test]
fn nanbox_typed_add_with_overflow_redirect() {
    // SpiderMonkey layout: offset=0b1100 (NaN detect + overflow detect),
    // shift=47, mask=0x0f. Int tag = 1.
    let src = "
        li t0, 0b1100
        setoffset t0
        li t0, 47
        setshift t0
        li t0, 0x0f
        setmask t0
        la s10, rb
        la s9, rc
        la s11, ra
        tld a2, 0(s10)
        tld a3, 0(s9)
        thdl slow
        xadd a4, a2, a3
        tsd a4, 0(s11)
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 0, 0
        rc: .dword 0, 0
        ra: .dword 0, 0
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).unwrap();

    let boxed_int = |v: i64| -> u64 {
        (0x1fffu64 << 51) | (1u64 << 47) | ((v as u64) & ((1 << 47) - 1))
    };

    // Case 1: 20 + 22 stays in int32 range → fast path.
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.trt_mut().push(TrtRule::new(TrtClass::Xadd, 1, 1, 1));
    cpu.mem_mut().write_u64(DATA_BASE, boxed_int(20));
    cpu.mem_mut().write_u64(DATA_BASE + 16, boxed_int(22));
    while cpu.step().unwrap() != StepEvent::Halted {}
    assert_eq!(a0(&cpu), 1);
    let stored = cpu.mem().read_u64(DATA_BASE + 32);
    assert!(tarch_core::is_nan_boxed(stored));
    assert_eq!(stored & ((1 << 47) - 1), 42);

    // Case 2: int32 overflow → overflow-triggered type miss.
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.trt_mut().push(TrtRule::new(TrtClass::Xadd, 1, 1, 1));
    cpu.mem_mut().write_u64(DATA_BASE, boxed_int(i32::MAX as i64));
    cpu.mem_mut().write_u64(DATA_BASE + 16, boxed_int(1));
    while cpu.step().unwrap() != StepEvent::Halted {}
    assert_eq!(a0(&cpu), 99, "overflow must redirect to the slow path");
    assert_eq!(cpu.counters().overflow_misses, 1);
    assert_eq!(cpu.counters().type_misses, 0, "overflow is counted separately");
}

#[test]
fn nanbox_doubles_pass_through_tld_tsd() {
    let src = "
        li t0, 0b1100
        setoffset t0
        li t0, 47
        setshift t0
        li t0, 0x0f
        setmask t0
        la s10, rb
        tld a2, 0(s10)
        tsd a2, 8(s10)
        halt
        .data
        rb: .dword 0x400921fb54442d18, 0   # pi
    ";
    let cpu = run(src);
    assert_eq!(cpu.mem().read_u64(DATA_BASE + 8), 0x4009_21fb_5444_2d18);
    assert!(cpu.regs().read(Reg::A2).f);
}

#[test]
fn chklb_fast_and_slow() {
    let src = "
        li t0, 0x13
        settype t0
        la s10, rb
        thdl slow
        chklb a2, 8(s10)
        li a0, 1
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 7, 0x13
    ";
    let cpu = run(src);
    assert_eq!(a0(&cpu), 1);
    assert_eq!(cpu.counters().chklb_checks, 1);
    assert_eq!(cpu.counters().chklb_misses, 0);

    // Change the tag: chklb must redirect.
    let program = assemble(src, TEXT_BASE, DATA_BASE).unwrap();
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.mem_mut().write_u8(DATA_BASE + 8, 0x83);
    while cpu.step().unwrap() != StepEvent::Halted {}
    assert_eq!(a0(&cpu), 99);
    assert_eq!(cpu.counters().chklb_misses, 1);
}

#[test]
fn set_trt_instruction_installs_rules() {
    // Packed rule: in1=0x13, in2=0x13, class=0 (xadd), out=0x13.
    let src = lua_setup(
        "
        li t0, 0x13001313
        set_trt t0
        la s10, rb
        tld a2, 0(s10)
        thdl slow
        xadd a0, a2, a2
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 21, 0x13
    ",
    );
    let cpu = run(&src);
    assert_eq!(a0(&cpu), 42);
    // flush_trt drops the rules.
    let src2 = lua_setup(
        "
        li t0, 0x13001313
        set_trt t0
        flush_trt
        la s10, rb
        tld a2, 0(s10)
        thdl slow
        xadd a0, a2, a2
        halt
    slow:
        li a0, 99
        halt
        .data
        rb: .dword 21, 0x13
    ",
    );
    let cpu = run(&src2);
    assert_eq!(a0(&cpu), 99);
}

#[test]
fn invalid_trt_rule_traps() {
    let program = assemble("li t0, 0xff0000\nset_trt t0\nhalt\n", TEXT_BASE, DATA_BASE).unwrap();
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    let err = cpu.run(10).unwrap_err();
    assert!(matches!(err, Trap::InvalidTrtRule { .. }));
}

#[test]
fn misaligned_load_traps() {
    let program = assemble("li a0, 3\nld a1, 0(a0)\nhalt\n", TEXT_BASE, DATA_BASE).unwrap();
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    let err = cpu.run(10).unwrap_err();
    assert!(matches!(err, Trap::MisalignedAccess { addr: 3, align: 8, .. }));
}

#[test]
fn invalid_instruction_traps() {
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.mem_mut().write_u32(0x100, 0xffff_ffff);
    cpu.set_pc(0x100);
    let err = cpu.run(1).unwrap_err();
    assert!(matches!(err, Trap::InvalidInstruction { pc: 0x100, .. }));
}

#[test]
fn ecall_pauses_and_resumes() {
    let program = assemble("li a0, 5\necall\naddi a0, a0, 1\nhalt\n", TEXT_BASE, DATA_BASE).unwrap();
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    assert_eq!(cpu.run(100).unwrap(), StepEvent::Ecall);
    assert_eq!(a0(&cpu), 5);
    // Host "services" the call by doubling a0 and charging costs.
    let v = cpu.regs().read(Reg::A0).v;
    cpu.regs_mut().write_untyped(Reg::A0, v * 2);
    let before = *cpu.counters();
    cpu.charge(100, 130);
    assert_eq!(cpu.counters().instructions, before.instructions + 100);
    assert_eq!(cpu.run(100).unwrap(), StepEvent::Halted);
    assert_eq!(a0(&cpu), 11);
}

#[test]
fn csrr_reads_counters() {
    let cpu = run("
        csrr a1, instret
        csrr a2, cycle
        csrr a0, icachemiss
        halt
    ");
    assert!(cpu.regs().read(Reg::A1).v >= 1);
    assert!(cpu.regs().read(Reg::A2).v >= 1);
    assert!(a0(&cpu) >= 1, "cold I-cache must have missed");
}

#[test]
fn cycles_at_least_instructions() {
    let cpu = run("
        li a1, 200
        li a0, 0
    top:
        add a0, a0, a1
        addi a1, a1, -1
        bnez a1, top
        halt
    ");
    let c = cpu.counters();
    assert!(c.cycles >= c.instructions, "in-order single issue: CPI >= 1");
    assert_eq!(a0(&cpu), 20100); // sum of 200 down to 1
}

#[test]
fn load_use_bubble_costs_a_cycle() {
    // Dependent load→use vs load...independent→use.
    let dep = run("
        la s0, d
        ld a1, 0(s0)
        ld a1, 0(s0)
        ld a1, 0(s0)
        ld a1, 0(s0)
        add a0, a1, a1
        halt
        .data
        d: .dword 21
    ");
    let indep = run("
        la s0, d
        ld a1, 0(s0)
        ld a1, 0(s0)
        ld a1, 0(s0)
        ld a1, 0(s0)
        nop
        add a0, a1, a1
        halt
        .data
        d: .dword 21
    ");
    assert_eq!(a0(&dep), 42);
    assert_eq!(a0(&indep), 42);
    // The independent version has one more instruction but the same cycle
    // count: the nop hides the load-use bubble.
    assert_eq!(indep.counters().instructions, dep.counters().instructions + 1);
    assert_eq!(indep.counters().cycles, dep.counters().cycles);
}

#[test]
fn branch_mispredicts_cost_cycles() {
    // A data-dependent unpredictable-ish pattern vs an always-taken loop of
    // the same instruction count.
    let predictable = run("
        li a1, 512
        li a0, 0
    top:
        addi a0, a0, 1
        addi a1, a1, -1
        bnez a1, top
        halt
    ");
    let alternating = run("
        li a1, 512
        li a0, 0
    top:
        andi t0, a1, 3
        bnez t0, skip
        addi a0, a0, 1
    skip:
        addi a1, a1, -1
        bnez a1, top
        halt
    ");
    let p = predictable.branch_stats();
    let a = alternating.branch_stats();
    assert!(p.branch_misses < 10, "countdown loop should train: {p:?}");
    assert!(a.branches > p.branches);
    // Period-4 pattern is learnable by 7-bit gshare; just check counting.
    assert_eq!(alternating.regs().read(Reg::A0).v, 128);
}

#[test]
fn typed_state_roundtrips_through_context_switch() {
    use tarch_core::TypedState;
    let src = lua_setup(
        "
        la s10, rb
        tld a2, 0(s10)
        halt
        .data
        rb: .dword 7, 0x13
    ",
    );
    let cpu = run_with(&src, push_lua_rules);
    let state = TypedState::save(&cpu);
    assert_eq!(state.trt_rules.len(), 6);
    assert_eq!(state.spr.offset, 0b001);
    let mut fresh = Cpu::new(CoreConfig::paper());
    state.restore(&mut fresh);
    assert_eq!(fresh.regs().read(Reg::A2).t, 0x13);
    assert_eq!(fresh.trt().len(), 6);
}
