//! Self-modifying-code correctness for the predecode engine.
//!
//! The predecoded-instruction table caches decoded text words; these tests
//! prove the two invalidation paths work end to end: guest stores into the
//! text segment (`sw` over an instruction) and host writes through
//! `Cpu::mem_mut`. In both cases re-executing the patched address must
//! observe the new instruction, and the architectural counters must match
//! a run with predecoding disabled.

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;
use tarch_isa::{AluImmOp, Instruction, Reg};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

fn addi_a0(imm: i32) -> u32 {
    Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm }
        .encode()
        .expect("encodable")
}

/// The first instruction (at exactly `TEXT_BASE`) is the patch target:
/// pass one executes `addi a0, a0, 1`, stores a replacement word over it,
/// and loops; pass two must execute the replacement.
const SMC_SRC: &str = "
top:
    addi a0, a0, 1      # patch target: rewritten to addi a0, a0, 100
    bnez s2, done
    li   s2, 1
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    li   s4, 0x1000     # text base: address of the patch target
    sw   t0, 0(s4)
    bnez s2, top
done:
    halt
";

fn run_smc(predecode: bool) -> Cpu {
    let mut program = assemble(SMC_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1), "patch target must sit at TEXT_BASE");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { predecode, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_into_text_is_observed() {
    let cpu = run_smc(true);
    // 1 from the original instruction, 100 from its replacement.
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    assert!(
        cpu.predecode_stats().invalidations > 0,
        "the store over the patch target must invalidate its slot"
    );
}

#[test]
fn smc_counters_match_decode_every_step() {
    let on = run_smc(true);
    let off = run_smc(false);
    assert_eq!(off.regs().read(Reg::A0).v, 101, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
    assert_eq!(off.predecode_stats().hits, 0, "predecode off must never serve a fetch");
}

#[test]
fn host_write_through_mem_mut_is_observed() {
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after the first pass
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 2);
    // First pass: three instructions, all of which fill predecode slots.
    for _ in 0..3 {
        assert_eq!(cpu.step().expect("no trap"), StepEvent::Retired);
    }
    assert_eq!(cpu.regs().read(Reg::A0).v, 1);
    // A native helper rewrites the patch target behind the table's back.
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    let stats = cpu.predecode_stats();
    assert!(stats.hits > 0, "the unpatched loop body must hit the table");
    assert!(
        stats.revalidations > 0,
        "untouched slots must revalidate (not re-decode) after the host write"
    );
}
