//! Self-modifying-code correctness for the predecode and block engines.
//!
//! The predecoded-instruction table and the basic-block table both cache
//! decoded text words; these tests prove the two invalidation paths work
//! end to end for each: guest stores into the text segment (`sw` over an
//! instruction) and host writes through `Cpu::mem_mut`. In both cases
//! re-executing the patched address must observe the new instruction, and
//! the architectural counters must match a run with the engines disabled.
//! The block-engine tests additionally pin the hardest case: a store that
//! patches an instruction *later in the currently executing block*, which
//! must abandon the in-flight block run rather than retire stale decodes.

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;
use tarch_isa::{AluImmOp, Instruction, Reg};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

fn addi_a0(imm: i32) -> u32 {
    Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm }
        .encode()
        .expect("encodable")
}

/// The first instruction (at exactly `TEXT_BASE`) is the patch target:
/// pass one executes `addi a0, a0, 1`, stores a replacement word over it,
/// and loops; pass two must execute the replacement.
const SMC_SRC: &str = "
top:
    addi a0, a0, 1      # patch target: rewritten to addi a0, a0, 100
    bnez s2, done
    li   s2, 1
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    li   s4, 0x1000     # text base: address of the patch target
    sw   t0, 0(s4)
    bnez s2, top
done:
    halt
";

fn run_smc(predecode: bool) -> Cpu {
    let mut program = assemble(SMC_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1), "patch target must sit at TEXT_BASE");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { predecode, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_into_text_is_observed() {
    let cpu = run_smc(true);
    // 1 from the original instruction, 100 from its replacement.
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    assert!(
        cpu.predecode_stats().invalidations > 0,
        "the store over the patch target must invalidate its slot"
    );
}

#[test]
fn smc_counters_match_decode_every_step() {
    let on = run_smc(true);
    let off = run_smc(false);
    assert_eq!(off.regs().read(Reg::A0).v, 101, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
    assert_eq!(off.predecode_stats().hits, 0, "predecode off must never serve a fetch");
}

/// One straight-line block whose store patches an instruction *further
/// down the same block*. The executor holds a detached run of the block's
/// decoded instructions; after the store it must notice the generation
/// bump, abandon the run, and rebuild — executing the replacement, not
/// the stale decode.
/// The second pass re-enters the patched block from the top, forcing the
/// table to notice the changed word and rebuild the dropped entry.
const MID_BLOCK_SRC: &str = "
start:
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    la   s4, patch
    sw   t0, 0(s4)      # patches an instruction later in THIS block
    addi a0, a0, 1
patch:
    addi a0, a0, 7      # must execute as addi a0, a0, 100
    addi a0, a0, 1
    bnez s2, done
    li   s2, 1
    bnez s2, start
done:
    halt
";

fn run_mid_block(blocks: bool, predecode: bool) -> Cpu {
    let mut program = assemble(MID_BLOCK_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { blocks, predecode, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_mid_block_invalidates_the_running_block() {
    let cpu = run_mid_block(true, true);
    // Two passes of 1 + 100 (replacement) + 1; a stale block run would
    // retire the original addi 7 for 9 per pass.
    assert_eq!(cpu.regs().read(Reg::A0).v, 204);
    let stats = cpu.block_stats();
    assert!(stats.store_invalidations > 0, "the store must bump the block generation");
    assert!(stats.rebuilds > 0, "the patched block must be dropped and rebuilt");
    assert!(stats.builds >= 2, "initial build plus the rebuild after the patch");
}

/// The tier-2 flavour of the mid-block case: drive the threshold to 1 so
/// the patching block is template-compiled before it runs, then prove the
/// compiled body notices the generation bump at the instruction boundary
/// — deoptimizing back to tier 1 instead of retiring its captured stale
/// decode — and that the whole run stays counter-identical to stepwise.
#[test]
fn guest_store_mid_hot_block_deoptimizes_the_compiled_body() {
    let mut program = assemble(MID_BLOCK_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { tier2_threshold: 1, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    // Same architectural outcome as the interpreted runs above: a stale
    // compiled body would retire the original addi 7 for 9 per pass.
    assert_eq!(cpu.regs().read(Reg::A0).v, 204);
    let stats = cpu.block_stats();
    assert!(stats.compiles > 0, "threshold 1 must tier the block up before it runs");
    assert!(stats.deopts > 0, "the mid-block store must deoptimize the compiled body");
    assert!(stats.rebuilds > 0, "the patched block must be dropped and rebuilt");

    let off = run_mid_block(false, false);
    assert_eq!(cpu.counters(), off.counters(), "deopt path must stay counter-identical");
    assert_eq!(cpu.branch_stats(), off.branch_stats());
}

#[test]
fn mid_block_smc_counters_match_stepwise_decode() {
    let on = run_mid_block(true, true);
    let off = run_mid_block(false, false);
    assert_eq!(off.regs().read(Reg::A0).v, 204, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
}

#[test]
fn host_write_through_mem_mut_revalidates_blocks() {
    // Two blocks in a loop: block A holds the patch target, block B is
    // untouched. After the host write, A must rebuild (its word changed)
    // while B revalidates in place.
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after the first pass
        j    mid
    mid:
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 2);
    // First full iteration: both blocks built and executed.
    assert_eq!(cpu.run(4).expect("no trap"), StepEvent::Retired);
    assert_eq!(cpu.regs().read(Reg::A0).v, 1);
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    let stats = cpu.block_stats();
    assert!(stats.rebuilds > 0, "the patched block must re-decode after the host write");
    assert!(
        stats.revalidations > 0,
        "the untouched block must revalidate (not re-decode) after the epoch bump"
    );
}

/// Two chained blocks in a loop; a guest store then patches the chained-to
/// block. The chain link into the patched block must stop being followed
/// (its target's generation goes stale, then the word check drops it), and
/// execution must observe the replacement instruction — never a stale
/// decode served through a link.
const CHAIN_SMC_SRC: &str = "
top:
    addi a0, a0, 1      # patch target: rewritten to addi a0, a0, 100
    j    mid
mid:
    addi s1, s1, -1
    bnez s1, top        # chained edge back into the patch target's block
    bnez s2, done
    li   s2, 1
    li   s1, 4
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    li   s4, 0x1000     # text base: address of the patch target
    sw   t0, 0(s4)      # severs every link into the block at `top`
    bnez s2, top
done:
    halt
";

fn run_chain_smc(blocks: bool) -> Cpu {
    let mut program = assemble(CHAIN_SMC_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1), "patch target must sit at TEXT_BASE");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { blocks, ..CoreConfig::paper() });
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 4);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_severs_chain_links_into_the_patched_block() {
    let cpu = run_chain_smc(true);
    // Four +1 passes before the patch, four +100 passes after it. A chain
    // link surviving the store would keep retiring the stale +1.
    assert_eq!(cpu.regs().read(Reg::A0).v, 404);
    let stats = cpu.block_stats();
    assert!(stats.links_formed > 0, "the loop's direct exits must form links");
    assert!(stats.chained_transfers > 0, "the hot loop must run through links");
    assert!(stats.store_invalidations > 0, "the text store must bump the generation");
    assert!(stats.rebuilds > 0, "the patched block must be dropped and rebuilt");
}

#[test]
fn chain_smc_counters_match_blocks_off() {
    let on = run_chain_smc(true);
    let off = run_chain_smc(false);
    assert_eq!(off.regs().read(Reg::A0).v, 404, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
}

/// The PGO flavour of the chain-severing case: with a hot set loaded,
/// the hot two-block loop straightens into a trace-driven superblock
/// (`top` -> `mid`). A guest store that patches `mid` — a *spanned*
/// block, not the superblock's head — must sever the composed body
/// exactly like it severs chain links: the head's text is untouched and
/// revalidates in place, but its superblock carries the formation-time
/// generation and is never handed out again. A surviving superblock
/// would keep retiring the stale `addi a0, a0, 10` tail.
const SUPER_SMC_SRC: &str = "
top:
    addi a0, a0, 1      # superblock head: hot and chainable
    j    mid
mid:
    addi a0, a0, 10     # patch target: rewritten to addi a0, a0, 100
    addi s1, s1, -1
    bnez s1, top        # hot chained edge back to the head
    bnez s2, done
    li   s2, 1
    li   s1, 64
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    la   s4, mid
    sw   t0, 0(s4)      # severs the superblock spanning top -> mid
    bnez s2, top
done:
    halt
";

fn run_super_smc(engines: bool) -> Cpu {
    let mut program = assemble(SUPER_SMC_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu =
        Cpu::new(CoreConfig { blocks: engines, predecode: engines, ..CoreConfig::paper() });
    cpu.load_program(&program);
    if engines {
        // The sampling profiler would find the loop's two block-entry
        // pcs; hand them over directly (`top` is at TEXT_BASE, `mid`
        // two instructions later).
        cpu.set_pgo_hot_pcs([TEXT_BASE, TEXT_BASE + 8]);
    }
    cpu.regs_mut().write_untyped(Reg::S1, 64);
    assert_eq!(cpu.run(100_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_severs_pgo_superblocks_like_chain_links() {
    let cpu = run_super_smc(true);
    // 64 iterations of +1/+10 before the patch, 64 of +1/+100 after it.
    assert_eq!(cpu.regs().read(Reg::A0).v, 64 * 11 + 64 * 101);
    let stats = cpu.block_stats();
    assert!(stats.superblocks >= 1, "the hot loop must form a superblock");
    assert!(stats.chained_transfers > 0, "the loop must chain before forming");
    assert!(stats.store_invalidations > 0, "the text store must bump the generation");
    assert!(stats.rebuilds > 0, "the patched spanned block must be dropped and rebuilt");
}

#[test]
fn super_smc_counters_match_engines_off() {
    let on = run_super_smc(true);
    let off = run_super_smc(false);
    assert_eq!(off.regs().read(Reg::A0).v, 64 * 11 + 64 * 101, "reference sees the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
}

#[test]
fn host_write_through_mem_mut_revalidates_chained_paths() {
    // Same two-block loop as above, patched from the host mid-run. The
    // epoch bump makes every link unfollowable (stale target generation);
    // once the untouched block revalidates and the patched one rebuilds,
    // chaining must resume — with the replacement instruction.
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after three iterations
        j    mid
    mid:
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 6);
    // Three of six iterations: links formed, transfers chained.
    assert_eq!(cpu.run(12).expect("no trap"), StepEvent::Retired);
    assert_eq!(cpu.regs().read(Reg::A0).v, 3);
    let before = cpu.block_stats();
    assert!(before.chained_transfers > 0, "the loop must chain before the bump");
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 303);
    let after = cpu.block_stats();
    assert!(after.revalidations > before.revalidations, "untouched block revalidates");
    assert!(after.rebuilds > before.rebuilds, "patched block re-decodes");
    assert!(
        after.chained_transfers > before.chained_transfers,
        "chaining must resume once the blocks are current again"
    );
}

#[test]
fn host_store_u64_invalidates_text_but_not_data() {
    let src = "
    top:
        addi a0, a0, 1      # patched (with its successor) by the host
        j    mid
    mid:
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 6);
    assert_eq!(cpu.run(12).expect("no trap"), StepEvent::Retired);
    let chained = cpu.block_stats().chained_transfers;
    assert!(chained > 0, "the loop must chain before the host stores");

    // A store to the data segment must NOT disturb the block table: the
    // whole point of `host_store_u64` over `mem_mut` is that runtime heap
    // writes leave code caches alone.
    let quiet = cpu.block_stats();
    cpu.host_store_u64(DATA_BASE, 0xdead_beef_dead_beef);
    assert_eq!(cpu.run(4).expect("no trap"), StepEvent::Retired);
    let after_data = cpu.block_stats();
    assert_eq!(after_data.revalidations, quiet.revalidations, "no epoch bump for data");
    assert_eq!(after_data.rebuilds, quiet.rebuilds, "no block dropped for a data store");

    // A store overlapping the text segment MUST invalidate: patch the
    // first two instructions (addi+j) in one 64-bit write, keeping the
    // jump word intact.
    let jump_word = cpu.mem().read_u32(TEXT_BASE + 4);
    let patch = (u64::from(jump_word) << 32) | u64::from(addi_a0(100));
    cpu.host_store_u64(TEXT_BASE, patch);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    // 6 iterations: 3 + 1 (before the patch landed) at +1, 2 at +100.
    assert_eq!(cpu.regs().read(Reg::A0).v, 204);
    let after_text = cpu.block_stats();
    assert!(after_text.rebuilds > after_data.rebuilds, "patched block must rebuild");
}

#[test]
fn host_write_through_mem_mut_is_observed() {
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after the first pass
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 2);
    // First pass: three instructions, all of which fill predecode slots.
    for _ in 0..3 {
        assert_eq!(cpu.step().expect("no trap"), StepEvent::Retired);
    }
    assert_eq!(cpu.regs().read(Reg::A0).v, 1);
    // A native helper rewrites the patch target behind the table's back.
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    let stats = cpu.predecode_stats();
    assert!(stats.hits > 0, "the unpatched loop body must hit the table");
    assert!(
        stats.revalidations > 0,
        "untouched slots must revalidate (not re-decode) after the host write"
    );
}
