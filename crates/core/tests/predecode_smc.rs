//! Self-modifying-code correctness for the predecode and block engines.
//!
//! The predecoded-instruction table and the basic-block table both cache
//! decoded text words; these tests prove the two invalidation paths work
//! end to end for each: guest stores into the text segment (`sw` over an
//! instruction) and host writes through `Cpu::mem_mut`. In both cases
//! re-executing the patched address must observe the new instruction, and
//! the architectural counters must match a run with the engines disabled.
//! The block-engine tests additionally pin the hardest case: a store that
//! patches an instruction *later in the currently executing block*, which
//! must abandon the in-flight block run rather than retire stale decodes.

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;
use tarch_isa::{AluImmOp, Instruction, Reg};

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

fn addi_a0(imm: i32) -> u32 {
    Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm }
        .encode()
        .expect("encodable")
}

/// The first instruction (at exactly `TEXT_BASE`) is the patch target:
/// pass one executes `addi a0, a0, 1`, stores a replacement word over it,
/// and loops; pass two must execute the replacement.
const SMC_SRC: &str = "
top:
    addi a0, a0, 1      # patch target: rewritten to addi a0, a0, 100
    bnez s2, done
    li   s2, 1
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    li   s4, 0x1000     # text base: address of the patch target
    sw   t0, 0(s4)
    bnez s2, top
done:
    halt
";

fn run_smc(predecode: bool) -> Cpu {
    let mut program = assemble(SMC_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1), "patch target must sit at TEXT_BASE");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { predecode, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_into_text_is_observed() {
    let cpu = run_smc(true);
    // 1 from the original instruction, 100 from its replacement.
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    assert!(
        cpu.predecode_stats().invalidations > 0,
        "the store over the patch target must invalidate its slot"
    );
}

#[test]
fn smc_counters_match_decode_every_step() {
    let on = run_smc(true);
    let off = run_smc(false);
    assert_eq!(off.regs().read(Reg::A0).v, 101, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
    assert_eq!(off.predecode_stats().hits, 0, "predecode off must never serve a fetch");
}

/// One straight-line block whose store patches an instruction *further
/// down the same block*. The executor holds a detached run of the block's
/// decoded instructions; after the store it must notice the generation
/// bump, abandon the run, and rebuild — executing the replacement, not
/// the stale decode.
/// The second pass re-enters the patched block from the top, forcing the
/// table to notice the changed word and rebuild the dropped entry.
const MID_BLOCK_SRC: &str = "
start:
    li   s3, 0x20000    # data base: holds the replacement word
    lw   t0, 0(s3)
    la   s4, patch
    sw   t0, 0(s4)      # patches an instruction later in THIS block
    addi a0, a0, 1
patch:
    addi a0, a0, 7      # must execute as addi a0, a0, 100
    addi a0, a0, 1
    bnez s2, done
    li   s2, 1
    bnez s2, start
done:
    halt
";

fn run_mid_block(blocks: bool, predecode: bool) -> Cpu {
    let mut program = assemble(MID_BLOCK_SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    program.data = addi_a0(100).to_le_bytes().to_vec();
    let mut cpu = Cpu::new(CoreConfig { blocks, predecode, ..CoreConfig::paper() });
    cpu.load_program(&program);
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    cpu
}

#[test]
fn guest_store_mid_block_invalidates_the_running_block() {
    let cpu = run_mid_block(true, true);
    // Two passes of 1 + 100 (replacement) + 1; a stale block run would
    // retire the original addi 7 for 9 per pass.
    assert_eq!(cpu.regs().read(Reg::A0).v, 204);
    let stats = cpu.block_stats();
    assert!(stats.store_invalidations > 0, "the store must bump the block generation");
    assert!(stats.rebuilds > 0, "the patched block must be dropped and rebuilt");
    assert!(stats.builds >= 2, "initial build plus the rebuild after the patch");
}

#[test]
fn mid_block_smc_counters_match_stepwise_decode() {
    let on = run_mid_block(true, true);
    let off = run_mid_block(false, false);
    assert_eq!(off.regs().read(Reg::A0).v, 204, "reference run must also see the patch");
    assert_eq!(on.counters(), off.counters());
    assert_eq!(on.branch_stats(), off.branch_stats());
}

#[test]
fn host_write_through_mem_mut_revalidates_blocks() {
    // Two blocks in a loop: block A holds the patch target, block B is
    // untouched. After the host write, A must rebuild (its word changed)
    // while B revalidates in place.
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after the first pass
        j    mid
    mid:
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 2);
    // First full iteration: both blocks built and executed.
    assert_eq!(cpu.run(4).expect("no trap"), StepEvent::Retired);
    assert_eq!(cpu.regs().read(Reg::A0).v, 1);
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    let stats = cpu.block_stats();
    assert!(stats.rebuilds > 0, "the patched block must re-decode after the host write");
    assert!(
        stats.revalidations > 0,
        "the untouched block must revalidate (not re-decode) after the epoch bump"
    );
}

#[test]
fn host_write_through_mem_mut_is_observed() {
    let src = "
    top:
        addi a0, a0, 1      # patched by the host after the first pass
        addi s1, s1, -1
        bnez s1, top
        halt
    ";
    let program = assemble(src, TEXT_BASE, DATA_BASE).expect("assembles");
    assert_eq!(program.text[0], addi_a0(1));
    let mut cpu = Cpu::new(CoreConfig::paper());
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(Reg::S1, 2);
    // First pass: three instructions, all of which fill predecode slots.
    for _ in 0..3 {
        assert_eq!(cpu.step().expect("no trap"), StepEvent::Retired);
    }
    assert_eq!(cpu.regs().read(Reg::A0).v, 1);
    // A native helper rewrites the patch target behind the table's back.
    cpu.mem_mut().write_u32(TEXT_BASE, addi_a0(100));
    assert_eq!(cpu.run(10_000).expect("no trap"), StepEvent::Halted);
    assert_eq!(cpu.regs().read(Reg::A0).v, 101);
    let stats = cpu.predecode_stats();
    assert!(stats.hits > 0, "the unpatched loop body must hit the table");
    assert!(
        stats.revalidations > 0,
        "untouched slots must revalidate (not re-decode) after the host write"
    );
}
