//! In-process A/B microbenchmark for the basic-block engine's host fast
//! paths (macro-op fusion + block chaining).
//!
//! The default `repro bench` cells run for tens of milliseconds each, so
//! on a busy 1-CPU box run-to-run wall-clock noise (±20% observed) swamps
//! the effect being measured. This example removes every nuisance
//! variable it can: one process, one guest program dense in fusable pairs
//! (the shapes `repro bench --profile-pairs` ranks highest on the real
//! interpreters: `slli+add`, `add+ld`, `addi+srli`, `addi+bne`),
//! alternating fused/chained and plain-block runs back to back, reporting
//! per-config medians over many repetitions.
//!
//! Usage: `cargo run --release -p tarch-core --example hotloop [iters] [reps]`

use std::time::Instant;

use tarch_core::{CoreConfig, Cpu, StepEvent};
use tarch_isa::text::assemble;

const TEXT_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x2_0000;

/// 9-instruction loop body, 8 of which fuse into 4 pairs.
const SRC: &str = "
    li   s1, 0x20000    # data window (4 KiB, see `data` below)
loop:
    slli t0, s3, 3
    andi t0, t0, 2040   # slli+andi -> AluPair; index stays in-window
    add  t1, s1, t0
    ld   t2, 0(t1)      # add+ld   -> AluLoad
    addi s3, s3, 1
    srli t3, s3, 2      # addi+srli -> AluPair
    addi a0, a0, -1
    bnez a0, loop       # addi+bne -> AluBranch
    halt
";

fn run_once(fuse: bool, chain: bool, iters: u64) -> (f64, u64) {
    let mut program = assemble(SRC, TEXT_BASE, DATA_BASE).expect("assembles");
    program.data = vec![0u8; 4096];
    let config =
        CoreConfig { fuse, chain_blocks: chain, ..CoreConfig::paper() };
    let mut cpu = Cpu::new(config);
    cpu.load_program(&program);
    cpu.regs_mut().write_untyped(tarch_isa::Reg::A0, iters);
    let start = Instant::now();
    let event = cpu.run(u64::MAX).expect("no trap");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(event, StepEvent::Halted);
    let instrs = cpu.counters().instructions;
    (instrs as f64 / secs / 1e6, instrs)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: u64 = args.next().map_or(2_000_000, |s| s.parse().expect("iters"));
    let reps: usize = args.next().map_or(9, |s| s.parse().expect("reps"));

    // Warm-up both configs once (page faults, first-touch, frequency).
    run_once(true, true, iters / 10);
    run_once(false, false, iters / 10);

    let mut on = Vec::with_capacity(reps);
    let mut off = Vec::with_capacity(reps);
    let mut retired = (0u64, 0u64);
    for _ in 0..reps {
        let (m_on, n_on) = run_once(true, true, iters);
        let (m_off, n_off) = run_once(false, false, iters);
        retired = (n_on, n_off);
        on.push(m_on);
        off.push(m_off);
        println!("  on {m_on:7.1} MIPS   off {m_off:7.1} MIPS");
    }
    assert_eq!(retired.0, retired.1, "fused/unfused must retire identically");
    let (m_on, m_off) = (median(&mut on), median(&mut off));
    println!(
        "median: on {m_on:.1} MIPS, off {m_off:.1} MIPS, ratio {:.3}x ({} instrs/run)",
        m_on / m_off,
        retired.0
    );
}
