//! Context-switch support for the typed state (paper Section 5,
//! "OS interactions").
//!
//! The F/I̅ bits and tag fields of the unified register file, the
//! special-purpose registers (`R_offset`, `R_shift`, `R_mask`, `R_hdl`)
//! and the Type Rule Table contents are architectural state that must be
//! preserved across context switches. [`TypedState`] captures exactly that
//! state and restores it onto a core.

use crate::cpu::Cpu;
use crate::tagio::SprState;
use tarch_isa::TrtRule;

/// Snapshot of the Typed Architecture extension's architectural state.
///
/// Register *values* and the pc are saved by the ordinary OS trap path;
/// this structure covers only the state the extension adds.
///
/// # Examples
///
/// ```
/// use tarch_core::{CoreConfig, Cpu, TypedState};
///
/// let mut cpu = Cpu::new(CoreConfig::paper());
/// cpu.spr_mut().mask = 0x0f;
/// let saved = TypedState::save(&cpu);
///
/// let mut other = Cpu::new(CoreConfig::paper());
/// saved.restore(&mut other);
/// assert_eq!(other.spr().mask, 0x0f);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TypedState {
    /// Tags and F/I̅ bits of all 32 unified registers.
    pub tags: [(u8, bool); 32],
    /// Special-purpose registers (including `R_hdl`).
    pub spr: SprState,
    /// Type Rule Table rules, oldest first.
    pub trt_rules: Vec<TrtRule>,
}

impl TypedState {
    /// Captures the typed state from a core.
    pub fn save(cpu: &Cpu) -> TypedState {
        TypedState {
            tags: cpu.regs().tag_state(),
            spr: cpu.spr(),
            trt_rules: cpu.trt().rules().to_vec(),
        }
    }

    /// Restores the typed state onto a core (flushing its current TRT).
    pub fn restore(&self, cpu: &mut Cpu) {
        cpu.regs_mut().restore_tag_state(&self.tags);
        *cpu.spr_mut() = self.spr;
        cpu.trt_mut().flush();
        for rule in &self.trt_rules {
            cpu.trt_mut().push(*rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::regfile::TaggedValue;
    use tarch_isa::{Reg, TrtClass};

    #[test]
    fn save_restore_roundtrip() {
        let mut a = Cpu::new(CoreConfig::paper());
        a.regs_mut().write(Reg::A3, TaggedValue::tagged(77, 0x83));
        a.spr_mut().offset = 0b001;
        a.spr_mut().shift = 47;
        a.spr_mut().hdl = 0xbeef0;
        a.trt_mut().push(TrtRule::new(TrtClass::Xadd, 0x13, 0x13, 0x13));
        a.trt_mut().push(TrtRule::new(TrtClass::Tchk, 5, 0x13, 5));

        let state = TypedState::save(&a);
        let mut b = Cpu::new(CoreConfig::paper());
        state.restore(&mut b);

        assert_eq!(b.regs().read(Reg::A3).t, 0x83);
        assert!(b.regs().read(Reg::A3).f);
        assert_eq!(b.spr().shift, 47);
        assert_eq!(b.spr().hdl, 0xbeef0);
        assert_eq!(b.trt().lookup(TrtClass::Tchk, 5, 0x13), Some(5));
        assert_eq!(b.trt().len(), 2);
    }

    #[test]
    fn restore_replaces_existing_trt() {
        let mut a = Cpu::new(CoreConfig::paper());
        a.trt_mut().push(TrtRule::new(TrtClass::Xmul, 1, 1, 1));
        let state = TypedState::save(&a);

        let mut b = Cpu::new(CoreConfig::paper());
        b.trt_mut().push(TrtRule::new(TrtClass::Xadd, 9, 9, 9));
        state.restore(&mut b);
        assert_eq!(b.trt().lookup(TrtClass::Xadd, 9, 9), None);
        assert_eq!(b.trt().lookup(TrtClass::Xmul, 1, 1), Some(1));
    }
}
