//! The Type Rule Table (TRT).
//!
//! A small content-addressable memory looked up with
//! `(opcode class, type_in1, type_in2)` and producing the output type tag
//! (Section 3.2). The engine preloads it once at launch with `set_trt`
//! (Table 5 shows the Lua/SpiderMonkey contents); `flush_trt` clears it on
//! script exit.

use tarch_isa::{TrtClass, TrtRule};

/// The Type Rule Table: an 8-entry CAM in the paper's synthesis.
///
/// # Examples
///
/// ```
/// use tarch_core::TypeRuleTable;
/// use tarch_isa::{TrtClass, TrtRule};
///
/// let mut trt = TypeRuleTable::new(8);
/// trt.push(TrtRule::new(TrtClass::Xadd, 0x13, 0x13, 0x13));
/// assert_eq!(trt.lookup(TrtClass::Xadd, 0x13, 0x13), Some(0x13));
/// assert_eq!(trt.lookup(TrtClass::Xadd, 0x13, 0x83), None);
/// ```
#[derive(Debug, Clone)]
pub struct TypeRuleTable {
    entries: Vec<TrtRule>,
    capacity: usize,
    /// Next slot overwritten when the table is full (FIFO).
    cursor: usize,
}

impl TypeRuleTable {
    /// Creates an empty table with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TypeRuleTable {
        assert!(capacity > 0, "TRT needs at least one entry");
        TypeRuleTable { entries: Vec::with_capacity(capacity), capacity, cursor: 0 }
    }

    /// Installs a rule (`set_trt`). When the table is full the oldest entry
    /// is overwritten.
    pub fn push(&mut self, rule: TrtRule) {
        if self.entries.len() < self.capacity {
            self.entries.push(rule);
        } else {
            self.entries[self.cursor] = rule;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Looks up the output tag for `(class, t1, t2)`.
    pub fn lookup(&self, class: TrtClass, t1: u8, t2: u8) -> Option<u8> {
        self.entries
            .iter()
            .find(|r| r.class == class && r.in1 == t1 && r.in2 == t2)
            .map(|r| r.out)
    }

    /// Removes all rules (`flush_trt`).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The installed rules, oldest first (context-switch save/restore).
    pub fn rules(&self) -> &[TrtRule] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_distinguishes_class_and_operand_order() {
        let mut t = TypeRuleTable::new(8);
        t.push(TrtRule::new(TrtClass::Xadd, 1, 2, 3));
        assert_eq!(t.lookup(TrtClass::Xadd, 1, 2), Some(3));
        assert_eq!(t.lookup(TrtClass::Xadd, 2, 1), None);
        assert_eq!(t.lookup(TrtClass::Xsub, 1, 2), None);
    }

    #[test]
    fn fifo_replacement_when_full() {
        let mut t = TypeRuleTable::new(2);
        t.push(TrtRule::new(TrtClass::Xadd, 1, 1, 1));
        t.push(TrtRule::new(TrtClass::Xadd, 2, 2, 2));
        t.push(TrtRule::new(TrtClass::Xadd, 3, 3, 3)); // evicts (1,1,1)
        assert_eq!(t.lookup(TrtClass::Xadd, 1, 1), None);
        assert_eq!(t.lookup(TrtClass::Xadd, 2, 2), Some(2));
        assert_eq!(t.lookup(TrtClass::Xadd, 3, 3), Some(3));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn flush_empties() {
        let mut t = TypeRuleTable::new(4);
        t.push(TrtRule::new(TrtClass::Tchk, 5, 0x13, 5));
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.lookup(TrtClass::Tchk, 5, 0x13), None);
    }
}
