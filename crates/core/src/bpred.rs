//! Branch prediction: gshare + BTB + return address stack.
//!
//! Matches the paper's front end (Table 6): a 32 B gshare predictor
//! (128 two-bit counters, 7-bit global history), a 62-entry fully
//! associative BTB, and a 2-entry RAS, with a 2-cycle mispredict penalty.
//!
//! The model is queried once per control-flow instruction and reports
//! whether the front end would have fetched the correct path; the timing
//! model charges the penalty for mispredictions.

use crate::config::BranchConfig;

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted (direction or target).
    pub branch_misses: u64,
    /// Unconditional jumps/calls/returns executed.
    pub jumps: u64,
    /// Jumps whose target the front end missed.
    pub jump_misses: u64,
}

impl BranchStats {
    /// Total control-flow mispredictions.
    pub fn total_misses(&self) -> u64 {
        self.branch_misses + self.jump_misses
    }
}

/// The combined branch predictor.
///
/// # Examples
///
/// ```
/// use tarch_core::{BranchConfig, BranchPredictor};
/// let mut bp = BranchPredictor::new(BranchConfig::paper());
/// // A loop branch taken many times becomes well predicted.
/// let mut last_miss = true;
/// for _ in 0..16 {
///     last_miss = !bp.predict_branch(0x1000, true, 0x0f00);
/// }
/// assert!(!last_miss);
/// ```
#[derive(Debug)]
pub struct BranchPredictor {
    config: BranchConfig,
    counters: Vec<u8>,
    history: u64,
    btb: Vec<(u64, u64, u64)>, // (pc, target, last_use)
    ras: Vec<u64>,
    tick: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters and empty BTB/RAS.
    pub fn new(config: BranchConfig) -> BranchPredictor {
        BranchPredictor {
            config,
            counters: vec![1; config.gshare_entries],
            history: 0,
            btb: Vec::with_capacity(config.btb_entries),
            ras: Vec::with_capacity(config.ras_entries),
            tick: 0,
            stats: BranchStats::default(),
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) % self.config.gshare_entries as u64) as usize
    }

    fn btb_lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        if let Some(e) = self.btb.iter_mut().find(|(p, _, _)| *p == pc) {
            e.2 = self.tick;
            Some(e.1)
        } else {
            None
        }
    }

    fn btb_install(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        if let Some(e) = self.btb.iter_mut().find(|(p, _, _)| *p == pc) {
            e.1 = target;
            e.2 = self.tick;
            return;
        }
        if self.btb.len() == self.config.btb_entries {
            let lru = self
                .btb
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.btb.swap_remove(lru);
        }
        self.btb.push((pc, target, self.tick));
    }

    /// Processes a conditional branch; returns whether the front end
    /// predicted correctly.
    pub fn predict_branch(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.stats.branches += 1;
        let idx = self.gshare_index(pc);
        let predicted_taken = self.counters[idx] >= 2;

        // Direction prediction; a predicted-taken branch also needs the
        // target from the BTB.
        let correct = if predicted_taken == taken {
            if taken {
                self.btb_lookup(pc) == Some(target)
            } else {
                true
            }
        } else {
            false
        };

        // Update state.
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.config.history_bits) - 1);
        if taken {
            self.btb_install(pc, target);
        }

        if !correct {
            self.stats.branch_misses += 1;
        }
        correct
    }

    /// Processes a direct jump (`jal`); returns whether the front end had
    /// the target. Pushes the return address for calls.
    pub fn predict_jump(&mut self, pc: u64, target: u64, is_call: bool) -> bool {
        self.stats.jumps += 1;
        let correct = self.btb_lookup(pc) == Some(target);
        self.btb_install(pc, target);
        if is_call {
            self.ras_push(pc + 4);
        }
        if !correct {
            self.stats.jump_misses += 1;
        }
        correct
    }

    /// Processes an indirect jump (`jalr`); `is_return`/`is_call` classify
    /// `ret` and indirect calls for RAS handling.
    pub fn predict_indirect(&mut self, pc: u64, target: u64, is_call: bool, is_return: bool) -> bool {
        self.stats.jumps += 1;
        let predicted = if is_return {
            self.ras_pop()
        } else {
            self.btb_lookup(pc)
        };
        let correct = predicted == Some(target);
        if !is_return {
            self.btb_install(pc, target);
        }
        if is_call {
            self.ras_push(pc + 4);
        }
        if !correct {
            self.stats.jump_misses += 1;
        }
        correct
    }

    fn ras_push(&mut self, addr: u64) {
        if self.ras.len() == self.config.ras_entries {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    fn ras_pop(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Mispredict penalty in cycles.
    pub fn miss_penalty(&self) -> u64 {
        self.config.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::paper())
    }

    #[test]
    fn loop_branch_trains_to_steady_state() {
        let mut p = bp();
        // Warm-up needs up to history_bits+2 misses (each shifted history
        // pattern indexes a fresh counter); steady state must be perfect.
        let mut late_misses = 0;
        for i in 0..100 {
            if !p.predict_branch(0x1000, true, 0x0f00) && i >= 20 {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0, "steady-state loop branch must be predicted");
    }

    #[test]
    fn alternating_pattern_learned_by_history() {
        let mut p = bp();
        let mut last_20_misses = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let ok = p.predict_branch(0x2000, taken, 0x2100);
            if i >= 180 && !ok {
                last_20_misses += 1;
            }
        }
        assert_eq!(last_20_misses, 0, "gshare should learn a period-2 pattern");
    }

    #[test]
    fn never_taken_branch_is_free() {
        let mut p = bp();
        for _ in 0..50 {
            assert!(p.predict_branch(0x3000, false, 0x3100));
        }
        assert_eq!(p.stats().branch_misses, 0);
    }

    #[test]
    fn direct_jump_hits_after_install() {
        let mut p = bp();
        assert!(!p.predict_jump(0x4000, 0x5000, false));
        assert!(p.predict_jump(0x4000, 0x5000, false));
    }

    #[test]
    fn ras_predicts_matched_call_return() {
        let mut p = bp();
        p.predict_jump(0x1000, 0x2000, true); // call from 0x1000
        // Return to 0x1004 predicted by RAS.
        assert!(p.predict_indirect(0x2010, 0x1004, false, true));
        // Unmatched return: RAS empty now.
        assert!(!p.predict_indirect(0x2010, 0x1004, false, true));
    }

    #[test]
    fn ras_depth_two_overflows() {
        let mut p = bp();
        p.predict_jump(0x1000, 0xa000, true); // ra 0x1004
        p.predict_jump(0x2000, 0xb000, true); // ra 0x2004
        p.predict_jump(0x3000, 0xc000, true); // ra 0x3004 — evicts 0x1004
        assert!(p.predict_indirect(0xc000, 0x3004, false, true));
        assert!(p.predict_indirect(0xb000, 0x2004, false, true));
        assert!(!p.predict_indirect(0xa000, 0x1004, false, true), "deepest frame was evicted");
    }

    #[test]
    fn indirect_jump_learns_stable_target_and_misses_on_change() {
        let mut p = bp();
        assert!(!p.predict_indirect(0x6000, 0x7000, false, false));
        assert!(p.predict_indirect(0x6000, 0x7000, false, false));
        // Dispatch-loop behaviour: target changes → miss, then relearns.
        assert!(!p.predict_indirect(0x6000, 0x8000, false, false));
        assert!(p.predict_indirect(0x6000, 0x8000, false, false));
    }

    #[test]
    fn btb_capacity_eviction() {
        let mut p = BranchPredictor::new(BranchConfig { btb_entries: 2, ..BranchConfig::paper() });
        p.predict_jump(0x100, 0x1, false);
        p.predict_jump(0x200, 0x2, false);
        p.predict_jump(0x100, 0x1, false); // touch
        p.predict_jump(0x300, 0x3, false); // evict 0x200
        assert!(p.predict_jump(0x100, 0x1, false));
        assert!(!p.predict_jump(0x200, 0x2, false));
    }
}
