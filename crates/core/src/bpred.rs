//! Branch prediction: gshare + BTB + return address stack.
//!
//! Matches the paper's front end (Table 6): a 32 B gshare predictor
//! (128 two-bit counters, 7-bit global history), a 62-entry fully
//! associative BTB, and a 2-entry RAS, with a 2-cycle mispredict penalty.
//!
//! The model is queried once per control-flow instruction and reports
//! whether the front end would have fetched the correct path; the timing
//! model charges the penalty for mispredictions.

use crate::config::BranchConfig;

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted (direction or target).
    pub branch_misses: u64,
    /// Unconditional jumps/calls/returns executed.
    pub jumps: u64,
    /// Jumps whose target the front end missed.
    pub jump_misses: u64,
}

impl BranchStats {
    /// Total control-flow mispredictions.
    pub fn total_misses(&self) -> u64 {
        self.branch_misses + self.jump_misses
    }
}

/// The combined branch predictor.
///
/// # Examples
///
/// ```
/// use tarch_core::{BranchConfig, BranchPredictor};
/// let mut bp = BranchPredictor::new(BranchConfig::paper());
/// // A loop branch taken many times becomes well predicted.
/// let mut last_miss = true;
/// for _ in 0..16 {
///     last_miss = !bp.predict_branch(0x1000, true, 0x0f00);
/// }
/// assert!(!last_miss);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchConfig,
    counters: Vec<u8>,
    history: u64,
    btb: Vec<(u64, u64, u64)>, // (pc, target, last_use)
    ras: Vec<u64>,
    tick: u64,
    stats: BranchStats,
    fast_path: bool,
    // Direct-mapped memo of `pc -> btb index`, so the fully-associative
    // BTB search is one compare for hot control-flow pcs instead of a
    // 62-entry scan (and the lookup-then-install pair on every taken
    // branch reuses the found index). The memoized index is re-validated
    // against the stored entry before use — `swap_remove` eviction
    // reshuffles indices — so a stale memo degrades to the scan instead
    // of corrupting predictions.
    side: Vec<(u64, u32)>, // (pc, btb index)
}

/// Direct-mapped side-index size (power of two). Word-aligned pcs index
/// it by `(pc >> 2) & (SIDE_SLOTS - 1)`.
const SIDE_SLOTS: usize = 1024;

/// Sentinel pc for an empty side-index slot (never a real word-aligned pc).
const SIDE_NONE: u64 = u64::MAX;

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters and empty BTB/RAS.
    pub fn new(config: BranchConfig) -> BranchPredictor {
        BranchPredictor::with_fast_path(config, true)
    }

    /// Creates a predictor, choosing whether BTB searches may use the
    /// memoized side index or always scan. Both produce bit-identical
    /// predictions, state, and statistics; the toggle exists so
    /// equivalence tests can diff them.
    pub fn with_fast_path(config: BranchConfig, fast_path: bool) -> BranchPredictor {
        BranchPredictor {
            config,
            counters: vec![1; config.gshare_entries],
            history: 0,
            btb: Vec::with_capacity(config.btb_entries),
            ras: Vec::with_capacity(config.ras_entries),
            tick: 0,
            stats: BranchStats::default(),
            fast_path,
            side: if fast_path { vec![(SIDE_NONE, 0); SIDE_SLOTS] } else { Vec::new() },
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) % self.config.gshare_entries as u64) as usize
    }

    #[inline]
    fn side_slot(pc: u64) -> usize {
        ((pc >> 2) as usize) & (SIDE_SLOTS - 1)
    }

    /// Finds `pc`'s BTB entry: memoized index when valid, full scan
    /// otherwise (refreshing the memo on a scan hit).
    #[inline]
    fn btb_find(&mut self, pc: u64) -> Option<usize> {
        if self.fast_path {
            let (memo_pc, memo_idx) = self.side[Self::side_slot(pc)];
            if memo_pc == pc {
                if let Some(e) = self.btb.get(memo_idx as usize) {
                    if e.0 == pc {
                        return Some(memo_idx as usize);
                    }
                }
            }
        }
        let found = self.btb.iter().position(|(p, _, _)| *p == pc);
        if self.fast_path {
            if let Some(i) = found {
                self.side[Self::side_slot(pc)] = (pc, i as u32);
            }
        }
        found
    }

    fn btb_lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        match self.btb_find(pc) {
            Some(i) => {
                let e = &mut self.btb[i];
                e.2 = self.tick;
                Some(e.1)
            }
            None => None,
        }
    }

    fn btb_install(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        if let Some(i) = self.btb_find(pc) {
            let e = &mut self.btb[i];
            e.1 = target;
            e.2 = self.tick;
            return;
        }
        if self.btb.len() == self.config.btb_entries {
            let lru = self
                .btb
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.btb.swap_remove(lru);
            // `swap_remove` moved the former last entry into `lru`; keep
            // its memo pointing at the right index.
            if self.fast_path {
                if let Some(moved) = self.btb.get(lru) {
                    self.side[Self::side_slot(moved.0)] = (moved.0, lru as u32);
                }
            }
        }
        self.btb.push((pc, target, self.tick));
        if self.fast_path {
            self.side[Self::side_slot(pc)] = (pc, (self.btb.len() - 1) as u32);
        }
    }

    /// Processes a conditional branch; returns whether the front end
    /// predicted correctly.
    pub fn predict_branch(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.stats.branches += 1;
        let idx = self.gshare_index(pc);
        let predicted_taken = self.counters[idx] >= 2;

        // Direction prediction; a predicted-taken branch also needs the
        // target from the BTB.
        let correct = if predicted_taken == taken {
            if taken {
                self.btb_lookup(pc) == Some(target)
            } else {
                true
            }
        } else {
            false
        };

        // Update state.
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.config.history_bits) - 1);
        if taken {
            self.btb_install(pc, target);
        }

        if !correct {
            self.stats.branch_misses += 1;
        }
        correct
    }

    /// Processes a direct jump (`jal`); returns whether the front end had
    /// the target. Pushes the return address for calls.
    pub fn predict_jump(&mut self, pc: u64, target: u64, is_call: bool) -> bool {
        self.stats.jumps += 1;
        let correct = self.btb_lookup(pc) == Some(target);
        self.btb_install(pc, target);
        if is_call {
            self.ras_push(pc + 4);
        }
        if !correct {
            self.stats.jump_misses += 1;
        }
        correct
    }

    /// Processes an indirect jump (`jalr`); `is_return`/`is_call` classify
    /// `ret` and indirect calls for RAS handling.
    pub fn predict_indirect(&mut self, pc: u64, target: u64, is_call: bool, is_return: bool) -> bool {
        self.stats.jumps += 1;
        let predicted = if is_return {
            self.ras_pop()
        } else {
            self.btb_lookup(pc)
        };
        let correct = predicted == Some(target);
        if !is_return {
            self.btb_install(pc, target);
        }
        if is_call {
            self.ras_push(pc + 4);
        }
        if !correct {
            self.stats.jump_misses += 1;
        }
        correct
    }

    fn ras_push(&mut self, addr: u64) {
        if self.ras.len() == self.config.ras_entries {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    fn ras_pop(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Mispredict penalty in cycles.
    pub fn miss_penalty(&self) -> u64 {
        self.config.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::paper())
    }

    #[test]
    fn loop_branch_trains_to_steady_state() {
        let mut p = bp();
        // Warm-up needs up to history_bits+2 misses (each shifted history
        // pattern indexes a fresh counter); steady state must be perfect.
        let mut late_misses = 0;
        for i in 0..100 {
            if !p.predict_branch(0x1000, true, 0x0f00) && i >= 20 {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0, "steady-state loop branch must be predicted");
    }

    #[test]
    fn alternating_pattern_learned_by_history() {
        let mut p = bp();
        let mut last_20_misses = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let ok = p.predict_branch(0x2000, taken, 0x2100);
            if i >= 180 && !ok {
                last_20_misses += 1;
            }
        }
        assert_eq!(last_20_misses, 0, "gshare should learn a period-2 pattern");
    }

    #[test]
    fn never_taken_branch_is_free() {
        let mut p = bp();
        for _ in 0..50 {
            assert!(p.predict_branch(0x3000, false, 0x3100));
        }
        assert_eq!(p.stats().branch_misses, 0);
    }

    #[test]
    fn direct_jump_hits_after_install() {
        let mut p = bp();
        assert!(!p.predict_jump(0x4000, 0x5000, false));
        assert!(p.predict_jump(0x4000, 0x5000, false));
    }

    #[test]
    fn ras_predicts_matched_call_return() {
        let mut p = bp();
        p.predict_jump(0x1000, 0x2000, true); // call from 0x1000
        // Return to 0x1004 predicted by RAS.
        assert!(p.predict_indirect(0x2010, 0x1004, false, true));
        // Unmatched return: RAS empty now.
        assert!(!p.predict_indirect(0x2010, 0x1004, false, true));
    }

    #[test]
    fn ras_depth_two_overflows() {
        let mut p = bp();
        p.predict_jump(0x1000, 0xa000, true); // ra 0x1004
        p.predict_jump(0x2000, 0xb000, true); // ra 0x2004
        p.predict_jump(0x3000, 0xc000, true); // ra 0x3004 — evicts 0x1004
        assert!(p.predict_indirect(0xc000, 0x3004, false, true));
        assert!(p.predict_indirect(0xb000, 0x2004, false, true));
        assert!(!p.predict_indirect(0xa000, 0x1004, false, true), "deepest frame was evicted");
    }

    #[test]
    fn indirect_jump_learns_stable_target_and_misses_on_change() {
        let mut p = bp();
        assert!(!p.predict_indirect(0x6000, 0x7000, false, false));
        assert!(p.predict_indirect(0x6000, 0x7000, false, false));
        // Dispatch-loop behaviour: target changes → miss, then relearns.
        assert!(!p.predict_indirect(0x6000, 0x8000, false, false));
        assert!(p.predict_indirect(0x6000, 0x8000, false, false));
    }

    /// The memoized BTB index must be a pure host-side shortcut: random
    /// branch/jump/return streams — sized to force constant BTB eviction
    /// and `swap_remove` reshuffling — must give identical predictions
    /// and statistics with the memo on and off.
    #[test]
    fn side_index_equivalent_to_scan_under_eviction_churn() {
        use tarch_testkit::Rng;
        let mut rng = Rng::new(0xb7b);
        for round in 0..32 {
            let mut fast = BranchPredictor::with_fast_path(BranchConfig::paper(), true);
            let mut slow = BranchPredictor::with_fast_path(BranchConfig::paper(), false);
            for step in 0..2000 {
                // ~96 distinct control pcs against a 62-entry BTB.
                let pc = 0x1000 + rng.range_u64(0, 96) * 4;
                let target = 0x4000 + rng.range_u64(0, 64) * 4;
                let (f, s) = match rng.range_u64(0, 4) {
                    0 => {
                        let taken = rng.range_u64(0, 2) == 0;
                        (
                            fast.predict_branch(pc, taken, target),
                            slow.predict_branch(pc, taken, target),
                        )
                    }
                    1 => {
                        let is_call = rng.range_u64(0, 2) == 0;
                        (
                            fast.predict_jump(pc, target, is_call),
                            slow.predict_jump(pc, target, is_call),
                        )
                    }
                    _ => {
                        let is_return = rng.range_u64(0, 2) == 0;
                        (
                            fast.predict_indirect(pc, target, !is_return, is_return),
                            slow.predict_indirect(pc, target, !is_return, is_return),
                        )
                    }
                };
                assert_eq!(f, s, "round {round} step {step} pc {pc:#x} diverged");
            }
            assert_eq!(fast.stats(), slow.stats(), "round {round} stats diverged");
            assert_eq!(fast.btb, slow.btb, "round {round} BTB state diverged");
        }
    }

    #[test]
    fn btb_capacity_eviction() {
        let mut p = BranchPredictor::new(BranchConfig { btb_entries: 2, ..BranchConfig::paper() });
        p.predict_jump(0x100, 0x1, false);
        p.predict_jump(0x200, 0x2, false);
        p.predict_jump(0x100, 0x1, false); // touch
        p.predict_jump(0x300, 0x3, false); // evict 0x200
        assert!(p.predict_jump(0x100, 0x1, false));
        assert!(!p.predict_jump(0x200, 0x2, false));
    }
}
