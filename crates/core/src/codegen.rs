//! Tier-2 code generation: the emitter-trait split and the template
//! backend that compiles hot blocks into host-side specialized closures.
//!
//! The basic-block engine (PRs 3–4) executes a cached `[BlockOp]` run
//! through a per-op `match` in `Cpu::run_blocks` — tier 1. This module
//! is the next rung of the tiering ladder: the per-op walk over a block
//! is factored behind the [`CodeGenerator`] trait (one emit method per
//! `BlockOp` shape, in the style of aivm's `CodeGeneratorImpl`, with an
//! interpreter backend and a compiled backend co-existing), and hot
//! blocks are *compiled* — once per block, off the hot path — into a
//! single nested closure per block:
//!
//! * **constants folded**: each op's guest pc, fall-through pc,
//!   destructured instruction fields (register indices, immediates,
//!   widths), and retired-instruction count are captured constants —
//!   the per-execution `match op`, the `else { unreachable!() }`
//!   destructuring, and the running `ipc`/`executed` bookkeeping are
//!   all gone;
//! * **statically-dead checks dropped**: the same legality analysis
//!   that justifies macro-op fusion (`fuse_pair`/`safe_one` in
//!   `blocks.rs`) justifies dropping the trap checkpoint, stop, and
//!   fall-through checks where an op provably cannot need them, and
//!   the budget-clip test disappears entirely (a clipped entry never
//!   tiers up — it takes the tier-1 loop, which can stop mid-block);
//! * **fetch spans resolved at compile time**: whether an op's fetch
//!   lands in the same I-cache line as the previous fetch is a static
//!   property of the block's pcs, so the per-fetch span compare
//!   ([`Fetch::Same`]/[`Fetch::New`]) is decided once at compile time;
//!   only a block's *first* fetch keeps the runtime compare
//!   ([`Fetch::Dynamic`]), because the span batch persists across
//!   block boundaries.
//!
//! Everything architectural is unchanged: the templates call the same
//! `exec_*` helpers and apply the same charges in the same order as the
//! tier-1 arms, so counters stay bit-identical (pinned by
//! `tests/predecode_equiv.rs` across the tier-2 legs of the matrix).
//!
//! ## Deoptimization contract (DESIGN.md invariant 8)
//!
//! A compiled body is valid exactly as long as the `[BlockOp]` run it
//! was generated from. It lives in the block-table entry next to that
//! run and dies with it: dropped on rebuild ([`Block::default`] after a
//! changed-word revalidation), on reinstall, and on flush; it
//! *survives* an in-place revalidation, because unchanged words mean
//! unchanged ops mean the templates still describe the text. Mid-block
//! invalidation (a store out of the running block, SMC or host-precise)
//! is handled like tier 1 handles it — the generation re-check after
//! every storing component — except the compiled body cannot fall back
//! to interpreting its own tail: it exits with [`Tier2Exit::Deopt`] at
//! the next instruction boundary and the tier-1 driver re-enters
//! through a fresh lookup, which revalidates or rebuilds.

use crate::blocks::BlockOp;
use crate::cpu::{Cpu, StepEvent, Trap};
use std::fmt;
use std::sync::Arc;
use tarch_isa::Instruction;

/// Span-batch state shared between the tier-1 block loop and compiled
/// tier-2 bodies, plus the generation snapshot the current block entered
/// with. Lives in `Cpu::run_blocks_until`'s frame — the deferred
/// same-line fetch batch persists *across* block boundaries, so both
/// tiers must read and write the same instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tier2Ctx {
    /// I-cache line (pc >> line_shift) the last real fetch charge
    /// opened; `u64::MAX` forces the next fetch to charge.
    pub(crate) cur_span: u64,
    /// Address of that real fetch (the batched hits are applied at it).
    pub(crate) span_addr: u64,
    /// Deferred same-line fetch hits accumulated since.
    pub(crate) pending: u64,
    /// Block-table generation snapshotted at block entry; a moved
    /// generation mid-block means the text under the block may have
    /// changed.
    pub(crate) entry_gen: u64,
    /// Instructions the driver still has budget for at this dispatch.
    /// Plain templates never read it (the driver's clip check already
    /// guarantees the whole block fits); a composed superblock checks it
    /// before entering each tail segment, so a multi-block span can
    /// never overshoot `max_steps`.
    pub(crate) budget: u64,
}

impl Tier2Ctx {
    /// Fresh state: no line open, nothing pending.
    pub(crate) fn new() -> Tier2Ctx {
        Tier2Ctx { cur_span: u64::MAX, span_addr: 0, pending: 0, entry_gen: 0, budget: 0 }
    }
}

/// How a compiled block handed control back to the tier-1 driver loop.
///
/// Kept two-registers small (the trap payload is boxed): this value is
/// returned through every frame of a block's closure chain, and a
/// memory-returned aggregate would put a hidden out-pointer store on
/// the per-instruction hot path. The box costs one allocation on the
/// trap path only — at most once per `run`.
#[derive(Debug, Clone)]
pub(crate) enum Tier2Exit {
    /// The block exited normally (ran to its end, or redirected through
    /// a conditional handler/`tchk` miss). `executed` retired
    /// instructions; `pc` points at the successor.
    Done {
        /// Instructions retired before the exit.
        executed: u64,
    },
    /// An `ecall`/`halt` retired: the driver must return the event.
    /// Counters are already fully up to date (the stopping instruction's
    /// charges landed before the body returned), so no retire count
    /// rides along.
    Stop {
        /// The stopping event.
        event: StepEvent,
    },
    /// An instruction trapped.
    Trap(Box<TrapExit>),
    /// The block-table generation moved mid-block (SMC or a precise
    /// host store): the compiled body abandoned its cached decode at
    /// the instruction boundary, exactly where tier 1 would, and the
    /// driver re-enters through a fresh lookup.
    Deopt {
        /// Instructions retired before deoptimizing.
        executed: u64,
    },
}

/// Payload of [`Tier2Exit::Trap`].
#[derive(Debug, Clone)]
pub(crate) struct TrapExit {
    /// The architectural trap.
    pub(crate) trap: Trap,
    /// `counters.cycles` value the stepwise path would have left (the
    /// `now` before the faulting instruction's charges).
    pub(crate) checkpoint: u64,
}

/// Builds the (cold, boxing) trap exit.
#[cold]
fn trap_exit(trap: Trap, checkpoint: u64) -> Tier2Exit {
    Tier2Exit::Trap(Box::new(TrapExit { trap, checkpoint }))
}

/// A block compiled to a host closure: the tier-2 execution unit.
/// Cheap to clone (shared body); stored in the block-table entry it was
/// compiled from and handed out on [`BlockRun`](crate::blocks::BlockRun).
#[derive(Clone)]
pub(crate) struct CompiledBlock {
    body: Arc<BlockBody>,
}

/// The closure type a block compiles to (unsized; always behind the
/// body's `Arc` or a template's [`Cont`] box).
type BlockBody = dyn Fn(&mut Cpu, &mut Tier2Ctx) -> Tier2Exit + Send + Sync;

impl CompiledBlock {
    /// Executes the block body.
    #[inline]
    pub(crate) fn run(&self, cpu: &mut Cpu, ctx: &mut Tier2Ctx) -> Tier2Exit {
        (self.body)(cpu, ctx)
    }
}

impl fmt::Debug for CompiledBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CompiledBlock")
    }
}

/// One segment of a superblock as handed to [`compose_superblock`]: a
/// per-segment compiled body plus the entry guard facts.
pub(crate) struct SuperSegBody {
    /// Segment entry pc: control must actually land here for the next
    /// segment body to run.
    pub(crate) pc: u64,
    /// Instructions the segment retires when fully executed (budget
    /// guard).
    pub(crate) width: u64,
    /// The segment's own template-compiled body.
    pub(crate) body: CompiledBlock,
}

/// Composes per-segment compiled bodies into one superblock body that
/// straightens the measured hot path across chained blocks.
///
/// The first segment runs unconditionally (the driver's dispatch
/// already guaranteed pc, generation, and budget for the head — the
/// same facts it guarantees a plain compiled block). Before each *tail*
/// segment, three guards re-establish exactly what the tier-1 driver
/// would have established on a chained transfer to that block:
///
/// * **pc**: the previous segment's exit must have landed on the
///   segment's entry (a branch went the unprofiled way otherwise);
/// * **generation**: unchanged since block entry — and the superblock
///   is only handed out while the table generation equals its
///   formation generation (DESIGN.md invariant 9), so "unchanged since
///   entry" means *no segment's* text has changed since it was
///   compiled;
/// * **budget**: the remaining step budget must cover the whole
///   segment, mirroring the driver's clip check (`Tier2Ctx::budget` is
///   re-armed at every dispatch).
///
/// A failed guard exits with [`Tier2Exit::Done`] at the segment
/// boundary: pc and counters are exactly what the last completed
/// segment's exit left, so the driver resumes through a fresh lookup as
/// if the chain had simply not been followed. Stop/trap exits propagate
/// unchanged (their counters/checkpoints are already settled); a deopt
/// accumulates the retire counts of the completed segments.
pub(crate) fn compose_superblock(segs: Vec<SuperSegBody>) -> CompiledBlock {
    let body = move |cpu: &mut Cpu, ctx: &mut Tier2Ctx| {
        let mut total = 0u64;
        for (i, seg) in segs.iter().enumerate() {
            if i > 0
                && (cpu.pc != seg.pc
                    || cpu.blocks.generation() != ctx.entry_gen
                    || ctx.budget.saturating_sub(total) < seg.width)
            {
                return Tier2Exit::Done { executed: total };
            }
            match seg.body.run(cpu, ctx) {
                Tier2Exit::Done { executed } => total += executed,
                stop @ Tier2Exit::Stop { .. } => return stop,
                trap @ Tier2Exit::Trap(_) => return trap,
                Tier2Exit::Deopt { executed } => {
                    return Tier2Exit::Deopt { executed: total + executed }
                }
            }
        }
        Tier2Exit::Done { executed: total }
    };
    CompiledBlock { body: Arc::new(body) }
}

mod private {
    use super::Instruction;

    /// The emitter interface proper: one method per [`BlockOp`] shape,
    /// called by [`generate`](super::generate) in block order with each
    /// op's entry pc. Lives in a private module so the set of backends
    /// is closed (the aivm-style seal): downstream crates can name
    /// [`CodeGenerator`](super::CodeGenerator) but not implement it.
    pub trait CodeGeneratorImpl {
        /// What the backend produces for a whole block.
        type Output;

        /// Called once before the first emit with the block's entry pc.
        fn begin(&mut self, entry_pc: u64) {
            let _ = entry_pc;
        }

        /// Generic single instruction (full inter-instruction checks).
        fn emit_one(&mut self, pc: u64, instr: Instruction);
        /// Single instruction that cannot trap, redirect, store, or stop.
        fn emit_one_safe(&mut self, pc: u64, instr: Instruction);
        /// Single integer load (may trap; never redirects/stores/stops).
        fn emit_one_load(&mut self, pc: u64, instr: Instruction);
        /// Single integer store (may trap; may invalidate blocks).
        fn emit_one_store(&mut self, pc: u64, instr: Instruction);
        /// Single conditional branch (block-final).
        fn emit_one_branch(&mut self, pc: u64, instr: Instruction);
        /// Single direct jump (block-final).
        fn emit_one_jal(&mut self, pc: u64, instr: Instruction);
        /// Single indirect jump (block-final).
        fn emit_one_jalr(&mut self, pc: u64, instr: Instruction);
        /// Fused ALU-class + ALU-class pair.
        fn emit_alu_pair(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused ALU-class + load pair.
        fn emit_alu_load(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused load + ALU-class pair.
        fn emit_load_alu(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused ALU-class + branch pair (block-final).
        fn emit_alu_branch(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused ALU-class + `jal` pair (block-final).
        fn emit_alu_jal(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused load + `jalr` dispatch pair (block-final).
        fn emit_load_jalr(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused ALU-class + store pair.
        fn emit_alu_store(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused load + store pair.
        fn emit_load_store(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused load + load pair.
        fn emit_load_load(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused store + ALU-class pair (inter-component generation
        /// re-check).
        fn emit_store_alu(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused store + `jal` pair (block-final; inter-component
        /// generation re-check).
        fn emit_store_jal(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused `tld` + `tchk` pair (the check may redirect).
        fn emit_tld_tchk(&mut self, pc: u64, a: Instruction, b: Instruction);
        /// Fused `tget` + branch pair (block-final).
        fn emit_tget_branch(&mut self, pc: u64, a: Instruction, b: Instruction);

        /// Consumes the generator and returns the block's compiled form.
        fn finish(self) -> Self::Output;
    }
}

/// A backend that lowers one basic block, emit call by emit call.
///
/// Two backends co-exist (the tiering split this trait carries; both
/// are crate-private, like the trait's emit surface):
///
/// * `InterpreterGen` — tier 1: its "code" is the `Arc<[BlockOp]>`
///   run the block engine's per-op `match` loop walks;
/// * `TemplateGen` — tier 2: per-op closure templates with constants
///   folded in, composed into one `CompiledBlock` body.
///
/// Sealed (the emit surface lives on a private supertrait), so the
/// backend set — and with it the bit-identical-counters obligation —
/// stays inside this crate.
pub trait CodeGenerator: private::CodeGeneratorImpl {}

impl<G: private::CodeGeneratorImpl> CodeGenerator for G {}

/// Drives a backend over a block's (possibly fused) op run: walks the
/// ops in order, dispatching each to its emit method with the op's
/// guest pc, then finishes the backend. This is the *only* place the
/// per-op shape dispatch happens for a compiled block — at build time,
/// never at execution time.
pub(crate) fn generate<G: CodeGenerator>(mut g: G, entry_pc: u64, ops: &[BlockOp]) -> G::Output {
    g.begin(entry_pc);
    let mut pc = entry_pc;
    for &op in ops {
        match op {
            BlockOp::One(i) => g.emit_one(pc, i),
            BlockOp::OneSafe(i) => g.emit_one_safe(pc, i),
            BlockOp::OneLoad(i) => g.emit_one_load(pc, i),
            BlockOp::OneStore(i) => g.emit_one_store(pc, i),
            BlockOp::OneBranch(i) => g.emit_one_branch(pc, i),
            BlockOp::OneJal(i) => g.emit_one_jal(pc, i),
            BlockOp::OneJalr(i) => g.emit_one_jalr(pc, i),
            BlockOp::AluPair(a, b) => g.emit_alu_pair(pc, a, b),
            BlockOp::AluLoad(a, b) => g.emit_alu_load(pc, a, b),
            BlockOp::LoadAlu(a, b) => g.emit_load_alu(pc, a, b),
            BlockOp::AluBranch(a, b) => g.emit_alu_branch(pc, a, b),
            BlockOp::AluJal(a, b) => g.emit_alu_jal(pc, a, b),
            BlockOp::LoadJalr(a, b) => g.emit_load_jalr(pc, a, b),
            BlockOp::AluStore(a, b) => g.emit_alu_store(pc, a, b),
            BlockOp::LoadStore(a, b) => g.emit_load_store(pc, a, b),
            BlockOp::LoadLoad(a, b) => g.emit_load_load(pc, a, b),
            BlockOp::StoreAlu(a, b) => g.emit_store_alu(pc, a, b),
            BlockOp::StoreJal(a, b) => g.emit_store_jal(pc, a, b),
            BlockOp::TldTchk(a, b) => g.emit_tld_tchk(pc, a, b),
            BlockOp::TgetBranch(a, b) => g.emit_tget_branch(pc, a, b),
        }
        pc = pc.wrapping_add(4 * op.width());
    }
    g.finish()
}

/// Tier-1 backend: collects the ops verbatim into the `Arc<[BlockOp]>`
/// run that `BlockTable::install` caches and the block engine's per-op
/// loop executes. Exists so *every* block, both tiers, flows through
/// the same [`CodeGenerator`] surface — the interpreter is just the
/// backend whose generated code is its own input.
#[derive(Debug, Default)]
pub(crate) struct InterpreterGen {
    ops: Vec<BlockOp>,
}

macro_rules! collect_one {
    ($method:ident, $variant:ident) => {
        fn $method(&mut self, _pc: u64, instr: Instruction) {
            self.ops.push(BlockOp::$variant(instr));
        }
    };
}

macro_rules! collect_pair {
    ($method:ident, $variant:ident) => {
        fn $method(&mut self, _pc: u64, a: Instruction, b: Instruction) {
            self.ops.push(BlockOp::$variant(a, b));
        }
    };
}

impl private::CodeGeneratorImpl for InterpreterGen {
    type Output = Arc<[BlockOp]>;

    collect_one!(emit_one, One);
    collect_one!(emit_one_safe, OneSafe);
    collect_one!(emit_one_load, OneLoad);
    collect_one!(emit_one_store, OneStore);
    collect_one!(emit_one_branch, OneBranch);
    collect_one!(emit_one_jal, OneJal);
    collect_one!(emit_one_jalr, OneJalr);
    collect_pair!(emit_alu_pair, AluPair);
    collect_pair!(emit_alu_load, AluLoad);
    collect_pair!(emit_load_alu, LoadAlu);
    collect_pair!(emit_alu_branch, AluBranch);
    collect_pair!(emit_alu_jal, AluJal);
    collect_pair!(emit_load_jalr, LoadJalr);
    collect_pair!(emit_alu_store, AluStore);
    collect_pair!(emit_load_store, LoadStore);
    collect_pair!(emit_load_load, LoadLoad);
    collect_pair!(emit_store_alu, StoreAlu);
    collect_pair!(emit_store_jal, StoreJal);
    collect_pair!(emit_tld_tchk, TldTchk);
    collect_pair!(emit_tget_branch, TgetBranch);

    fn finish(self) -> Arc<[BlockOp]> {
        Arc::from(self.ops)
    }
}

/// One instruction fetch as the templates see it, classified at compile
/// time against the previous fetch in the same block.
#[derive(Debug, Clone, Copy)]
enum Fetch {
    /// First fetch of the block: the open span is whatever the previous
    /// block left behind, so the compare stays dynamic (exactly the
    /// tier-1 `span_charge!`).
    Dynamic {
        /// Fetch address.
        addr: u64,
        /// Its I-cache-line span.
        span: u64,
    },
    /// Statically the same line as the previous fetch: the compare is
    /// statically true, the fetch is a guaranteed deferred hit.
    ///
    /// Sound inductively: only fetch charges touch the span state
    /// inside a block, and after *any* fetch (all three kinds) the open
    /// span equals that fetch's span — so "same line as the previous
    /// fetch" implies "same line as the open span" at run time.
    Same,
    /// Statically a new line: the compare is statically false — flush
    /// the batch and charge the real fetch unconditionally.
    New {
        /// Fetch address.
        addr: u64,
        /// Its I-cache-line span.
        span: u64,
    },
}

/// Applies one planned fetch. The `plan` is a captured constant per
/// template, so the kind match is a per-site fixed branch.
#[inline(always)]
fn fetch(cpu: &mut Cpu, ctx: &mut Tier2Ctx, plan: Fetch) {
    match plan {
        Fetch::Same => ctx.pending += 1,
        Fetch::New { addr, span } => open_line(cpu, ctx, addr, span),
        Fetch::Dynamic { addr, span } => {
            if span == ctx.cur_span {
                ctx.pending += 1;
            } else {
                open_line(cpu, ctx, addr, span);
            }
        }
    }
}

/// Flushes the deferred batch and charges a real fetch at `addr`,
/// opening its line as the new span.
#[inline]
fn open_line(cpu: &mut Cpu, ctx: &mut Tier2Ctx, addr: u64, span: u64) {
    if ctx.pending > 0 {
        cpu.apply_fetch_hits(ctx.span_addr, ctx.pending);
        ctx.pending = 0;
    }
    cpu.charge_fetch(addr);
    ctx.cur_span = span;
    ctx.span_addr = addr;
}

/// A compiled block body under construction: each template wraps the
/// continuation that runs the rest of the block.
type Cont = Box<BlockBody>;

/// One op's template factory: given the rest of the block, produce the
/// closure that runs this op and then (on fall-through) the rest.
type Template = Box<dyn FnOnce(Cont) -> Cont>;

/// Tier-2 backend: compiles a block into one [`CompiledBlock`] closure
/// chain. Each emit call captures that op's constants (pcs, fields,
/// retired counts, fetch plans) into a template; [`finish`] composes
/// the templates back to front so op *k*'s closure tail-calls op
/// *k*+1's directly — no loop, no dispatch, no shared bookkeeping.
///
/// Two per-op costs the tier-1 loop cannot avoid are *deferred to the
/// block's exits* here, because the exits are the only points the
/// driver (or anything architectural) can observe them:
///
/// * **`counters.instructions`** — each exit path adds the exact
///   retired-so-far count as one captured constant instead of a
///   read-modify-write per instruction. The deferral is flushed before
///   anything that could read the counter mid-block: the generic
///   `execute` templates charge their cumulative constant *before*
///   executing (`csrr instret` and `ecall` helper accounting observe an
///   exact count, and a faulting instruction is counted, exactly like
///   the stepwise path).
/// * **`cpu.pc`** — the `exec_*` helpers never read the pc (they take
///   it as a parameter), so the per-op fall-through store is dead
///   between templates. Only exits write it: traps set the faulting pc,
///   deopts the resume pc, redirects the target, and the fall-off-the-
///   end tail writes the block's end pc once.
///
/// [`finish`]: private::CodeGeneratorImpl::finish
pub(crate) struct TemplateGen {
    /// `log2(icache line bytes)` — fetch spans are static per config.
    line_shift: u32,
    /// Span of the previous fetch emitted in this block, for the static
    /// same-line classification (`None` before the first fetch).
    prev_span: Option<u64>,
    /// Block entry pc (for the end-pc the tail template writes).
    entry: u64,
    /// Instructions retired once all emitted ops have run.
    executed: u64,
    /// Retired instructions not yet flushed into
    /// `counters.instructions` when the *next* template begins.
    deferred: u64,
    parts: Vec<Template>,
}

impl TemplateGen {
    /// A generator for a core whose I-cache lines are
    /// `1 << line_shift` bytes.
    pub(crate) fn new(line_shift: u32) -> TemplateGen {
        TemplateGen {
            line_shift,
            prev_span: None,
            entry: 0,
            executed: 0,
            deferred: 0,
            parts: Vec::new(),
        }
    }

    /// Classifies the fetch at `addr` against the previous fetch.
    fn plan(&mut self, addr: u64) -> Fetch {
        let span = addr >> self.line_shift;
        let plan = match self.prev_span {
            None => Fetch::Dynamic { addr, span },
            Some(prev) if prev == span => Fetch::Same,
            Some(_) => Fetch::New { addr, span },
        };
        self.prev_span = Some(span);
        plan
    }
}

impl private::CodeGeneratorImpl for TemplateGen {
    type Output = CompiledBlock;

    fn begin(&mut self, entry_pc: u64) {
        self.entry = entry_pc;
    }

    fn emit_one(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let done = self.executed;
        let fall = pc.wrapping_add(4);
        match instr {
            // The typed-ISA hot ops redirect (type/overflow miss →
            // `R_hdl`) but never trap, store, or stop: only the
            // fall-through compare survives.
            Instruction::Typed { op, rd, rs1, rs2 } => {
                let flush = self.deferred + 1;
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        let next = cpu.exec_typed(pc, op, rd, rs1, rs2);
                        if next != fall {
                            cpu.pc = next;
                            cpu.counters.instructions += flush;
                            return Tier2Exit::Done { executed: done };
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Chklb { rd, rs1, imm } => {
                let flush = self.deferred + 1;
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        let next = cpu.exec_chklb(pc, rd, rs1, imm);
                        if next != fall {
                            cpu.pc = next;
                            cpu.counters.instructions += flush;
                            return Tier2Exit::Done { executed: done };
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
            // FP load: may trap, never redirects or stores.
            Instruction::FpLoad { rd, rs1, imm } => {
                let flush = self.deferred + 1;
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        let checkpoint = cpu.now;
                        fetch(cpu, ctx, f);
                        if let Err(trap) = cpu.exec_fp_load(pc, rd, rs1, imm) {
                            cpu.pc = pc;
                            cpu.counters.instructions += flush;
                            return trap_exit(trap, checkpoint);
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
            // FP / tagged stores: may trap, and may invalidate blocks —
            // same shape as the integer-store template.
            Instruction::FpStore { rs2, rs1, imm } => {
                let flush = self.deferred + 1;
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        let checkpoint = cpu.now;
                        fetch(cpu, ctx, f);
                        if let Err(trap) = cpu.exec_fp_store(pc, rs2, rs1, imm) {
                            cpu.pc = pc;
                            cpu.counters.instructions += flush;
                            return trap_exit(trap, checkpoint);
                        }
                        if cpu.blocks.generation() != ctx.entry_gen {
                            cpu.pc = fall;
                            cpu.counters.instructions += flush;
                            return Tier2Exit::Deopt { executed: done };
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Tsd { rs2, rs1, imm } => {
                let flush = self.deferred + 1;
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        let checkpoint = cpu.now;
                        fetch(cpu, ctx, f);
                        if let Err(trap) = cpu.exec_tsd(pc, rs2, rs1, imm) {
                            cpu.pc = pc;
                            cpu.counters.instructions += flush;
                            return trap_exit(trap, checkpoint);
                        }
                        if cpu.blocks.generation() != ctx.entry_gen {
                            cpu.pc = fall;
                            cpu.counters.instructions += flush;
                            return Tier2Exit::Deopt { executed: done };
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
            // Everything else (`ecall`, `setspr`, `csrr`, `flushtrt`,
            // `tchk`…) goes through `execute`, which can reach anything
            // — `csrr instret`, an `ecall` helper — so the deferred
            // instruction charges (including this op's own) land before
            // it runs, exactly like stepwise.
            _ => {
                let flush = self.deferred + 1;
                self.deferred = 0;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        let checkpoint = cpu.now;
                        fetch(cpu, ctx, f);
                        cpu.counters.instructions += flush;
                        let event = match cpu.execute(pc, instr) {
                            Ok(event) => event,
                            Err(trap) => return trap_exit(trap, checkpoint),
                        };
                        if event != StepEvent::Retired {
                            return Tier2Exit::Stop { event };
                        }
                        if cpu.blocks.generation() != ctx.entry_gen {
                            return Tier2Exit::Deopt { executed: done };
                        }
                        if cpu.pc != fall {
                            return Tier2Exit::Done { executed: done };
                        }
                        cont(cpu, ctx)
                    })
                }));
            }
        }
    }

    fn emit_one_safe(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        match instr {
            // The common safe class gets fully folded, variant-resolved
            // templates: no dispatch, no pc store, no counter traffic.
            Instruction::Alu { op, rd, rs1, rs2 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_alu(op, rd, rs1, rs2);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_alu_imm(op, rd, rs1, imm);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Lui { rd, imm } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_lui(rd, imm);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Fpu { op, rd, rs1, rs2 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fpu(op, rd, rs1, rs2);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::FpCmp { op, rd, rs1, rs2 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fp_cmp(op, rd, rs1, rs2);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::FcvtDL { rd, rs1 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fcvt_dl(rd, rs1);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::FcvtLD { rd, rs1 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fcvt_ld(rd, rs1);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::FmvXD { rd, rs1 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fmv_xd(rd, rs1);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::FmvDX { rd, rs1 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_fmv_dx(rd, rs1);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Tget { rd, rs1 } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_tget(rd, rs1);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Tset { rs1, rd } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_tset(rs1, rd);
                        cont(cpu, ctx)
                    })
                }));
            }
            Instruction::Thdl { offset } => {
                self.deferred += 1;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.exec_thdl(pc, offset);
                        cont(cpu, ctx)
                    })
                }));
            }
            // The rest (`csrr`, `flushtrt`) go through `execute`, which
            // sets the pc itself and may *read* the instruction counter
            // (`csrr instret`) — flush first.
            _ => {
                let flush = self.deferred + 1;
                self.deferred = 0;
                self.parts.push(Box::new(move |cont| {
                    Box::new(move |cpu, ctx| {
                        fetch(cpu, ctx, f);
                        cpu.counters.instructions += flush;
                        let result = cpu.execute(pc, instr);
                        debug_assert!(
                            matches!(result, Ok(StepEvent::Retired)),
                            "safe_one misclassification"
                        );
                        let _ = result;
                        cont(cpu, ctx)
                    })
                }));
            }
        }
    }

    fn emit_one_load(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let flush = self.deferred + 1; // trap path: faulting op counted
        self.deferred += 1;
        let Instruction::Load { width, signed, rd, rs1, imm } = instr else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, f);
                if let Err(trap) = cpu.exec_load(pc, width, signed, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush;
                    return trap_exit(trap, checkpoint);
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_one_store(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let done = self.executed;
        let flush = self.deferred + 1;
        self.deferred += 1;
        let next = pc.wrapping_add(4);
        let Instruction::Store { width, rs2, rs1, imm } = instr else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, f);
                if let Err(trap) = cpu.exec_store(pc, width, rs2, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush;
                    return trap_exit(trap, checkpoint);
                }
                if cpu.blocks.generation() != ctx.entry_gen {
                    cpu.pc = next;
                    cpu.counters.instructions += flush;
                    return Tier2Exit::Deopt { executed: done };
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_one_branch(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let done = self.executed;
        let flush = self.deferred + 1;
        self.deferred = 0;
        let Instruction::Branch { cond, rs1, rs2, offset } = instr else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, f);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_branch(pc, cond, rs1, rs2, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_one_jal(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let done = self.executed;
        let flush = self.deferred + 1;
        self.deferred = 0;
        let Instruction::Jal { rd, offset } = instr else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, f);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_jal(pc, rd, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_one_jalr(&mut self, pc: u64, instr: Instruction) {
        let f = self.plan(pc);
        self.executed += 1;
        let done = self.executed;
        let flush = self.deferred + 1;
        self.deferred = 0;
        let Instruction::Jalr { rd, rs1, imm } = instr else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, f);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_jalr(pc, rd, rs1, imm);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_alu_pair(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        self.deferred += 2;
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_alu_class(a);
                fetch(cpu, ctx, fb);
                cpu.exec_alu_class(b);
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_alu_load(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let flush2 = self.deferred + 2; // trap at b: a retired, b counted
        self.deferred += 2;
        let Instruction::Load { width, signed, rd, rs1, imm } = b else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_alu_class(a);
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fb);
                if let Err(trap) = cpu.exec_load(bpc, width, signed, rd, rs1, imm) {
                    cpu.pc = bpc; // stepwise leaves pc at the faulting load
                    cpu.counters.instructions += flush2;
                    return trap_exit(trap, checkpoint);
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_load_alu(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let flush1 = self.deferred + 1; // trap at a: only a counted
        self.deferred += 2;
        let Instruction::Load { width, signed, rd, rs1, imm } = a else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_load(pc, width, signed, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                fetch(cpu, ctx, fb);
                cpu.exec_alu_class(b);
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_alu_branch(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush = self.deferred + 2;
        self.deferred = 0;
        let Instruction::Branch { cond, rs1, rs2, offset } = b else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_alu_class(a);
                fetch(cpu, ctx, fb);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_branch(bpc, cond, rs1, rs2, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_alu_jal(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush = self.deferred + 2;
        self.deferred = 0;
        let Instruction::Jal { rd, offset } = b else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_alu_class(a);
                fetch(cpu, ctx, fb);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_jal(bpc, rd, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_load_jalr(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush1 = self.deferred + 1;
        let flush = self.deferred + 2;
        self.deferred = 0;
        let Instruction::Load { width, signed, rd, rs1, imm } = a else { unreachable!() };
        let Instruction::Jalr { rd: jrd, rs1: jrs1, imm: jimm } = b else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_load(pc, width, signed, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                fetch(cpu, ctx, fb);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_jalr(bpc, jrd, jrs1, jimm);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_alu_store(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush2 = self.deferred + 2;
        self.deferred += 2;
        let next = bpc.wrapping_add(4);
        let Instruction::Store { width, rs2, rs1, imm } = b else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_alu_class(a);
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fb);
                if let Err(trap) = cpu.exec_store(bpc, width, rs2, rs1, imm) {
                    cpu.pc = bpc;
                    cpu.counters.instructions += flush2;
                    return trap_exit(trap, checkpoint);
                }
                // The store may have hit text (even this block).
                if cpu.blocks.generation() != ctx.entry_gen {
                    cpu.pc = next;
                    cpu.counters.instructions += flush2;
                    return Tier2Exit::Deopt { executed: done };
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_load_store(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush1 = self.deferred + 1;
        let flush2 = self.deferred + 2;
        self.deferred += 2;
        let next = bpc.wrapping_add(4);
        let Instruction::Load { width, signed, rd, rs1, imm } = a else { unreachable!() };
        let Instruction::Store { width: sw, rs2: srs2, rs1: srs1, imm: simm } = b else {
            unreachable!()
        };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_load(pc, width, signed, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fb);
                if let Err(trap) = cpu.exec_store(bpc, sw, srs2, srs1, simm) {
                    cpu.pc = bpc;
                    cpu.counters.instructions += flush2;
                    return trap_exit(trap, checkpoint);
                }
                if cpu.blocks.generation() != ctx.entry_gen {
                    cpu.pc = next;
                    cpu.counters.instructions += flush2;
                    return Tier2Exit::Deopt { executed: done };
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_load_load(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let flush1 = self.deferred + 1;
        let flush2 = self.deferred + 2;
        self.deferred += 2;
        let Instruction::Load { width, signed, rd, rs1, imm } = a else { unreachable!() };
        let Instruction::Load { width: w2, signed: s2, rd: rd2, rs1: rs12, imm: imm2 } = b
        else {
            unreachable!()
        };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_load(pc, width, signed, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fb);
                if let Err(trap) = cpu.exec_load(bpc, w2, s2, rd2, rs12, imm2) {
                    cpu.pc = bpc; // stepwise leaves pc at the faulting load
                    cpu.counters.instructions += flush2;
                    return trap_exit(trap, checkpoint);
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_store_alu(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush1 = self.deferred + 1;
        self.deferred += 2;
        let Instruction::Store { width, rs2, rs1, imm } = a else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_store(pc, width, rs2, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                // The leading store may have hit text (even this
                // block): abandon the cached decode before the second
                // component, exactly like tier 1's inter-component
                // generation re-check.
                if cpu.blocks.generation() != ctx.entry_gen {
                    cpu.pc = bpc;
                    cpu.counters.instructions += flush1;
                    return Tier2Exit::Deopt { executed: done - 1 };
                }
                fetch(cpu, ctx, fb);
                cpu.exec_alu_class(b);
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_store_jal(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush1 = self.deferred + 1;
        let flush = self.deferred + 2;
        self.deferred = 0;
        let Instruction::Store { width, rs2, rs1, imm } = a else { unreachable!() };
        let Instruction::Jal { rd, offset } = b else { unreachable!() };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_store(pc, width, rs2, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                if cpu.blocks.generation() != ctx.entry_gen {
                    cpu.pc = bpc;
                    cpu.counters.instructions += flush1;
                    return Tier2Exit::Deopt { executed: done - 1 };
                }
                fetch(cpu, ctx, fb);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_jal(bpc, rd, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn emit_tld_tchk(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush1 = self.deferred + 1;
        let flush2 = self.deferred + 2;
        self.deferred += 2;
        let next = bpc.wrapping_add(4);
        let Instruction::Tld { rd, rs1, imm } = a else { unreachable!() };
        let Instruction::Tchk { rs1: crs1, rs2: crs2 } = b else { unreachable!() };
        self.parts.push(Box::new(move |cont| {
            Box::new(move |cpu, ctx| {
                let checkpoint = cpu.now;
                fetch(cpu, ctx, fa);
                if let Err(trap) = cpu.exec_tld(pc, rd, rs1, imm) {
                    cpu.pc = pc;
                    cpu.counters.instructions += flush1;
                    return trap_exit(trap, checkpoint);
                }
                fetch(cpu, ctx, fb);
                let target = cpu.exec_tchk(bpc, crs1, crs2);
                if target != next {
                    cpu.pc = target;
                    cpu.counters.instructions += flush2;
                    return Tier2Exit::Done { executed: done }; // type miss: R_hdl
                }
                cont(cpu, ctx)
            })
        }));
    }

    fn emit_tget_branch(&mut self, pc: u64, a: Instruction, b: Instruction) {
        let fa = self.plan(pc);
        let bpc = pc.wrapping_add(4);
        let fb = self.plan(bpc);
        self.executed += 2;
        let done = self.executed;
        let flush = self.deferred + 2;
        self.deferred = 0;
        let Instruction::Tget { rd, rs1 } = a else { unreachable!() };
        let Instruction::Branch { cond, rs1: brs1, rs2: brs2, offset } = b else {
            unreachable!()
        };
        self.parts.push(Box::new(move |_cont| {
            Box::new(move |cpu, ctx| {
                fetch(cpu, ctx, fa);
                cpu.exec_tget(rd, rs1);
                fetch(cpu, ctx, fb);
                cpu.counters.instructions += flush;
                cpu.pc = cpu.exec_branch(bpc, cond, brs1, brs2, offset);
                Tier2Exit::Done { executed: done }
            })
        }));
    }

    fn finish(self) -> CompiledBlock {
        let total = self.executed;
        let flush = self.deferred;
        // A block whose last op falls through (no final branch: text
        // ended or MAX_BLOCK_LEN) completes with all instructions
        // retired; the tail settles the deferred pc/instruction charges
        // in one store each.
        let end = self.entry.wrapping_add(4 * total);
        let mut cont: Cont = Box::new(move |cpu, _ctx| {
            cpu.counters.instructions += flush;
            cpu.pc = end;
            Tier2Exit::Done { executed: total }
        });
        for part in self.parts.into_iter().rev() {
            cont = part(cont);
        }
        CompiledBlock { body: Arc::from(cont) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tarch_isa::{AluImmOp, Reg};

    fn addi(imm: i32) -> Instruction {
        Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm }
    }

    #[test]
    fn interpreter_backend_reproduces_the_op_run() {
        let ops = vec![
            BlockOp::AluPair(addi(1), addi(2)),
            BlockOp::OneSafe(addi(3)),
            BlockOp::OneBranch(Instruction::Branch {
                cond: tarch_isa::BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -12,
            }),
        ];
        let out = generate(InterpreterGen::default(), 0x1000, &ops);
        assert_eq!(&out[..], &ops[..]);
    }

    #[test]
    fn template_backend_counts_and_classifies_fetches() {
        // Two ops spanning a 64-byte line boundary: entry fetch is
        // dynamic, same-line fetch static, the line-crossing fetch a
        // static new-line charge.
        let mut g = TemplateGen::new(6);
        assert!(matches!(g.plan(0x1038), Fetch::Dynamic { addr: 0x1038, span: 0x40 }));
        assert!(matches!(g.plan(0x103c), Fetch::Same));
        assert!(matches!(g.plan(0x1040), Fetch::New { addr: 0x1040, span: 0x41 }));
        assert!(matches!(g.plan(0x1044), Fetch::Same));
    }
}
